//! The tree-walking interpreter — our stand-in for the instrumented
//! Franz Lisp interpreter of §3.3.1.
//!
//! It implements the "simple Lisp" of §4.3.4: the list primitives
//! (`car cdr cons rplaca rplacd`), `cond` and `prog` (with `go` and
//! `return`), predicates, integer arithmetic, logic, `setq`, `read` /
//! `write`, and `def`. Evaluation is dynamically scoped through any
//! [`Environment`] implementation.
//!
//! An [`EvalHook`] observes every list-primitive call (name, arguments,
//! result — in both s-expression form and exact cell identity), every
//! user-function entry/exit, and every `read`. The trace recorder in
//! `small-trace` plugs in here; this is the instrumentation point the
//! thesis added to Franz Lisp.

use crate::env::Environment;
use crate::value::{CellAllocator, Value};
use small_sexpr::{Atom, Interner, SExpr, Symbol};
use std::collections::{HashMap, VecDeque};
use std::fmt;

/// Observer of interpreter activity (the tracing hook).
pub trait EvalHook {
    /// A list primitive was executed.
    fn primitive(&mut self, name: Symbol, args: &[Value], result: &Value) {
        let _ = (name, args, result);
    }
    /// A user-defined function was entered with `nargs` arguments.
    fn fn_enter(&mut self, name: Symbol, nargs: usize) {
        let _ = (name, nargs);
    }
    /// A user-defined function returned.
    fn fn_exit(&mut self, name: Symbol) {
        let _ = name;
    }
}

/// The no-op hook.
#[derive(Default, Clone, Copy)]
pub struct NoHook;
impl EvalHook for NoHook {}

/// Interpreter errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LispError {
    /// Reference to a name with no current binding.
    Unbound(String),
    /// Call of something that is not a defined function.
    NotAFunction(String),
    /// Arity mismatch calling a user function.
    WrongArgCount {
        /// Function name.
        name: String,
        /// Declared parameter count.
        expected: usize,
        /// Arguments supplied.
        got: usize,
    },
    /// A primitive received an operand of the wrong type.
    TypeError {
        /// The primitive that rejected its operand.
        prim: &'static str,
        /// Human-readable detail.
        detail: String,
    },
    /// Integer division by zero.
    DivideByZero,
    /// `(go tag)` with no such label in the enclosing prog.
    NoSuchLabel(String),
    /// `go`/`return` outside a prog.
    NotInProg,
    /// `read` with an empty input queue.
    ReadEof,
    /// Recursion exceeded the configured depth limit.
    DepthLimit,
    /// Evaluation exceeded the configured step budget.
    StepBudget,
    /// Malformed special form.
    BadForm(String),
    // Internal control-flow signals (caught by prog).
    #[doc(hidden)]
    GoSignal(Symbol),
    #[doc(hidden)]
    ReturnSignal(Box<ValueCarrier>),
}

/// Wrapper so LispError can derive Eq while carrying a Value.
#[derive(Debug, Clone)]
pub struct ValueCarrier(pub Value);
impl PartialEq for ValueCarrier {
    fn eq(&self, _: &Self) -> bool {
        false
    }
}
impl Eq for ValueCarrier {}

impl fmt::Display for LispError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LispError::Unbound(n) => write!(f, "unbound variable {n}"),
            LispError::NotAFunction(n) => write!(f, "{n} is not a function"),
            LispError::WrongArgCount {
                name,
                expected,
                got,
            } => {
                write!(f, "{name} expects {expected} args, got {got}")
            }
            LispError::TypeError { prim, detail } => write!(f, "{prim}: {detail}"),
            LispError::DivideByZero => write!(f, "division by zero"),
            LispError::NoSuchLabel(l) => write!(f, "no label {l} in prog"),
            LispError::NotInProg => write!(f, "go/return outside prog"),
            LispError::ReadEof => write!(f, "read: input exhausted"),
            LispError::DepthLimit => write!(f, "recursion depth limit exceeded"),
            LispError::StepBudget => write!(f, "evaluation step budget exceeded"),
            LispError::BadForm(s) => write!(f, "malformed form: {s}"),
            LispError::GoSignal(_) | LispError::ReturnSignal(_) => {
                write!(f, "internal control-flow signal escaped")
            }
        }
    }
}

impl std::error::Error for LispError {}

struct FnDef {
    params: Vec<Symbol>,
    body: Vec<SExpr>,
}

/// Special-form and primitive symbols, interned once.
struct Syms {
    quote: Symbol,
    cond: Symbol,
    prog: Symbol,
    progn: Symbol,
    go: Symbol,
    ret: Symbol,
    setq: Symbol,
    def: Symbol,
    lambda: Symbol,
    and: Symbol,
    or: Symbol,
    t: Symbol,
    // primitives
    car: Symbol,
    cdr: Symbol,
    cons: Symbol,
    rplaca: Symbol,
    rplacd: Symbol,
    atom: Symbol,
    null: Symbol,
    not: Symbol,
    eq: Symbol,
    equal: Symbol,
    greaterp: Symbol,
    lessp: Symbol,
    add: Symbol,
    sub: Symbol,
    mul: Symbol,
    div: Symbol,
    rem: Symbol,
    read: Symbol,
    write: Symbol,
    hassoc: Symbol,
    hnth: Symbol,
}

impl Syms {
    fn new(i: &mut Interner) -> Self {
        Syms {
            quote: i.intern("quote"),
            cond: i.intern("cond"),
            prog: i.intern("prog"),
            progn: i.intern("progn"),
            go: i.intern("go"),
            ret: i.intern("return"),
            setq: i.intern("setq"),
            def: i.intern("def"),
            lambda: i.intern("lambda"),
            and: i.intern("and"),
            or: i.intern("or"),
            t: i.intern("t"),
            car: i.intern("car"),
            cdr: i.intern("cdr"),
            cons: i.intern("cons"),
            rplaca: i.intern("rplaca"),
            rplacd: i.intern("rplacd"),
            atom: i.intern("atom"),
            null: i.intern("null"),
            not: i.intern("not"),
            eq: i.intern("eq"),
            equal: i.intern("equal"),
            greaterp: i.intern("greaterp"),
            lessp: i.intern("lessp"),
            add: i.intern("add"),
            sub: i.intern("sub"),
            mul: i.intern("times"),
            div: i.intern("quotient"),
            rem: i.intern("rem"),
            read: i.intern("read"),
            write: i.intern("write"),
            hassoc: i.intern("hassoc"),
            hnth: i.intern("hnth"),
        }
    }
}

/// Interpreter execution statistics (feeds Table 5.1).
#[derive(Debug, Default, Clone, Copy)]
pub struct InterpStats {
    /// User-defined function calls.
    pub fn_calls: u64,
    /// Maximum dynamic call depth reached.
    pub max_depth: usize,
    /// List-primitive executions.
    pub primitives: u64,
    /// Total eval steps.
    pub steps: u64,
}

/// The interpreter.
pub struct Interp<E: Environment, H: EvalHook> {
    /// Symbol interner (shared with the reader).
    pub interner: Interner,
    env: E,
    /// The tracing hook.
    pub hook: H,
    /// Cell allocator (exposes cons counts).
    pub alloc: CellAllocator,
    fns: HashMap<Symbol, FnDef>,
    syms: Syms,
    /// Queue of s-expressions served to `(read …)`.
    pub input: VecDeque<SExpr>,
    /// Values written by `(write …)`.
    pub output: Vec<SExpr>,
    depth: usize,
    depth_limit: usize,
    steps_left: u64,
    stats: InterpStats,
    /// Aliases: alternate spellings → canonical primitive symbol.
    aliases: HashMap<Symbol, Symbol>,
}

impl<E: Environment, H: EvalHook> Interp<E, H> {
    /// Create an interpreter over `env` with tracing hook `hook`.
    pub fn new(mut interner: Interner, env: E, hook: H) -> Self {
        let syms = Syms::new(&mut interner);
        let mut aliases = HashMap::new();
        for (alias, canon) in [
            ("+", syms.add),
            ("-", syms.sub),
            ("*", syms.mul),
            ("/", syms.div),
            ("plus", syms.add),
            ("difference", syms.sub),
            (">", syms.greaterp),
            ("<", syms.lessp),
            ("=", syms.equal),
            ("nullp", syms.null),
            ("atomp", syms.atom),
            ("equalp", syms.equal),
            ("print", syms.write),
        ] {
            let a = interner.intern(alias);
            aliases.insert(a, canon);
        }
        Interp {
            interner,
            env,
            hook,
            alloc: CellAllocator::new(),
            fns: HashMap::new(),
            syms,
            input: VecDeque::new(),
            output: Vec::new(),
            depth: 0,
            depth_limit: 256,
            steps_left: u64::MAX,
            stats: InterpStats::default(),
            aliases,
        }
    }

    /// Limit total eval steps (for tests of runaway programs).
    pub fn set_step_budget(&mut self, steps: u64) {
        self.steps_left = steps;
    }

    /// Set the recursion depth limit (default 256, safe on a 2 MiB test
    /// thread in debug builds). Deep limits require a correspondingly
    /// large native stack — run the interpreter on a dedicated thread
    /// with a multi-megabyte stack if you raise this (each eval level
    /// costs roughly 4 KiB unoptimized).
    pub fn set_depth_limit(&mut self, limit: usize) {
        self.depth_limit = limit;
    }

    /// Execution statistics.
    pub fn stats(&self) -> InterpStats {
        self.stats
    }

    /// Access the environment (e.g. for its cost counters).
    pub fn env(&self) -> &E {
        &self.env
    }

    /// Parse and run a whole program (sequence of top-level forms);
    /// returns the value of the last form.
    pub fn run_program(&mut self, src: &str) -> Result<Value, LispError> {
        let forms = small_sexpr::parse_all(src, &mut self.interner)
            .map_err(|e| LispError::BadForm(e.to_string()))?;
        let mut last = Value::Nil;
        for f in forms {
            last = self.eval(&f)?;
        }
        Ok(last)
    }

    /// Evaluate one expression.
    pub fn eval(&mut self, expr: &SExpr) -> Result<Value, LispError> {
        if self.steps_left == 0 {
            return Err(LispError::StepBudget);
        }
        self.steps_left -= 1;
        self.stats.steps += 1;
        match expr {
            SExpr::Nil => Ok(Value::Nil),
            SExpr::Atom(Atom::Int(i)) => Ok(Value::Int(*i)),
            SExpr::Atom(Atom::Sym(s)) => {
                if *s == self.syms.t {
                    return Ok(Value::Sym(*s));
                }
                self.env
                    .lookup(*s)
                    .ok_or_else(|| LispError::Unbound(self.interner.name(*s).to_owned()))
            }
            SExpr::Cons(c) => {
                let head = c
                    .0
                    .as_sym()
                    .ok_or_else(|| LispError::BadForm("call head must be a symbol".to_owned()))?;
                let head = *self.aliases.get(&head).unwrap_or(&head);
                let args = &c.1;
                self.eval_form(head, args)
            }
        }
    }

    fn eval_form(&mut self, head: Symbol, args: &SExpr) -> Result<Value, LispError> {
        let s = &self.syms;
        // Special forms first.
        if head == s.quote {
            let q = args
                .car()
                .ok_or_else(|| LispError::BadForm("quote".into()))?;
            return Ok(self.alloc.from_sexpr(&q));
        }
        if head == s.cond {
            return self.eval_cond(args);
        }
        if head == s.progn {
            return self.eval_progn(args);
        }
        if head == s.prog {
            return self.eval_prog(args);
        }
        if head == s.go {
            let tag = args
                .car()
                .and_then(|t| t.as_sym())
                .ok_or_else(|| LispError::BadForm("go".into()))?;
            return Err(LispError::GoSignal(tag));
        }
        if head == s.ret {
            let v = match args.car() {
                Some(e) if !e.is_nil() => self.eval(&e)?,
                _ => Value::Nil,
            };
            return Err(LispError::ReturnSignal(Box::new(ValueCarrier(v))));
        }
        if head == s.setq {
            return self.eval_setq(args);
        }
        if head == s.def {
            return self.eval_def(args);
        }
        if head == s.and {
            let mut last = Value::Sym(self.syms.t);
            for e in args.iter() {
                last = self.eval(e)?;
                if last.is_nil() {
                    return Ok(Value::Nil);
                }
            }
            return Ok(last);
        }
        if head == s.or {
            for e in args.iter() {
                let v = self.eval(e)?;
                if v.is_true() {
                    return Ok(v);
                }
            }
            return Ok(Value::Nil);
        }

        if head == s.read {
            // `(read)` or `(read var)` — the variable is a target, not an
            // evaluated argument (matches the compiler and Figure 4.15).
            let read_sym = s.read;
            let e = self.input.pop_front().ok_or(LispError::ReadEof)?;
            let v = self.alloc.from_sexpr(&e);
            if let Some(var) = args.car().and_then(|a| a.as_sym()) {
                self.env.set(var, v.clone());
            }
            self.stats.primitives += 1;
            self.hook.primitive(read_sym, &[], &v);
            return Ok(v);
        }

        // Evaluate arguments left to right (sequential Lisp semantics,
        // §6.2.1.1 — Multilisp relaxes this, the interpreter does not).
        let mut argv = Vec::new();
        for e in args.iter() {
            argv.push(self.eval(e)?);
        }

        // Primitives.
        if let Some(v) = self.try_primitive(head, &argv)? {
            return Ok(v);
        }

        // User-defined function.
        self.apply_user(head, argv)
    }

    fn eval_cond(&mut self, mut legs: &SExpr) -> Result<Value, LispError> {
        loop {
            let Some(leg) = legs.car() else {
                return Ok(Value::Nil);
            };
            if leg.is_nil() {
                return Ok(Value::Nil);
            }
            let test = leg
                .car()
                .ok_or_else(|| LispError::BadForm("cond leg".into()))?;
            let tv = self.eval(&test)?;
            if tv.is_true() {
                // Evaluate the leg body; value of last form (or the test
                // value if the leg has no body).
                let mut body = leg.cdr().unwrap_or(SExpr::Nil);
                let mut out = tv;
                while let Some(form) = body.car() {
                    if body.is_nil() {
                        break;
                    }
                    out = self.eval(&form)?;
                    body = body.cdr().unwrap_or(SExpr::Nil);
                }
                return Ok(out);
            }
            legs = match legs {
                SExpr::Cons(c) => &c.1,
                _ => return Ok(Value::Nil),
            };
        }
    }

    fn eval_progn(&mut self, body: &SExpr) -> Result<Value, LispError> {
        let mut out = Value::Nil;
        for form in body.iter() {
            out = self.eval(form)?;
        }
        Ok(out)
    }

    fn eval_prog(&mut self, args: &SExpr) -> Result<Value, LispError> {
        let locals = args
            .car()
            .ok_or_else(|| LispError::BadForm("prog locals".into()))?;
        let body: Vec<SExpr> = args.cdr().unwrap_or(SExpr::Nil).iter().cloned().collect();
        self.env.push_frame();
        for l in locals.iter() {
            if let Some(sym) = l.as_sym() {
                self.env.bind(sym, Value::Nil);
            }
        }
        let result = self.run_prog_body(&body);
        self.env.pop_frame();
        result
    }

    fn run_prog_body(&mut self, body: &[SExpr]) -> Result<Value, LispError> {
        let mut pc = 0usize;
        while pc < body.len() {
            let form = &body[pc];
            // Bare symbols are labels; skip them.
            if form.as_sym().is_some() {
                pc += 1;
                continue;
            }
            match self.eval(form) {
                Ok(_) => pc += 1,
                Err(LispError::GoSignal(tag)) => {
                    let target = body.iter().position(|f| f.as_sym() == Some(tag));
                    match target {
                        Some(i) => pc = i + 1,
                        None => {
                            // Propagate: maybe an outer prog has the label.
                            return Err(LispError::GoSignal(tag));
                        }
                    }
                }
                Err(LispError::ReturnSignal(v)) => return Ok(v.0),
                Err(e) => return Err(e),
            }
        }
        Ok(Value::Nil)
    }

    fn eval_setq(&mut self, args: &SExpr) -> Result<Value, LispError> {
        let name = args
            .car()
            .and_then(|n| n.as_sym())
            .ok_or_else(|| LispError::BadForm("setq name".into()))?;
        let vexpr = args
            .cdr()
            .and_then(|d| d.car())
            .ok_or_else(|| LispError::BadForm("setq value".into()))?;
        let v = self.eval(&vexpr)?;
        Ok(self.env.set(name, v))
    }

    fn eval_def(&mut self, args: &SExpr) -> Result<Value, LispError> {
        // (def name (lambda (params) body...))
        let name = args
            .car()
            .and_then(|n| n.as_sym())
            .ok_or_else(|| LispError::BadForm("def name".into()))?;
        let lam = args
            .cdr()
            .and_then(|d| d.car())
            .ok_or_else(|| LispError::BadForm("def lambda".into()))?;
        let head = lam.car().and_then(|h| h.as_sym());
        if head != Some(self.syms.lambda) {
            return Err(LispError::BadForm("def body must be a lambda".into()));
        }
        let params_expr = lam
            .cdr()
            .and_then(|d| d.car())
            .ok_or_else(|| LispError::BadForm("lambda params".into()))?;
        let params: Vec<Symbol> = params_expr.iter().filter_map(|p| p.as_sym()).collect();
        let body: Vec<SExpr> = lam
            .cdr()
            .and_then(|d| d.cdr())
            .unwrap_or(SExpr::Nil)
            .iter()
            .cloned()
            .collect();
        self.fns.insert(name, FnDef { params, body });
        Ok(Value::Sym(name))
    }

    fn apply_user(&mut self, name: Symbol, argv: Vec<Value>) -> Result<Value, LispError> {
        let Some(def) = self.fns.get(&name) else {
            return Err(LispError::NotAFunction(self.interner.name(name).to_owned()));
        };
        if def.params.len() != argv.len() {
            return Err(LispError::WrongArgCount {
                name: self.interner.name(name).to_owned(),
                expected: def.params.len(),
                got: argv.len(),
            });
        }
        if self.depth >= self.depth_limit {
            return Err(LispError::DepthLimit);
        }
        let params = def.params.clone();
        let body = def.body.clone();

        self.stats.fn_calls += 1;
        self.depth += 1;
        self.stats.max_depth = self.stats.max_depth.max(self.depth);
        self.hook.fn_enter(name, argv.len());

        self.env.push_frame();
        for (p, v) in params.iter().zip(argv) {
            self.env.bind(*p, v);
        }
        let mut result = Ok(Value::Nil);
        for form in &body {
            result = self.eval(form);
            if result.is_err() {
                break;
            }
        }
        // `return` at function-body top level returns from the function.
        if let Err(LispError::ReturnSignal(v)) = result {
            result = Ok(v.0);
        }
        self.env.pop_frame();
        self.depth -= 1;
        self.hook.fn_exit(name);
        result
    }

    fn try_primitive(&mut self, name: Symbol, argv: &[Value]) -> Result<Option<Value>, LispError> {
        let s = &self.syms;
        let traced = name == s.car
            || name == s.cdr
            || name == s.cons
            || name == s.rplaca
            || name == s.rplacd
            || name == s.read;
        let result: Value = if name == s.car {
            self.prim_car(argv)?
        } else if name == s.cdr {
            self.prim_cdr(argv)?
        } else if name == s.cons {
            let [a, b] = two(argv, "cons")?;
            self.alloc.cons(a.clone(), b.clone())
        } else if name == s.rplaca {
            let [a, b] = two(argv, "rplaca")?;
            match a {
                Value::Cons(c) => {
                    *c.car.borrow_mut() = b.clone();
                    a.clone()
                }
                _ => {
                    return Err(LispError::TypeError {
                        prim: "rplaca",
                        detail: "first argument must be a list".into(),
                    })
                }
            }
        } else if name == s.rplacd {
            let [a, b] = two(argv, "rplacd")?;
            match a {
                Value::Cons(c) => {
                    *c.cdr.borrow_mut() = b.clone();
                    a.clone()
                }
                _ => {
                    return Err(LispError::TypeError {
                        prim: "rplacd",
                        detail: "first argument must be a list".into(),
                    })
                }
            }
        } else if name == s.atom {
            let [a] = one(argv, "atom")?;
            self.bool_val(a.is_atom())
        } else if name == s.null || name == s.not {
            let [a] = one(argv, "null")?;
            self.bool_val(a.is_nil())
        } else if name == s.eq {
            let [a, b] = two(argv, "eq")?;
            self.bool_val(a.eq_identity(b))
        } else if name == s.equal {
            let [a, b] = two(argv, "equal")?;
            self.bool_val(a.eq_structural(b))
        } else if name == s.greaterp {
            let [a, b] = two(argv, "greaterp")?;
            let (x, y) = ints(a, b, "greaterp")?;
            self.bool_val(x > y)
        } else if name == s.lessp {
            let [a, b] = two(argv, "lessp")?;
            let (x, y) = ints(a, b, "lessp")?;
            self.bool_val(x < y)
        } else if name == s.add {
            let mut acc = 0i64;
            for v in argv {
                acc = acc.wrapping_add(int(v, "add")?);
            }
            Value::Int(acc)
        } else if name == s.sub {
            match argv {
                [a] => Value::Int(-int(a, "sub")?),
                [a, rest @ ..] => {
                    let mut acc = int(a, "sub")?;
                    for v in rest {
                        acc = acc.wrapping_sub(int(v, "sub")?);
                    }
                    Value::Int(acc)
                }
                [] => Value::Int(0),
            }
        } else if name == s.mul {
            let mut acc = 1i64;
            for v in argv {
                acc = acc.wrapping_mul(int(v, "times")?);
            }
            Value::Int(acc)
        } else if name == s.div {
            let [a, b] = two(argv, "quotient")?;
            let (x, y) = ints(a, b, "quotient")?;
            if y == 0 {
                return Err(LispError::DivideByZero);
            }
            Value::Int(x / y)
        } else if name == s.rem {
            let [a, b] = two(argv, "rem")?;
            let (x, y) = ints(a, b, "rem")?;
            if y == 0 {
                return Err(LispError::DivideByZero);
            }
            Value::Int(x % y)
        } else if name == s.hassoc {
            // Hunk-style direct access (untraced): stands in for Franz
            // Lisp hunks, the direct-access structures PEARL used
            // (§3.3.2.3). The scan happens inside the "hardware", so no
            // car/cdr primitive traffic reaches the trace.
            let [k, al] = two(argv, "hassoc")?;
            let mut cur = al.clone();
            loop {
                match cur {
                    Value::Cons(c) => {
                        let head = c.car.borrow().clone();
                        if let Value::Cons(pair) = &head {
                            if pair.car.borrow().eq_structural(k) {
                                break head;
                            }
                        }
                        let next = c.cdr.borrow().clone();
                        cur = next;
                    }
                    _ => break Value::Nil,
                }
            }
        } else if name == s.hnth {
            // Hunk field access by index (untraced).
            let [idx, l] = two(argv, "hnth")?;
            let mut k = int(idx, "hnth")?;
            let mut cur = l.clone();
            loop {
                match cur {
                    Value::Cons(c) => {
                        if k == 0 {
                            break c.car.borrow().clone();
                        }
                        k -= 1;
                        let next = c.cdr.borrow().clone();
                        cur = next;
                    }
                    _ => break Value::Nil,
                }
            }
        } else if name == s.read {
            let e = self.input.pop_front().ok_or(LispError::ReadEof)?;
            self.alloc.from_sexpr(&e)
        } else if name == s.write {
            let [a] = one(argv, "write")?;
            self.output.push(a.to_sexpr());
            a.clone()
        } else {
            return Ok(None);
        };
        if traced {
            self.stats.primitives += 1;
            self.hook.primitive(name, argv, &result);
        }
        Ok(Some(result))
    }

    fn prim_car(&mut self, argv: &[Value]) -> Result<Value, LispError> {
        let [a] = one(argv, "car")?;
        match a {
            Value::Cons(c) => Ok(c.car.borrow().clone()),
            Value::Nil => Ok(Value::Nil),
            _ => Err(LispError::TypeError {
                prim: "car",
                detail: "argument must be a list".into(),
            }),
        }
    }

    fn prim_cdr(&mut self, argv: &[Value]) -> Result<Value, LispError> {
        let [a] = one(argv, "cdr")?;
        match a {
            Value::Cons(c) => Ok(c.cdr.borrow().clone()),
            Value::Nil => Ok(Value::Nil),
            _ => Err(LispError::TypeError {
                prim: "cdr",
                detail: "argument must be a list".into(),
            }),
        }
    }

    fn bool_val(&self, b: bool) -> Value {
        if b {
            Value::Sym(self.syms.t)
        } else {
            Value::Nil
        }
    }
}

fn one<'a>(argv: &'a [Value], prim: &'static str) -> Result<[&'a Value; 1], LispError> {
    match argv {
        [a] => Ok([a]),
        _ => Err(LispError::TypeError {
            prim,
            detail: format!("expects 1 argument, got {}", argv.len()),
        }),
    }
}

fn two<'a>(argv: &'a [Value], prim: &'static str) -> Result<[&'a Value; 2], LispError> {
    match argv {
        [a, b] => Ok([a, b]),
        _ => Err(LispError::TypeError {
            prim,
            detail: format!("expects 2 arguments, got {}", argv.len()),
        }),
    }
}

fn int(v: &Value, prim: &'static str) -> Result<i64, LispError> {
    match v {
        Value::Int(i) => Ok(*i),
        _ => Err(LispError::TypeError {
            prim,
            detail: "expects integers".into(),
        }),
    }
}

fn ints(a: &Value, b: &Value, prim: &'static str) -> Result<(i64, i64), LispError> {
    Ok((int(a, prim)?, int(b, prim)?))
}

/// The Lisp-level library functions (written in the interpreted Lisp so
/// that their list traffic shows up in traces, exactly as interpreted
/// library code did in the thesis's Franz Lisp runs).
pub const PRELUDE: &str = r#"
(def cadr (lambda (x) (car (cdr x))))
(def caddr (lambda (x) (car (cdr (cdr x)))))
(def cddr (lambda (x) (cdr (cdr x))))
(def caar (lambda (x) (car (car x))))
(def cdar (lambda (x) (cdr (car x))))
(def append (lambda (a b)
  (cond ((null a) b)
        (t (cons (car a) (append (cdr a) b))))))
(def reverse-onto (lambda (a acc)
  (cond ((null a) acc)
        (t (reverse-onto (cdr a) (cons (car a) acc))))))
(def reverse (lambda (a) (reverse-onto a nil)))
(def length (lambda (a)
  (cond ((null a) 0)
        (t (add 1 (length (cdr a)))))))
(def assoc (lambda (k al)
  (cond ((null al) nil)
        ((equal k (car (car al))) (car al))
        (t (assoc k (cdr al))))))
(def member (lambda (x l)
  (cond ((null l) nil)
        ((equal x (car l)) l)
        (t (member x (cdr l))))))
(def nth (lambda (n l)
  (cond ((null l) nil)
        ((equal n 0) (car l))
        (t (nth (sub n 1) (cdr l))))))
(def last (lambda (l)
  (cond ((null l) nil)
        ((null (cdr l)) l)
        (t (last (cdr l))))))
(def copy-list (lambda (l)
  (cond ((atom l) l)
        (t (cons (copy-list (car l)) (copy-list (cdr l)))))))
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::DeepEnv;
    use small_sexpr::print;

    fn interp() -> Interp<DeepEnv, NoHook> {
        let mut it = Interp::new(Interner::new(), DeepEnv::new(), NoHook);
        it.run_program(PRELUDE).expect("prelude");
        it
    }

    fn eval_str(it: &mut Interp<DeepEnv, NoHook>, src: &str) -> String {
        let v = it.run_program(src).expect(src);
        print(&v.to_sexpr(), &it.interner)
    }

    #[test]
    fn arithmetic_and_aliases() {
        let mut it = interp();
        assert_eq!(eval_str(&mut it, "(add 1 2 3)"), "6");
        assert_eq!(eval_str(&mut it, "(+ 1 2)"), "3");
        assert_eq!(eval_str(&mut it, "(- 10 3 2)"), "5");
        assert_eq!(eval_str(&mut it, "(* 3 4)"), "12");
        assert_eq!(eval_str(&mut it, "(/ 7 2)"), "3");
        assert_eq!(eval_str(&mut it, "(rem 7 2)"), "1");
    }

    #[test]
    fn list_primitives() {
        let mut it = interp();
        assert_eq!(eval_str(&mut it, "(car '(a b))"), "a");
        assert_eq!(eval_str(&mut it, "(cdr '(a b))"), "(b)");
        assert_eq!(eval_str(&mut it, "(cons 1 '(2 3))"), "(1 2 3)");
        assert_eq!(eval_str(&mut it, "(car nil)"), "nil");
    }

    #[test]
    fn destructive_update() {
        let mut it = interp();
        assert_eq!(
            eval_str(&mut it, "(progn (setq x '(1 2 3)) (rplaca x 9) x)"),
            "(9 2 3)"
        );
        assert_eq!(
            eval_str(&mut it, "(progn (setq y '(1 2 3)) (rplacd y '(8)) y)"),
            "(1 8)"
        );
    }

    #[test]
    fn factorial_from_figure_4_14() {
        let mut it = interp();
        let _ = it
            .run_program("(def fact (lambda (x) (cond ((equal x 0) 1) (t (* x (fact (- x 1)))))))")
            .unwrap();
        assert_eq!(eval_str(&mut it, "(fact 10)"), "3628800");
    }

    #[test]
    fn dynamic_scoping() {
        let mut it = interp();
        // g reads x dynamically from f's frame.
        it.run_program("(def g (lambda () x)) (def f (lambda (x) (g)))")
            .unwrap();
        assert_eq!(eval_str(&mut it, "(f 42)"), "42");
    }

    #[test]
    fn cond_returns_test_value_without_body() {
        let mut it = interp();
        assert_eq!(eval_str(&mut it, "(cond (nil 1) (5))"), "5");
        assert_eq!(eval_str(&mut it, "(cond (nil 1))"), "nil");
    }

    #[test]
    fn prog_go_return() {
        let mut it = interp();
        // Iterative sum via prog/go (Figure 4.15 style control flow).
        let src = "
        (def sum-to (lambda (n)
          (prog (acc i)
            (setq acc 0)
            (setq i 0)
            loop
            (cond ((greaterp i n) (return acc)))
            (setq acc (add acc i))
            (setq i (add i 1))
            (go loop))))
        (sum-to 10)";
        assert_eq!(eval_str(&mut it, src), "55");
    }

    #[test]
    fn prelude_library() {
        let mut it = interp();
        assert_eq!(eval_str(&mut it, "(append '(1 2) '(3 4))"), "(1 2 3 4)");
        assert_eq!(eval_str(&mut it, "(reverse '(1 2 3))"), "(3 2 1)");
        assert_eq!(eval_str(&mut it, "(length '(a b c))"), "3");
        assert_eq!(eval_str(&mut it, "(assoc 'b '((a 1) (b 2)))"), "(b 2)");
        assert_eq!(eval_str(&mut it, "(member 2 '(1 2 3))"), "(2 3)");
        assert_eq!(eval_str(&mut it, "(nth 1 '(a b c))"), "b");
    }

    #[test]
    fn read_and_write() {
        let mut it = interp();
        let e = small_sexpr::parse("(hello world)", &mut it.interner).unwrap();
        it.input.push_back(e);
        assert_eq!(
            eval_str(&mut it, "(progn (setq v (read)) (write v))"),
            "(hello world)"
        );
        assert_eq!(it.output.len(), 1);
    }

    #[test]
    fn errors() {
        let mut it = interp();
        assert!(matches!(
            it.run_program("undefined-var"),
            Err(LispError::Unbound(_))
        ));
        assert!(matches!(
            it.run_program("(no-such-fn 1)"),
            Err(LispError::NotAFunction(_))
        ));
        assert!(matches!(
            it.run_program("(car 5)"),
            Err(LispError::TypeError { .. })
        ));
        assert!(matches!(
            it.run_program("(/ 1 0)"),
            Err(LispError::DivideByZero)
        ));
        assert!(matches!(it.run_program("(read)"), Err(LispError::ReadEof)));
    }

    #[test]
    fn step_budget_stops_runaways() {
        let mut it = interp();
        it.run_program("(def loop-forever (lambda () (loop-forever)))")
            .unwrap();
        it.set_step_budget(10_000);
        assert!(matches!(
            it.run_program("(loop-forever)"),
            Err(LispError::StepBudget) | Err(LispError::DepthLimit)
        ));
    }

    #[test]
    fn eq_vs_equal() {
        let mut it = interp();
        assert_eq!(eval_str(&mut it, "(equal '(1 2) '(1 2))"), "t");
        assert_eq!(eval_str(&mut it, "(eq '(1 2) '(1 2))"), "nil");
        assert_eq!(eval_str(&mut it, "(progn (setq a '(1 2)) (eq a a))"), "t");
    }

    #[test]
    fn interpreter_runs_identically_on_all_environments() {
        // The environment implementation is a performance choice, not a
        // semantic one (§2.3.2): the same program yields the same value
        // and output under deep, shallow, and value-cached binding.
        fn run<E: crate::env::Environment>(env: E) -> (String, Vec<String>) {
            let mut it = Interp::new(Interner::new(), env, NoHook);
            it.run_program(PRELUDE).unwrap();
            let src = "
            (def tally (lambda (l acc)
              (cond ((null l) acc)
                    (t (progn
                         (setq total (add total (car l)))
                         (tally (cdr l) (cons (times 2 (car l)) acc)))))))
            (setq total 0)
            (write (tally '(1 2 3 4 5) nil))
            (write total)
            total";
            let v = it.run_program(src).unwrap();
            let out = it.output.iter().map(|e| print(e, &it.interner)).collect();
            (print(&v.to_sexpr(), &it.interner), out)
        }
        let deep = run(crate::env::DeepEnv::new());
        let shallow = run(crate::env::ShallowEnv::new());
        let cached = run(crate::env::ValueCacheEnv::new(8));
        assert_eq!(deep, shallow);
        assert_eq!(deep, cached);
        assert_eq!(deep.0, "15");
        assert_eq!(deep.1, vec!["(10 8 6 4 2)", "15"]);
    }

    #[test]
    fn stats_track_calls_and_depth() {
        let mut it = interp();
        it.run_program("(def down (lambda (n) (cond ((equal n 0) 0) (t (down (- n 1))))))")
            .unwrap();
        it.run_program("(down 7)").unwrap();
        assert_eq!(it.stats().fn_calls, 8);
        assert_eq!(it.stats().max_depth, 8);
    }
}
