//! Deep binding with a FACOM-Alpha value cache (§2.3.2, Figure 2.5).
//!
//! The environment proper is a deep-bound association list; an
//! associative *value cache* of (name, value, valid, frame number)
//! entries is searched first on lookup. Cache maintenance follows the
//! Alpha exactly:
//!
//! * on function **call**, entries for names being rebound are
//!   invalidated;
//! * on a lookup **miss**, the a-list is searched and the entry is
//!   (re)validated with the current frame number;
//! * on **return**, every entry tagged with the returning frame's number
//!   is invalidated.

use super::{deep::DeepEnv, EnvStats, Environment};
use crate::value::Value;
use small_sexpr::Symbol;

#[derive(Clone)]
struct CacheEntry {
    name: Symbol,
    value: Value,
    frame: usize,
    valid: bool,
}

/// Deep-bound environment fronted by a fixed-capacity value cache.
pub struct ValueCacheEnv {
    inner: DeepEnv,
    cache: Vec<CacheEntry>,
    capacity: usize,
    /// Round-robin replacement cursor.
    cursor: usize,
    stats_cache: (u64, u64), // (hits, misses)
}

impl ValueCacheEnv {
    /// Create an environment with a value cache of `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        ValueCacheEnv {
            inner: DeepEnv::new(),
            cache: Vec::with_capacity(capacity),
            capacity,
            cursor: 0,
            stats_cache: (0, 0),
        }
    }

    fn find(&mut self, name: Symbol) -> Option<usize> {
        self.cache.iter().position(|e| e.name == name)
    }

    fn install(&mut self, name: Symbol, value: Value, frame: usize) {
        if let Some(i) = self.find(name) {
            self.cache[i] = CacheEntry {
                name,
                value,
                frame,
                valid: true,
            };
            return;
        }
        let entry = CacheEntry {
            name,
            value,
            frame,
            valid: true,
        };
        // Prefer an invalid slot; otherwise round-robin replace.
        if let Some(i) = self.cache.iter().position(|e| !e.valid) {
            self.cache[i] = entry;
        } else if self.cache.len() < self.capacity {
            self.cache.push(entry);
        } else {
            let i = self.cursor % self.capacity;
            self.cursor = self.cursor.wrapping_add(1);
            self.cache[i] = entry;
        }
    }

    /// Cache hit/miss counts.
    pub fn cache_counts(&self) -> (u64, u64) {
        self.stats_cache
    }
}

impl Environment for ValueCacheEnv {
    fn push_frame(&mut self) {
        self.inner.push_frame();
    }

    fn pop_frame(&mut self) {
        let frame = self.inner.depth();
        for e in &mut self.cache {
            if e.frame == frame {
                e.valid = false;
            }
        }
        self.inner.pop_frame();
    }

    fn bind(&mut self, name: Symbol, v: Value) {
        // The Alpha invalidates entries for names being rebound at call
        // time; binding *is* the rebinding moment here.
        if let Some(i) = self.find(name) {
            self.cache[i].valid = false;
        }
        self.inner.bind(name, v);
    }

    fn lookup(&mut self, name: Symbol) -> Option<Value> {
        let frame = self.inner.depth();
        if let Some(i) = self.find(name) {
            if self.cache[i].valid {
                self.stats_cache.0 += 1;
                return Some(self.cache[i].value.clone());
            }
        }
        self.stats_cache.1 += 1;
        let v = self.inner.lookup(name)?;
        self.install(name, v.clone(), frame);
        Some(v)
    }

    fn set(&mut self, name: Symbol, v: Value) -> Value {
        let frame = self.inner.depth();
        let out = self.inner.set(name, v.clone());
        self.install(name, v, frame);
        out
    }

    fn depth(&self) -> usize {
        self.inner.depth()
    }

    fn stats(&self) -> EnvStats {
        let mut s = self.inner.stats();
        s.cache_hits = self.stats_cache.0;
        s.cache_misses = self.stats_cache.1;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use small_sexpr::Interner;

    #[test]
    fn conformance() {
        super::super::conformance::exercise(ValueCacheEnv::new(16));
    }

    #[test]
    fn repeated_lookups_hit_the_cache() {
        let mut i = Interner::new();
        let mut env = ValueCacheEnv::new(8);
        let x = i.intern("x");
        env.bind(x, Value::Int(1));
        // Bury x under many frames so deep lookups would be expensive.
        for k in 0..20 {
            env.push_frame();
            env.bind(i.intern(&format!("v{k}")), Value::Int(k));
        }
        env.lookup(x); // miss, installs
        let probes_after_miss = env.stats().probes;
        for _ in 0..10 {
            env.lookup(x); // hits
        }
        assert_eq!(
            env.stats().probes,
            probes_after_miss,
            "hits avoid the a-list"
        );
        let (hits, misses) = env.cache_counts();
        assert_eq!((hits, misses), (10, 1));
    }

    #[test]
    fn return_invalidates_frame_entries() {
        let mut i = Interner::new();
        let mut env = ValueCacheEnv::new(8);
        let x = i.intern("x");
        env.bind(x, Value::Int(1));
        env.push_frame();
        env.bind(x, Value::Int(2));
        assert!(matches!(env.lookup(x), Some(Value::Int(2)))); // cached @ frame 1
        env.pop_frame();
        // The frame-1 entry must not serve a stale 2.
        assert!(matches!(env.lookup(x), Some(Value::Int(1))));
    }

    #[test]
    fn rebinding_invalidates() {
        let mut i = Interner::new();
        let mut env = ValueCacheEnv::new(8);
        let x = i.intern("x");
        env.bind(x, Value::Int(1));
        env.lookup(x);
        env.push_frame();
        env.bind(x, Value::Int(2)); // must invalidate the cached 1
        assert!(matches!(env.lookup(x), Some(Value::Int(2))));
        env.pop_frame();
    }

    #[test]
    fn capacity_is_respected() {
        let mut i = Interner::new();
        let mut env = ValueCacheEnv::new(2);
        for k in 0..5 {
            let s = i.intern(&format!("v{k}"));
            env.bind(s, Value::Int(k));
            env.lookup(s);
        }
        assert!(env.cache.len() <= 2);
    }
}
