//! Deep binding: the environment as an association list (Figure 2.3).
//!
//! New bindings are pushed at the head on function call and popped on
//! return — O(1) call/return. Lookup scans from the head for the most
//! recent binding — O(environment size) worst case, the cost the thesis
//! repeatedly flags. The scan length is recorded in
//! [`EnvStats::probes`].

use super::{EnvStats, Environment};
use crate::value::Value;
use small_sexpr::Symbol;

/// Association-list environment.
#[derive(Default)]
pub struct DeepEnv {
    /// The a-list, head at the end of the Vec (push/pop at the tail).
    alist: Vec<(Symbol, Value)>,
    /// Start index of each open frame.
    frames: Vec<usize>,
    stats: EnvStats,
}

impl DeepEnv {
    /// Create an empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current association-list length (environment size).
    pub fn alist_len(&self) -> usize {
        self.alist.len()
    }
}

impl Environment for DeepEnv {
    fn push_frame(&mut self) {
        self.frames.push(self.alist.len());
    }

    fn pop_frame(&mut self) {
        let mark = self.frames.pop().expect("pop of top-level frame");
        self.stats.unbinds += (self.alist.len() - mark) as u64;
        self.alist.truncate(mark);
    }

    fn bind(&mut self, name: Symbol, v: Value) {
        self.stats.binds += 1;
        self.alist.push((name, v));
    }

    fn lookup(&mut self, name: Symbol) -> Option<Value> {
        self.stats.lookups += 1;
        for (n, v) in self.alist.iter().rev() {
            self.stats.probes += 1;
            if *n == name {
                return Some(v.clone());
            }
        }
        None
    }

    fn set(&mut self, name: Symbol, v: Value) -> Value {
        for (n, slot) in self.alist.iter_mut().rev() {
            if *n == name {
                *slot = v.clone();
                return v;
            }
        }
        // Unbound: create a global (bottom-of-alist) binding so it
        // survives every open frame.
        self.alist.insert(0, (name, v.clone()));
        for f in &mut self.frames {
            *f += 1;
        }
        self.stats.binds += 1;
        v
    }

    fn depth(&self) -> usize {
        self.frames.len()
    }

    fn stats(&self) -> EnvStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use small_sexpr::Interner;

    #[test]
    fn conformance() {
        super::super::conformance::exercise(DeepEnv::new());
    }

    #[test]
    fn lookup_cost_grows_with_depth() {
        let mut i = Interner::new();
        let mut env = DeepEnv::new();
        let bottom = i.intern("bottom");
        env.bind(bottom, Value::Int(0));
        for k in 0..50 {
            env.push_frame();
            env.bind(i.intern(&format!("v{k}")), Value::Int(k));
        }
        let before = env.stats().probes;
        env.lookup(bottom);
        let probes = env.stats().probes - before;
        assert_eq!(probes, 51, "deep lookup scans the whole a-list");
    }

    #[test]
    fn call_return_is_cheap() {
        let mut env = DeepEnv::new();
        env.push_frame();
        env.pop_frame();
        assert_eq!(env.stats().probes, 0);
    }
}
