//! Shallow binding: oblist value cells plus a save stack (Figure 2.4).
//!
//! Every symbol has one value cell; lookup is a direct table access.
//! On function call, each new binding saves the cell's old contents on a
//! stack; on return the saved values are popped and restored. Lookup is
//! O(1) but call/return pay per-binding save/restore work — the other
//! side of the trade-off from [`super::DeepEnv`].

use super::{EnvStats, Environment};
use crate::value::Value;
use small_sexpr::Symbol;

/// Oblist environment.
#[derive(Default)]
pub struct ShallowEnv {
    /// Value cell per symbol id (grown on demand).
    cells: Vec<Option<Value>>,
    /// Saved (symbol, old value) pairs, restored on pop.
    save_stack: Vec<(Symbol, Option<Value>)>,
    /// Save-stack mark per open frame.
    frames: Vec<usize>,
    stats: EnvStats,
}

impl ShallowEnv {
    /// Create an empty environment.
    pub fn new() -> Self {
        Self::default()
    }

    fn cell(&mut self, s: Symbol) -> &mut Option<Value> {
        let idx = s.index();
        if idx >= self.cells.len() {
            self.cells.resize(idx + 1, None);
        }
        &mut self.cells[idx]
    }

    /// Current save-stack depth.
    pub fn save_stack_len(&self) -> usize {
        self.save_stack.len()
    }
}

impl Environment for ShallowEnv {
    fn push_frame(&mut self) {
        self.frames.push(self.save_stack.len());
    }

    fn pop_frame(&mut self) {
        let mark = self.frames.pop().expect("pop of top-level frame");
        while self.save_stack.len() > mark {
            let (sym, old) = self.save_stack.pop().expect("marked entry");
            *self.cell(sym) = old;
            self.stats.unbinds += 1;
        }
    }

    fn bind(&mut self, name: Symbol, v: Value) {
        self.stats.binds += 1;
        let old = self.cell(name).take();
        if self.frames.is_empty() {
            // Top-level bind: nothing to restore, overwrite in place.
        } else {
            self.save_stack.push((name, old));
        }
        *self.cell(name) = Some(v);
    }

    fn lookup(&mut self, name: Symbol) -> Option<Value> {
        self.stats.lookups += 1;
        self.stats.probes += 1; // one table access
        self.cell(name).clone()
    }

    fn set(&mut self, name: Symbol, v: Value) -> Value {
        // setq writes the value cell directly; if the name was entirely
        // unbound this creates a global (no save-stack entry, so it
        // survives frame pops).
        *self.cell(name) = Some(v.clone());
        v
    }

    fn depth(&self) -> usize {
        self.frames.len()
    }

    fn stats(&self) -> EnvStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use small_sexpr::Interner;

    #[test]
    fn conformance() {
        super::super::conformance::exercise(ShallowEnv::new());
    }

    #[test]
    fn lookup_is_constant_cost() {
        let mut i = Interner::new();
        let mut env = ShallowEnv::new();
        let bottom = i.intern("bottom");
        env.bind(bottom, Value::Int(0));
        for k in 0..50 {
            env.push_frame();
            env.bind(i.intern(&format!("v{k}")), Value::Int(k));
        }
        let before = env.stats().probes;
        env.lookup(bottom);
        assert_eq!(env.stats().probes - before, 1, "shallow lookup is O(1)");
    }

    #[test]
    fn rebinding_saves_and_restores() {
        let mut i = Interner::new();
        let mut env = ShallowEnv::new();
        let x = i.intern("x");
        env.bind(x, Value::Int(1));
        env.push_frame();
        env.bind(x, Value::Int(2));
        assert_eq!(env.save_stack_len(), 1, "old value saved on the stack");
        env.pop_frame();
        assert!(matches!(env.lookup(x), Some(Value::Int(1))));
        assert_eq!(env.save_stack_len(), 0);
    }
}
