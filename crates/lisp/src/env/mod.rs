//! Dynamic-binding environments (§2.2.1, §2.3.2).
//!
//! The environment is the collection of referencing contexts of all
//! uncompleted function calls: a set of name→value bindings updated on
//! every call and return, interrogated on every variable reference. The
//! thesis contrasts two implementations plus a cached hybrid, all built
//! here behind one trait:
//!
//! * [`DeepEnv`] — an association list; fast call/return, slow lookup
//!   (Figure 2.3),
//! * [`ShallowEnv`] — an oblist of value cells plus a save stack; fast
//!   lookup, slower call/return (Figure 2.4),
//! * [`ValueCacheEnv`] — deep binding fronted by a FACOM-Alpha style
//!   value cache with frame-number invalidation (Figure 2.5).
//!
//! Each records the operation counts a machine designer would care about
//! ([`EnvStats`]), which the `env_binding` bench compares.

mod deep;
mod shallow;
mod value_cache;

pub use deep::DeepEnv;
pub use shallow::ShallowEnv;
pub use value_cache::ValueCacheEnv;

use crate::value::Value;
use small_sexpr::Symbol;

/// Cost counters for an environment implementation.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EnvStats {
    /// Name lookups requested.
    pub lookups: u64,
    /// Association-list cells (or table slots) inspected during lookups.
    pub probes: u64,
    /// Bindings added (function-call work).
    pub binds: u64,
    /// Bindings removed/restored (function-return work).
    pub unbinds: u64,
    /// Value-cache hits (zero for uncached implementations).
    pub cache_hits: u64,
    /// Value-cache misses (zero for uncached implementations).
    pub cache_misses: u64,
}

/// A dynamic-binding environment.
pub trait Environment {
    /// Enter a new referencing context (function call).
    fn push_frame(&mut self);

    /// Leave the current context (function return), undoing its bindings.
    fn pop_frame(&mut self);

    /// Add a binding to the current context.
    fn bind(&mut self, name: Symbol, v: Value);

    /// Current binding of `name`, most recent context first.
    fn lookup(&mut self, name: Symbol) -> Option<Value>;

    /// `setq`: overwrite the most recent binding of `name`; if unbound,
    /// create a top-level (global) binding. Returns the new value.
    fn set(&mut self, name: Symbol, v: Value) -> Value;

    /// Current frame depth (0 = top level).
    fn depth(&self) -> usize;

    /// Cost counters.
    fn stats(&self) -> EnvStats;
}

#[cfg(test)]
pub(crate) mod conformance {
    //! A shared conformance suite run against every implementation —
    //! all three must agree on *semantics*, differing only in cost.

    use super::*;
    use small_sexpr::Interner;

    pub fn exercise<E: Environment>(mut env: E) {
        let mut i = Interner::new();
        let x = i.intern("x");
        let y = i.intern("y");

        // Top-level binding.
        env.bind(x, Value::Int(1));
        assert!(matches!(env.lookup(x), Some(Value::Int(1))));
        assert!(env.lookup(y).is_none());

        // Call shadows x.
        env.push_frame();
        env.bind(x, Value::Int(2));
        env.bind(y, Value::Int(3));
        assert!(matches!(env.lookup(x), Some(Value::Int(2))));
        assert!(matches!(env.lookup(y), Some(Value::Int(3))));

        // Nested call shadows again.
        env.push_frame();
        env.bind(x, Value::Int(4));
        assert!(matches!(env.lookup(x), Some(Value::Int(4))));
        assert!(
            matches!(env.lookup(y), Some(Value::Int(3))),
            "y from outer frame"
        );

        // setq updates the latest binding.
        env.set(x, Value::Int(5));
        assert!(matches!(env.lookup(x), Some(Value::Int(5))));
        env.pop_frame();
        assert!(
            matches!(env.lookup(x), Some(Value::Int(2))),
            "shadowing undone"
        );

        env.pop_frame();
        assert!(matches!(env.lookup(x), Some(Value::Int(1))));
        assert!(env.lookup(y).is_none(), "call bindings removed on return");

        // setq of an unbound name creates a global.
        env.set(y, Value::Int(9));
        assert!(matches!(env.lookup(y), Some(Value::Int(9))));

        // Global set survives a call/return pair.
        env.push_frame();
        env.set(y, Value::Int(10));
        env.pop_frame();
        assert!(matches!(env.lookup(y), Some(Value::Int(10))));
    }
}
