//! The SMALL stack-machine instruction set (§4.3.4).
//!
//! The thesis sketches (rather than fully specifies) an instruction set
//! for a stack machine "with the list manipulating functionality of
//! SMALL": function call/return, adding bindings to the environment,
//! pushing current bindings and immediates, I/O, list operations,
//! arithmetic/logic, and conditional branching on the top of stack.
//! Figures 4.14 and 4.15 show `fact` and a list-manipulation example in
//! this ISA; the compiler in [`crate::compiler`] reproduces both shapes.
//!
//! Pre-processing resolves function arguments and `prog` locals to known
//! frame offsets (`PushStk`/`SetStk`), so only free variables pay a
//! run-time environment search (`PushName`/`SetName`) — exactly the
//! §4.3.1 compilation note.

use small_sexpr::Symbol;
use std::fmt;

/// A code address (index into the instruction vector).
pub type CodeAddr = usize;

/// One stack-machine instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Inst {
    /// Pop TOS and bind it to `sym` in the current frame (callee
    /// prologue: `BINDN x` in Figure 4.14).
    BindN(Symbol),
    /// Bind `nil` to `sym` in the current frame (prog locals).
    BindNil(Symbol),
    /// Push the value at frame offset `k` (0-based; argument/local
    /// resolved at compile time).
    PushStk(u16),
    /// Push the current binding of a free variable (run-time search).
    PushName(Symbol),
    /// Push an integer constant (`PUSHSYM 0` in Figure 4.14).
    PushInt(i64),
    /// Push a symbol constant.
    PushSym(Symbol),
    /// Push nil.
    PushNil,
    /// Push (a fresh copy of) the quoted constant with this index.
    PushConst(u16),
    /// Discard TOS.
    Pop,
    /// Duplicate TOS (used for body-less cond legs whose value is the
    /// test value).
    Dup,
    /// Store TOS into frame offset `k` (setq of an arg/local); leaves the
    /// value on the stack (setq yields its value).
    SetStk(u16),
    /// Store TOS into the latest binding of a free variable.
    SetName(Symbol),
    /// Unconditional jump.
    Jmp(CodeAddr),
    /// Branch if TOS is nil (pops).
    Brf(CodeAddr),
    /// Branch if TOS is non-nil (pops).
    Brt(CodeAddr),
    /// Pop 2, branch if unequal (the `NEQUALP label` of Figure 4.14).
    BrNeq(CodeAddr),

    // Arithmetic (pop operands, push result).
    /// TOS-1 + TOS.
    AddOp,
    /// TOS-1 − TOS (the `SUBOP` of Figure 4.14).
    SubOp,
    /// TOS-1 × TOS (the `MULOP` of Figure 4.14).
    MulOp,
    /// TOS-1 ÷ TOS.
    DivOp,
    /// TOS-1 mod TOS.
    RemOp,

    // Predicates (pop operands, push t/nil).
    /// Structural equality.
    EqualP,
    /// Identity equality.
    EqP,
    /// TOS-1 > TOS.
    GreaterP,
    /// TOS-1 < TOS.
    LessP,
    /// Atom test.
    AtomP,
    /// Nil test (also `not`).
    NullP,

    // List operations (the LP requests of §4.3.2.2).
    /// car of TOS (`CAROP`).
    CarOp,
    /// cdr of TOS (`CDROP` in Figure 4.15).
    CdrOp,
    /// cons of TOS-1 and TOS.
    ConsOp,
    /// rplaca: TOS-1 gets car TOS; pushes the modified list.
    RplacaOp,
    /// rplacd.
    RplacdOp,
    /// Read a list from the input queue, push it (`RDLIST`).
    RdList,
    /// Write TOS to output (`WRLIST`); value stays.
    WrList,

    /// Call function `sym` with `n` arguments on the stack (`FCALL`).
    FCall(Symbol, u8),
    /// Return TOS to the caller (`FRETN`).
    FRetN,
    /// Stop the machine (end of top-level code).
    Halt,
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Inst::BindN(s) => write!(f, "BINDN    #{}", s.0),
            Inst::BindNil(s) => write!(f, "BINDNIL  #{}", s.0),
            Inst::PushStk(k) => write!(f, "PUSHSTK  {}", k + 1),
            Inst::PushName(s) => write!(f, "PUSHNAME #{}", s.0),
            Inst::PushInt(i) => write!(f, "PUSHSYM  {i}"),
            Inst::PushSym(s) => write!(f, "PUSHSYM  #{}", s.0),
            Inst::PushNil => write!(f, "PUSHNIL"),
            Inst::PushConst(k) => write!(f, "PUSHCST  {k}"),
            Inst::Pop => write!(f, "POP"),
            Inst::Dup => write!(f, "DUP"),
            Inst::SetStk(k) => write!(f, "SETQ     {}", k + 1),
            Inst::SetName(s) => write!(f, "SETQN    #{}", s.0),
            Inst::Jmp(a) => write!(f, "JMP      {a}"),
            Inst::Brf(a) => write!(f, "BRF      {a}"),
            Inst::Brt(a) => write!(f, "BRT      {a}"),
            Inst::BrNeq(a) => write!(f, "NEQUALP  {a}"),
            Inst::AddOp => write!(f, "ADDOP"),
            Inst::SubOp => write!(f, "SUBOP"),
            Inst::MulOp => write!(f, "MULOP"),
            Inst::DivOp => write!(f, "DIVOP"),
            Inst::RemOp => write!(f, "REMOP"),
            Inst::EqualP => write!(f, "EQUALP"),
            Inst::EqP => write!(f, "EQP"),
            Inst::GreaterP => write!(f, "GREATERP"),
            Inst::LessP => write!(f, "LESSP"),
            Inst::AtomP => write!(f, "ATOMP"),
            Inst::NullP => write!(f, "NULLP"),
            Inst::CarOp => write!(f, "CAROP"),
            Inst::CdrOp => write!(f, "CDROP"),
            Inst::ConsOp => write!(f, "CONSOP"),
            Inst::RplacaOp => write!(f, "RPLACA"),
            Inst::RplacdOp => write!(f, "RPLACD"),
            Inst::RdList => write!(f, "RDLIST"),
            Inst::WrList => write!(f, "WRLIST"),
            Inst::FCall(s, n) => write!(f, "FCALL    #{} {n}", s.0),
            Inst::FRetN => write!(f, "FRETN"),
            Inst::Halt => write!(f, "HALT"),
        }
    }
}

/// A compiled program: code, function entry points, and the quoted
/// constants referenced by `PushConst`.
#[derive(Debug, Default, Clone)]
pub struct Program {
    /// Flat instruction vector; functions are contiguous regions.
    pub code: Vec<Inst>,
    /// Entry point and arity per defined function.
    pub functions: std::collections::HashMap<Symbol, FnInfo>,
    /// Quoted list constants (fresh copies pushed at run time).
    pub constants: Vec<small_sexpr::SExpr>,
    /// Entry point of the top-level code.
    pub entry: CodeAddr,
}

/// Metadata for one compiled function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FnInfo {
    /// Code address of the first instruction (the `BINDN` prologue).
    pub entry: CodeAddr,
    /// Number of parameters.
    pub arity: u8,
}

impl Program {
    /// Render a disassembly listing resolving symbol names.
    pub fn disassemble(&self, interner: &small_sexpr::Interner) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let mut entries: Vec<(CodeAddr, String)> = self
            .functions
            .iter()
            .map(|(s, fi)| (fi.entry, interner.name(*s).to_owned()))
            .collect();
        entries.push((self.entry, "<top>".to_owned()));
        entries.sort();
        for (pc, inst) in self.code.iter().enumerate() {
            if let Some((_, name)) = entries.iter().find(|(a, _)| *a == pc) {
                let _ = writeln!(out, "{name}:");
            }
            let rendered = match inst {
                Inst::BindN(s) => format!("BINDN    {}", interner.name(*s)),
                Inst::BindNil(s) => format!("BINDNIL  {}", interner.name(*s)),
                Inst::PushName(s) => format!("PUSHNAME {}", interner.name(*s)),
                Inst::PushSym(s) => format!("PUSHSYM  {}", interner.name(*s)),
                Inst::SetName(s) => format!("SETQN    {}", interner.name(*s)),
                Inst::FCall(s, n) => format!("FCALL    {} {}", interner.name(*s), n),
                other => format!("{other}"),
            };
            let _ = writeln!(out, "  {pc:4}  {rendered}");
        }
        out
    }
}
