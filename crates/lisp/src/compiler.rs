//! Compiler from the simple Lisp (§4.3.4) to the stack-machine ISA.
//!
//! Mirrors the thesis's exercise: scan a file of function definitions and
//! a top-level call, generate code per function by walking the definition
//! tree (emitting a node after its children), and backpatch forward
//! references. Arguments and `prog` locals compile to known frame
//! offsets; free variables fall back to run-time name search (§4.3.1).

use crate::isa::{CodeAddr, FnInfo, Inst, Program};
use fxhash::FxHashMap;
use small_sexpr::{Atom, Interner, SExpr, Symbol};
use std::fmt;

/// Compilation errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// Malformed special form.
    BadForm(String),
    /// `go` to an unknown label.
    NoSuchLabel(String),
    /// Call head is not a symbol.
    BadCallHead,
    /// `def` encountered somewhere other than top level.
    NestedDef,
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::BadForm(s) => write!(f, "malformed form: {s}"),
            CompileError::NoSuchLabel(l) => write!(f, "no such label: {l}"),
            CompileError::BadCallHead => write!(f, "call head must be a symbol"),
            CompileError::NestedDef => write!(f, "def is only allowed at top level"),
        }
    }
}

impl std::error::Error for CompileError {}

struct Ctx {
    /// Frame-offset table for the function being compiled: slots 0..
    /// `n_params` hold the parameters in *reverse* declaration order
    /// (they are bound last-argument-first, Figure 4.14), and slots from
    /// `n_params` on hold prog locals in binding order.
    slots: Vec<Symbol>,
    /// Number of leading parameter slots.
    n_params: usize,
    /// Labels of the enclosing prog bodies: name → (patched later) addr.
    labels: FxHashMap<Symbol, CodeAddr>,
    /// Pending go-jumps to labels not yet seen: (code index, label).
    pending_gos: Vec<(CodeAddr, Symbol)>,
}

impl Ctx {
    /// The slot holding the *most recent* binding of `name` under the
    /// dynamic-binding discipline: parameters were bound in declaration
    /// order (so a duplicated name resolves to the later parameter),
    /// and locals were bound after all parameters.
    fn slot_of(&self, name: Symbol) -> Option<u16> {
        let mut best: Option<(usize, usize)> = None; // (bind time, slot)
        for (i, s) in self.slots.iter().enumerate() {
            if *s == name {
                let t = if i < self.n_params {
                    self.n_params - 1 - i
                } else {
                    i
                };
                if best.is_none_or(|(bt, _)| t >= bt) {
                    best = Some((t, i));
                }
            }
        }
        best.map(|(_, i)| i as u16)
    }
}

struct Names {
    quote: Symbol,
    cond: Symbol,
    prog: Symbol,
    progn: Symbol,
    go: Symbol,
    ret: Symbol,
    setq: Symbol,
    def: Symbol,
    lambda: Symbol,
    and: Symbol,
    or: Symbol,
    t: Symbol,
    read: Symbol,
    prims: FxHashMap<Symbol, Inst>,
}

impl Names {
    fn new(i: &mut Interner) -> Self {
        let mut prims = FxHashMap::default();
        for (name, inst) in [
            ("car", Inst::CarOp),
            ("cdr", Inst::CdrOp),
            ("cons", Inst::ConsOp),
            ("rplaca", Inst::RplacaOp),
            ("rplacd", Inst::RplacdOp),
            ("add", Inst::AddOp),
            ("+", Inst::AddOp),
            ("plus", Inst::AddOp),
            ("sub", Inst::SubOp),
            ("-", Inst::SubOp),
            ("difference", Inst::SubOp),
            ("times", Inst::MulOp),
            ("*", Inst::MulOp),
            ("quotient", Inst::DivOp),
            ("/", Inst::DivOp),
            ("rem", Inst::RemOp),
            ("equal", Inst::EqualP),
            ("=", Inst::EqualP),
            ("equalp", Inst::EqualP),
            ("eq", Inst::EqP),
            ("greaterp", Inst::GreaterP),
            (">", Inst::GreaterP),
            ("lessp", Inst::LessP),
            ("<", Inst::LessP),
            ("atom", Inst::AtomP),
            ("atomp", Inst::AtomP),
            ("null", Inst::NullP),
            ("nullp", Inst::NullP),
            ("not", Inst::NullP),
            ("write", Inst::WrList),
            ("print", Inst::WrList),
        ] {
            prims.insert(i.intern(name), inst);
        }
        Names {
            quote: i.intern("quote"),
            cond: i.intern("cond"),
            prog: i.intern("prog"),
            progn: i.intern("progn"),
            go: i.intern("go"),
            ret: i.intern("return"),
            setq: i.intern("setq"),
            def: i.intern("def"),
            lambda: i.intern("lambda"),
            and: i.intern("and"),
            or: i.intern("or"),
            t: i.intern("t"),
            read: i.intern("read"),
            prims,
        }
    }
}

/// The compiler.
pub struct Compiler<'n> {
    names: &'n Names,
    program: Program,
}

/// A reusable compiler front end: the special-form and primitive name
/// tables, resolved against one interner.
///
/// [`compile_forms`] rebuilds these tables (dozens of interns plus a
/// primitive map) on every call — fine for one-shot compiles, wasteful
/// for a server compiling a request stream against a persistent
/// interner. Construct a `FrontEnd` once per interner and call
/// [`FrontEnd::compile`] per program instead.
pub struct FrontEnd {
    names: Names,
}

impl FrontEnd {
    /// Build (or re-resolve) the name tables against `interner`. Any
    /// name not yet present is interned, so on a fresh interner this
    /// fixes the same symbol-id prefix [`compile_forms`] would.
    pub fn new(interner: &mut Interner) -> FrontEnd {
        FrontEnd {
            names: Names::new(interner),
        }
    }

    /// Compile pre-parsed top-level forms. Equivalent to
    /// [`compile_forms`], minus the per-call name-table rebuild (the
    /// forms must have been parsed with the same interner this front
    /// end was built against, or a later extension of it).
    pub fn compile(&self, forms: &[SExpr]) -> Result<Program, CompileError> {
        let mut c = Compiler {
            names: &self.names,
            program: Program::default(),
        };
        // Pass 1: function definitions.
        for f in forms {
            if c.is_def(f) {
                c.compile_def(f)?;
            }
        }
        // Pass 2: top-level expressions into the entry block.
        c.program.entry = c.program.code.len();
        let mut any = false;
        for f in forms {
            if !c.is_def(f) {
                let mut ctx = Ctx {
                    slots: Vec::new(),
                    n_params: 0,
                    labels: FxHashMap::default(),
                    pending_gos: Vec::new(),
                };
                c.expr(f, &mut ctx)?;
                c.reject_stray_gos(&ctx)?;
                c.emit(Inst::Pop);
                any = true;
            }
        }
        if any {
            // Replace the trailing Pop so the last value remains inspectable.
            let last = c.program.code.len() - 1;
            c.program.code[last] = Inst::Halt;
        } else {
            c.emit(Inst::Halt);
        }
        Ok(c.program)
    }
}

/// Compile a whole program text: any number of `(def …)` forms plus
/// top-level calls (compiled, in order, into the entry block).
pub fn compile_program(src: &str, interner: &mut Interner) -> Result<Program, CompileError> {
    let forms =
        small_sexpr::parse_all(src, interner).map_err(|e| CompileError::BadForm(e.to_string()))?;
    compile_forms(&forms, interner)
}

/// Compile pre-parsed top-level forms.
pub fn compile_forms(forms: &[SExpr], interner: &mut Interner) -> Result<Program, CompileError> {
    FrontEnd::new(interner).compile(forms)
}

impl Compiler<'_> {
    fn emit(&mut self, i: Inst) -> CodeAddr {
        self.program.code.push(i);
        self.program.code.len() - 1
    }

    fn here(&self) -> CodeAddr {
        self.program.code.len()
    }

    fn is_def(&self, f: &SExpr) -> bool {
        f.car().and_then(|h| h.as_sym()) == Some(self.names.def)
    }

    fn compile_def(&mut self, f: &SExpr) -> Result<(), CompileError> {
        let args = f.cdr().unwrap_or(SExpr::Nil);
        let name = args
            .car()
            .and_then(|n| n.as_sym())
            .ok_or_else(|| CompileError::BadForm("def name".into()))?;
        let lam = args
            .cdr()
            .and_then(|d| d.car())
            .ok_or_else(|| CompileError::BadForm("def lambda".into()))?;
        if lam.car().and_then(|h| h.as_sym()) != Some(self.names.lambda) {
            return Err(CompileError::BadForm("def body must be a lambda".into()));
        }
        let params: Vec<Symbol> = lam
            .cdr()
            .and_then(|d| d.car())
            .unwrap_or(SExpr::Nil)
            .iter()
            .filter_map(|p| p.as_sym())
            .collect();
        let body = lam.cdr().and_then(|d| d.cdr()).unwrap_or(SExpr::Nil);
        let body: Vec<&SExpr> = body.iter().collect();

        let entry = self.here();
        self.program.functions.insert(
            name,
            FnInfo {
                entry,
                arity: params.len() as u8,
            },
        );
        // Prologue: bind arguments. Caller pushed them left to right, so
        // TOS is the last argument — bind in reverse. The binding stack
        // therefore holds them in reverse order, and the frame-offset
        // table must match.
        for p in params.iter().rev() {
            self.emit(Inst::BindN(*p));
        }
        let mut ctx = Ctx {
            slots: params.iter().rev().copied().collect(),
            n_params: params.len(),
            labels: FxHashMap::default(),
            pending_gos: Vec::new(),
        };
        if body.is_empty() {
            self.emit(Inst::PushNil);
        }
        for (i, form) in body.iter().enumerate() {
            self.expr(form, &mut ctx)?;
            if i + 1 < body.len() {
                self.emit(Inst::Pop);
            }
        }
        self.reject_stray_gos(&ctx)?;
        self.emit(Inst::FRetN);
        Ok(())
    }

    /// A `go` outside any `prog` never gets backpatched (only `prog`
    /// drains `pending_gos`); left alone it would be a `Jmp(usize::MAX)`
    /// that sends the VM off the end of the code array. Reject it here,
    /// at function/top-level finalize, as a label resolution failure.
    fn reject_stray_gos(&self, ctx: &Ctx) -> Result<(), CompileError> {
        match ctx.pending_gos.first() {
            Some((_, tag)) => Err(CompileError::NoSuchLabel(format!("#{}", tag.0))),
            None => Ok(()),
        }
    }

    fn expr(&mut self, e: &SExpr, ctx: &mut Ctx) -> Result<(), CompileError> {
        match e {
            SExpr::Nil => {
                self.emit(Inst::PushNil);
                Ok(())
            }
            SExpr::Atom(Atom::Int(i)) => {
                self.emit(Inst::PushInt(*i));
                Ok(())
            }
            SExpr::Atom(Atom::Sym(s)) => {
                if *s == self.names.t {
                    self.emit(Inst::PushSym(*s));
                } else if let Some(k) = ctx.slot_of(*s) {
                    self.emit(Inst::PushStk(k));
                } else {
                    self.emit(Inst::PushName(*s));
                }
                Ok(())
            }
            SExpr::Cons(c) => {
                let head = c.0.as_sym().ok_or(CompileError::BadCallHead)?;
                self.form(head, &c.1, ctx)
            }
        }
    }

    fn form(&mut self, head: Symbol, args: &SExpr, ctx: &mut Ctx) -> Result<(), CompileError> {
        let n = &self.names;
        if head == n.def {
            return Err(CompileError::NestedDef);
        }
        if head == n.quote {
            let q = args
                .car()
                .ok_or_else(|| CompileError::BadForm("quote".into()))?;
            return self.quoted(&q);
        }
        if head == n.cond {
            return self.cond(args, ctx);
        }
        if head == n.progn {
            return self.progn(args, ctx);
        }
        if head == n.prog {
            return self.prog(args, ctx);
        }
        if head == n.go {
            let tag = args
                .car()
                .and_then(|t| t.as_sym())
                .ok_or_else(|| CompileError::BadForm("go".into()))?;
            let at = self.emit(Inst::Jmp(usize::MAX));
            ctx.pending_gos.push((at, tag));
            // go never falls through, but expressions must leave a value;
            // emit an unreachable nil for stack-shape consistency.
            self.emit(Inst::PushNil);
            return Ok(());
        }
        if head == n.ret {
            match args.car() {
                Some(v) if !v.is_nil() => self.expr(&v, ctx)?,
                _ => {
                    self.emit(Inst::PushNil);
                }
            }
            self.emit(Inst::FRetN);
            self.emit(Inst::PushNil); // unreachable filler
            return Ok(());
        }
        if head == n.setq {
            let name = args
                .car()
                .and_then(|x| x.as_sym())
                .ok_or_else(|| CompileError::BadForm("setq".into()))?;
            let v = args
                .cdr()
                .and_then(|d| d.car())
                .ok_or_else(|| CompileError::BadForm("setq".into()))?;
            self.expr(&v, ctx)?;
            if let Some(k) = ctx.slot_of(name) {
                self.emit(Inst::SetStk(k));
            } else {
                self.emit(Inst::SetName(name));
            }
            return Ok(());
        }
        if head == n.and {
            return self.and_or(args, ctx, true);
        }
        if head == n.or {
            return self.and_or(args, ctx, false);
        }
        // `(read)` / `(read var)` — the variable is a *target*, not an
        // evaluated argument (Figure 4.15: `RDLIST 1`).
        if head == n.read {
            self.emit(Inst::RdList);
            if let Some(var) = args.car().and_then(|a| a.as_sym()) {
                if let Some(k) = ctx.slot_of(var) {
                    self.emit(Inst::SetStk(k));
                } else {
                    self.emit(Inst::SetName(var));
                }
            }
            return Ok(());
        }

        // Ordinary call: evaluate arguments left to right.
        let mut nargs = 0u8;
        for a in args.iter() {
            self.expr(a, ctx)?;
            nargs = nargs.wrapping_add(1);
        }
        if let Some(inst) = self.names.prims.get(&head).copied() {
            self.emit(inst);
        } else {
            self.emit(Inst::FCall(head, nargs));
        }
        Ok(())
    }

    fn quoted(&mut self, q: &SExpr) -> Result<(), CompileError> {
        match q {
            SExpr::Nil => {
                self.emit(Inst::PushNil);
            }
            SExpr::Atom(Atom::Int(i)) => {
                self.emit(Inst::PushInt(*i));
            }
            SExpr::Atom(Atom::Sym(s)) => {
                self.emit(Inst::PushSym(*s));
            }
            SExpr::Cons(_) => {
                let idx = self.program.constants.len() as u16;
                self.program.constants.push(q.clone());
                self.emit(Inst::PushConst(idx));
            }
        }
        Ok(())
    }

    fn cond(&mut self, legs: &SExpr, ctx: &mut Ctx) -> Result<(), CompileError> {
        // Each leg with a body:   <test> Brf next; <body>; Jmp end; next:
        // Each body-less leg:     <test> Dup; Brt end; Pop
        // (the Dup/Brt pair keeps the test value as the leg's value).
        let mut end_jumps = Vec::new();
        for leg in legs.iter() {
            let test = leg
                .car()
                .ok_or_else(|| CompileError::BadForm("cond leg".into()))?;
            let body = leg.cdr().unwrap_or(SExpr::Nil);
            let body: Vec<&SExpr> = body.iter().collect();
            self.expr(&test, ctx)?;
            if body.is_empty() {
                self.emit(Inst::Dup);
                let brt = self.emit(Inst::Brt(usize::MAX));
                end_jumps.push(brt);
                self.emit(Inst::Pop);
            } else {
                let brf = self.emit(Inst::Brf(usize::MAX));
                for (i, form) in body.iter().enumerate() {
                    self.expr(form, ctx)?;
                    if i + 1 < body.len() {
                        self.emit(Inst::Pop);
                    }
                }
                let jmp = self.emit(Inst::Jmp(usize::MAX));
                end_jumps.push(jmp);
                let next = self.here();
                self.program.code[brf] = Inst::Brf(next);
            }
        }
        // No leg taken: nil.
        self.emit(Inst::PushNil);
        let end = self.here();
        for at in end_jumps {
            match self.program.code[at] {
                Inst::Jmp(_) => self.program.code[at] = Inst::Jmp(end),
                Inst::Brt(_) => self.program.code[at] = Inst::Brt(end),
                _ => unreachable!(),
            }
        }
        Ok(())
    }

    fn progn(&mut self, body: &SExpr, ctx: &mut Ctx) -> Result<(), CompileError> {
        let forms: Vec<&SExpr> = body.iter().collect();
        if forms.is_empty() {
            self.emit(Inst::PushNil);
            return Ok(());
        }
        for (i, f) in forms.iter().enumerate() {
            self.expr(f, ctx)?;
            if i + 1 < forms.len() {
                self.emit(Inst::Pop);
            }
        }
        Ok(())
    }

    fn prog(&mut self, args: &SExpr, ctx: &mut Ctx) -> Result<(), CompileError> {
        let locals: Vec<Symbol> = args
            .car()
            .unwrap_or(SExpr::Nil)
            .iter()
            .filter_map(|l| l.as_sym())
            .collect();
        let body = args.cdr().unwrap_or(SExpr::Nil);
        for l in &locals {
            self.emit(Inst::BindNil(*l));
            ctx.slots.push(*l);
        }
        // Record label addresses first (labels are bare symbols).
        let saved_labels = ctx.labels.clone();
        let saved_pending = std::mem::take(&mut ctx.pending_gos);
        // Compile body; labels discovered as we go, with backpatching.
        for form in body.iter() {
            if let Some(tag) = form.as_sym() {
                ctx.labels.insert(tag, self.here());
                continue;
            }
            self.expr(form, ctx)?;
            self.emit(Inst::Pop);
        }
        // prog falls off the end: value nil.
        self.emit(Inst::PushNil);
        // Patch gos.
        for (at, tag) in ctx.pending_gos.drain(..) {
            let target = ctx
                .labels
                .get(&tag)
                .copied()
                .ok_or_else(|| CompileError::NoSuchLabel(format!("#{}", tag.0)))?;
            self.program.code[at] = Inst::Jmp(target);
        }
        ctx.labels = saved_labels;
        ctx.pending_gos = saved_pending;
        // Locals stay bound until function return (frame discipline);
        // they remain in scope for the rest of the function, as in the
        // thesis's simple compiler.
        Ok(())
    }

    fn and_or(&mut self, args: &SExpr, ctx: &mut Ctx, is_and: bool) -> Result<(), CompileError> {
        let forms: Vec<&SExpr> = args.iter().collect();
        if forms.is_empty() {
            if is_and {
                self.emit(Inst::PushSym(self.names.t));
            } else {
                self.emit(Inst::PushNil);
            }
            return Ok(());
        }
        let mut patches = Vec::new();
        for (i, f) in forms.iter().enumerate() {
            self.expr(f, ctx)?;
            if i + 1 < forms.len() {
                let br = if is_and {
                    self.emit(Inst::Brf(usize::MAX))
                } else {
                    self.emit(Inst::Brt(usize::MAX))
                };
                patches.push(br);
            }
        }
        let jmp_end = self.emit(Inst::Jmp(usize::MAX));
        let short = self.here();
        if is_and {
            self.emit(Inst::PushNil);
        } else {
            self.emit(Inst::PushSym(self.names.t));
        }
        let end = self.here();
        for at in patches {
            match self.program.code[at] {
                Inst::Brf(_) => self.program.code[at] = Inst::Brf(short),
                Inst::Brt(_) => self.program.code[at] = Inst::Brt(short),
                _ => unreachable!(),
            }
        }
        self.program.code[jmp_end] = Inst::Jmp(end);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use small_sexpr::Interner;

    fn compile(src: &str) -> Result<Program, CompileError> {
        compile_program(src, &mut Interner::new())
    }

    #[test]
    fn nested_def_rejected() {
        assert_eq!(
            compile("(def f (lambda (x) (def g (lambda () 1))))").err(),
            Some(CompileError::NestedDef)
        );
    }

    #[test]
    fn go_to_unknown_label_rejected() {
        assert!(matches!(
            compile("(def f (lambda () (prog () (go nowhere))))"),
            Err(CompileError::NoSuchLabel(_))
        ));
    }

    #[test]
    fn go_outside_prog_rejected() {
        // Only `prog` backpatches gos; a stray one must fail to compile
        // rather than leave an unpatched jump for the VM to run off.
        assert!(matches!(
            compile("(go nowhere)"),
            Err(CompileError::NoSuchLabel(_))
        ));
        assert!(matches!(
            compile("(def f (lambda () (go nowhere)))"),
            Err(CompileError::NoSuchLabel(_))
        ));
    }

    #[test]
    fn non_symbol_call_head_rejected() {
        assert_eq!(compile("((1 2) 3)").err(), Some(CompileError::BadCallHead));
    }

    #[test]
    fn malformed_def_rejected() {
        assert!(matches!(compile("(def)"), Err(CompileError::BadForm(_))));
        assert!(matches!(
            compile("(def f 42)"),
            Err(CompileError::BadForm(_))
        ));
        assert!(matches!(
            compile("(def f (not-a-lambda (x) x))"),
            Err(CompileError::BadForm(_))
        ));
    }

    #[test]
    fn empty_program_compiles_to_halt() {
        let p = compile("").unwrap();
        assert!(matches!(p.code.last(), Some(Inst::Halt)));
    }

    #[test]
    fn function_bodies_precede_entry_block() {
        let p = compile("(def f (lambda () 1)) (f)").unwrap();
        let f = p.functions.values().next().unwrap();
        assert!(f.entry < p.entry, "definitions compile before top level");
        assert_eq!(f.arity, 0);
    }

    #[test]
    fn quoted_lists_become_constants() {
        let p = compile("(car '(a b c))").unwrap();
        assert_eq!(p.constants.len(), 1);
        assert!(p.code.iter().any(|i| matches!(i, Inst::PushConst(0))));
    }

    #[test]
    fn shadowed_parameter_uses_latest_slot() {
        // (lambda (x x) …) is degenerate but must resolve to the later
        // binding, matching the interpreter's a-list semantics.
        let mut i = Interner::new();
        let p = compile_program("(def f (lambda (x x) x)) (f 1 2)", &mut i).unwrap();
        let mut vm = crate::vm::Vm::new(p, crate::vm::DirectBackend::new(64));
        let v = vm.run().unwrap();
        assert_eq!(v, crate::vm::VmValue::Int(2));
    }
}
