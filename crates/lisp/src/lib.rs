#![warn(missing_docs)]
//! The Lisp system of the SMALL reproduction.
//!
//! This crate stands in for the modified Franz Lisp interpreter the
//! thesis used to generate its traces (§3.3.1), and implements the
//! "simple Lisp" of §4.3.4 end to end:
//!
//! * [`value`] — runtime values with mutable, identity-bearing cons
//!   cells (needed for `rplaca`/`rplacd` and for exact list identity in
//!   traces),
//! * [`mod@env`] — dynamic-binding environments: deep binding (association
//!   list), shallow binding (oblist + save stack), and the FACOM-Alpha
//!   value cache (§2.3.2, Figures 2.3–2.5),
//! * [`interp`] — the tree-walking interpreter with tracing hooks,
//! * [`isa`] / [`compiler`] / [`vm`] — the stack-machine instruction
//!   set, the compiler that produces it (Figures 4.14–4.15), and an
//!   emulator generic over a [`vm::ListBackend`] so the same compiled
//!   code runs against a plain heap here and against the SMALL List
//!   Processor in `small-core`.

pub mod compiler;
pub mod env;
pub mod interp;
pub mod isa;
pub mod value;
pub mod vm;

pub use compiler::{compile_program, CompileError};
pub use env::{DeepEnv, Environment, ShallowEnv, ValueCacheEnv};
pub use interp::{EvalHook, Interp, LispError, NoHook};
pub use value::Value;
