//! Offline-compatible subset of the `rand` 0.8 API.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the small slice of `rand` it actually uses: [`rngs::StdRng`]
//! seeded via [`SeedableRng::seed_from_u64`], and the [`Rng`] methods
//! `gen`, `gen_range`, `gen_bool`, and `gen_ratio`. The generator is
//! xoshiro256** seeded through splitmix64 — fast, high quality, and
//! fully deterministic per seed, which is all the simulator and the
//! synthetic workload generators require. Numeric streams differ from
//! upstream `rand`, but every consumer in this workspace treats the
//! stream as an opaque deterministic source.
#![warn(missing_docs)]

/// Random number generator engines.
pub mod rngs {
    /// The standard deterministic generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }
}

use rngs::StdRng;

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl StdRng {
    /// Export the raw xoshiro256** state for checkpointing. The stream
    /// continues identically from a generator rebuilt via
    /// [`StdRng::from_state`].
    #[inline]
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator from a state captured by [`StdRng::state`].
    /// The all-zero state (invalid for xoshiro) is mapped to a fixed
    /// nonzero state rather than accepted.
    #[inline]
    pub fn from_state(mut s: [u64; 4]) -> Self {
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        StdRng { s }
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = splitmix64(&mut sm);
        }
        // All-zero state is the one invalid xoshiro state; splitmix64
        // cannot produce four zeros from any seed, but guard anyway.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        StdRng { s }
    }
}

/// A type that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value from the generator.
    fn sample(rng: &mut StdRng) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample(rng: &mut StdRng) -> f64 {
        // 53 random bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    #[inline]
    fn sample(rng: &mut StdRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    #[inline]
    fn sample(rng: &mut StdRng) -> u64 {
        rng.next_u64()
    }
}

impl Standard for u32 {
    #[inline]
    fn sample(rng: &mut StdRng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

/// A range understood by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from(self, rng: &mut StdRng) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from(self, rng: &mut StdRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_from(self, rng: &mut StdRng) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// The user-facing sampling methods, implemented for [`StdRng`].
pub trait Rng {
    /// Uniform value of a [`Standard`]-sampleable type.
    fn gen<T: Standard>(&mut self) -> T;
    /// Uniform value in `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T;
    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool;
    /// Bernoulli draw with probability `numerator / denominator`.
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool;
}

impl Rng for StdRng {
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    #[inline]
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample(self) < p
    }

    #[inline]
    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        debug_assert!(denominator > 0 && numerator <= denominator);
        (self.next_u64() >> 32) as u32 % denominator < numerator
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3..17i64);
            assert!((3..17).contains(&v));
            let u = r.gen_range(0..=2usize);
            assert!(u <= 2);
            let f = r.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2500..3500).contains(&hits), "{hits}");
    }
}
