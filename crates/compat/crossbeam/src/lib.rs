//! Offline-compatible subset of the `crossbeam` API.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the slice of `crossbeam` it uses: multi-producer
//! multi-consumer [`channel`]s (`bounded` / `unbounded`) with `send`,
//! `recv`, `try_recv`, and `is_empty`. Implemented over
//! `std::sync::{Mutex, Condvar}` — adequate for the multilisp node
//! threads, which exchange coarse-grained requests, not hot cells.
//!
//! Like upstream crossbeam, channel operations never wedge after a
//! peer thread panics: every guard acquisition recovers from a
//! poisoned mutex (`unwrap_or_else(|e| e.into_inner())`), since the
//! queue state is a plain `VecDeque` that is valid at every await
//! point even if its owner died mid-operation.
#![warn(missing_docs)]

/// MPMC channels in the style of `crossbeam::channel`.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
        capacity: Option<usize>,
    }

    struct State<T> {
        items: VecDeque<T>,
        senders: usize,
        receivers: usize,
    }

    /// Error returned by [`Sender::send`] when all receivers are gone.
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    // Like upstream: Debug without requiring `T: Debug`.
    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// All senders disconnected and the queue is drained.
        Disconnected,
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            st.senders -= 1;
            if st.senders == 0 {
                drop(st);
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            st.receivers -= 1;
            if st.receivers == 0 {
                drop(st);
                self.shared.not_full.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        /// Send `v`, blocking while a bounded channel is full. Errors if
        /// every receiver has been dropped.
        pub fn send(&self, v: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if st.receivers == 0 {
                    return Err(SendError(v));
                }
                match self.shared.capacity {
                    Some(cap) if st.items.len() >= cap => {
                        st = self
                            .shared
                            .not_full
                            .wait(st)
                            .unwrap_or_else(|e| e.into_inner());
                    }
                    _ => break,
                }
            }
            st.items.push_back(v);
            drop(st);
            self.shared.not_empty.notify_one();
            Ok(())
        }
    }

    impl<T> Receiver<T> {
        /// Receive a value, blocking while the channel is empty. Errors
        /// once the channel is drained and every sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(v) = st.items.pop_front() {
                    drop(st);
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self
                    .shared
                    .not_empty
                    .wait(st)
                    .unwrap_or_else(|e| e.into_inner());
            }
        }

        /// Receive without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            if let Some(v) = st.items.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Whether the queue is currently empty (racy, like upstream).
        pub fn is_empty(&self) -> bool {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .items
                .is_empty()
        }

        /// Number of messages currently queued.
        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .items
                .len()
        }
    }

    fn make<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(State {
                items: VecDeque::new(),
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// A channel holding at most `cap` in-flight messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        make(Some(cap.max(1)))
    }

    /// A channel with no capacity bound.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        make(None)
    }
}

#[cfg(test)]
mod tests {
    use super::channel::*;

    #[test]
    fn round_trip_and_disconnect() {
        let (tx, rx) = unbounded();
        tx.send(7).unwrap();
        assert!(!rx.is_empty());
        assert_eq!(rx.recv().unwrap(), 7);
        drop(tx);
        assert!(rx.recv().is_err());
    }

    #[test]
    fn panicking_worker_does_not_wedge_channel() {
        let (tx, rx) = unbounded::<u32>();
        let rx2 = rx.clone();
        let crasher = std::thread::spawn(move || {
            let v = rx2.recv().unwrap();
            panic!("worker died holding channel handles: {v}");
        });
        tx.send(1).unwrap();
        assert!(crasher.join().is_err());
        // Remaining handles still function after the worker's unwind
        // dropped its Receiver clone mid-panic.
        tx.send(2).unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
        drop(tx);
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn bounded_cross_thread() {
        let (tx, rx) = bounded(2);
        let h = std::thread::spawn(move || {
            for k in 0..100 {
                tx.send(k).unwrap();
            }
        });
        let got: Vec<i32> = (0..100).map(|_| rx.recv().unwrap()).collect();
        h.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }
}
