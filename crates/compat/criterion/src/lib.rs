//! Offline-compatible subset of the `criterion` API.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the benchmark-harness surface its `benches/` targets use:
//! [`Criterion`] with `benchmark_group`, `bench_function`,
//! `bench_with_input`, the [`criterion_group!`]/[`criterion_main!`]
//! macros, [`BenchmarkId`], and [`black_box`]. Measurement is plain
//! wall-clock sampling with a median/mean text report — adequate for
//! the relative comparisons the repo's benches assert, without
//! upstream's statistical machinery.
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(1000),
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Set the warm-up duration per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Set the measurement budget per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement = d;
        self
    }

    /// Set the number of timing samples collected per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A named benchmark identifier with a parameter, e.g. `intern/64`.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id of the form `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// A group of benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            warm_up: self.criterion.warm_up,
            measurement: self.criterion.measurement,
            sample_size: self.criterion.sample_size,
            samples: Vec::new(),
        };
        f(&mut b);
        b.report(&self.name, &id.id);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher {
            warm_up: self.criterion.warm_up,
            measurement: self.criterion.measurement,
            sample_size: self.criterion.sample_size,
            samples: Vec::new(),
        };
        f(&mut b, input);
        b.report(&self.name, &id.id);
        self
    }

    /// Finish the group (report output is emitted per benchmark).
    pub fn finish(self) {}
}

/// Collects timing samples for one benchmark.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    samples: Vec<f64>,
}

impl Bencher {
    /// Measure `routine`, called repeatedly; its return value is passed
    /// through [`black_box`] so the optimizer cannot delete the work.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up, and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut iters_done: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
            iters_done += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / iters_done.max(1) as f64;
        // Size each sample so all samples fit in the measurement budget.
        let budget = self.measurement.as_secs_f64() / self.sample_size as f64;
        let iters_per_sample = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1 << 24);
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            self.samples
                .push(t.elapsed().as_secs_f64() / iters_per_sample as f64);
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.samples.is_empty() {
            println!("{group}/{id:<28} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        println!(
            "{group}/{id:<28} median {:>12} mean {:>12} ({} samples)",
            fmt_time(median),
            fmt_time(mean),
            sorted.len()
        );
    }
}

fn fmt_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.1} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Declare a benchmark group: either `criterion_group!(name, target...)`
/// or the `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declare the benchmark entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> Criterion {
        Criterion::default()
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(10))
            .sample_size(3)
    }

    #[test]
    fn groups_and_benchers_run() {
        let mut c = quick();
        let mut group = c.benchmark_group("demo");
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sized", 32), &32u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.finish();
    }
}
