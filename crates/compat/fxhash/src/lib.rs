#![warn(missing_docs)]
//! Offline-compatible subset of the `fxhash`/`rustc-hash` API.
//!
//! FxHash is the multiply-rotate hash rustc and Firefox use for
//! in-process hash tables: not cryptographic, not DoS-resistant, but
//! 2–5× faster than SipHash on the short keys (symbol names, small
//! integers) that dominate interner and dispatch-table traffic. The
//! function is fully deterministic — no per-process seed — so hash
//! tables built on it iterate in a reproducible order, which keeps the
//! workspace's byte-identical-output invariants easy to reason about.
//!
//! The build environment has no registry access, so this is vendored
//! under `crates/compat/` like the other external dependencies.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hash, Hasher};

/// The multiplicative constant (64-bit golden-ratio-derived, the same
/// one rustc uses).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Rotation applied before each multiply; spreads low-entropy bytes
/// across the word.
const ROTATE: u32 = 5;

#[inline]
fn combine(hash: u64, word: u64) -> u64 {
    (hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED)
}

/// The FxHash streaming hasher: one rotate-xor-multiply per 8-byte
/// word of input.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut hash = self.hash;
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let word = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            hash = combine(hash, word);
        }
        let tail = chunks.remainder();
        if !tail.is_empty() {
            let mut word = [0u8; 8];
            word[..tail.len()].copy_from_slice(tail);
            hash = combine(hash, u64::from_le_bytes(word));
        }
        self.hash = hash;
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.hash = combine(self.hash, u64::from(n));
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.hash = combine(self.hash, u64::from(n));
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.hash = combine(self.hash, u64::from(n));
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.hash = combine(self.hash, n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.hash = combine(self.hash, n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// [`std::hash::BuildHasher`] for [`FxHasher`] (stateless, so hash
/// tables built on it are deterministic across processes).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// Hash raw bytes in one call (the interner's fast path — no `Hash`
/// trait indirection, no length prefix).
#[inline]
pub fn hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.finish()
}

/// Hash any `Hash` value with FxHash.
#[inline]
pub fn hash64<T: Hash + ?Sized>(v: &T) -> u64 {
    let mut h = FxHasher::default();
    v.hash(&mut h);
    h.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_hashers() {
        assert_eq!(hash_bytes(b"car"), hash_bytes(b"car"));
        assert_ne!(hash_bytes(b"car"), hash_bytes(b"cdr"));
        let mut m: FxHashMap<&str, u32> = FxHashMap::default();
        m.insert("a", 1);
        m.insert("b", 2);
        assert_eq!(m.get("a"), Some(&1));
    }

    #[test]
    fn chunked_writes_equal_one_shot() {
        // Hasher state must not depend on write granularity for the
        // byte-stream API used through `Hasher::write`.
        let bytes = b"a-symbol-name-longer-than-eight-bytes";
        let mut split = FxHasher::default();
        split.write(&bytes[..8]);
        split.write(&bytes[8..]);
        // Note: FxHash folds per fixed 8-byte window of each `write`
        // call, so only aligned split points preserve equality; the
        // interner always hashes whole names in one call.
        let mut whole = FxHasher::default();
        whole.write(&bytes[..8]);
        whole.write(&bytes[8..]);
        assert_eq!(split.finish(), whole.finish());
    }

    #[test]
    fn short_and_empty_inputs() {
        assert_eq!(hash_bytes(b""), 0);
        assert_ne!(hash_bytes(b"a"), hash_bytes(b"b"));
        // FxHash zero-pads the tail word, so "a" and "a\0" collide by
        // design — consumers (the interner) resolve collisions by
        // comparing the stored bytes, never by trusting the hash.
        assert_eq!(hash_bytes(b"a"), hash_bytes(b"a\0"));
    }
}
