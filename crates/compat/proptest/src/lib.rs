//! Offline-compatible subset of the `proptest` API.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors the slice of `proptest` its property tests use:
//!
//! * the [`Strategy`] trait with `prop_map`, `prop_recursive`, `boxed`;
//! * strategies for integer/float ranges, tuples, string patterns
//!   (a small regex subset), [`Just`], `prop::collection::vec`,
//!   `prop::sample::select`, `prop::option::of`, and [`any`];
//! * the [`proptest!`], [`prop_oneof!`], [`prop_assert!`],
//!   [`prop_assert_eq!`], and [`prop_assert_ne!`] macros;
//! * [`ProptestConfig::with_cases`].
//!
//! Semantics differ from upstream in two deliberate ways: sampling is
//! seeded deterministically from the test name (every run exercises the
//! same cases — CI-stable by construction), and there is **no
//! shrinking**: a failing case reports the sampled inputs via the
//! ordinary assertion panic.
#![warn(missing_docs)]

use std::sync::Arc;

/// Deterministic RNG used by strategies (xoshiro256**).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// A generator derived from a test name and case index.
    pub fn for_case(name: &str, case: u64) -> Self {
        let mut seed = 0xcbf2_9ce4_8422_2325u64 ^ case.wrapping_mul(0x100_0000_01b3);
        for b in name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x100_0000_01b3);
        }
        let mut sm = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *slot = z ^ (z >> 31);
        }
        TestRng { s }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Runner configuration (`ProptestConfig` upstream).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases sampled per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// A source of random values of one type. Unlike upstream there is no
/// value tree and no shrinking: a strategy is a deterministic sampler.
pub trait Strategy {
    /// The type of values produced.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every sampled value with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Build a recursive strategy: `recurse` receives the strategy for
    /// the previous depth level and returns the strategy for one level
    /// deeper. `depth` bounds the recursion; the `_desired_size` and
    /// `_expected_branch_size` parameters exist for signature
    /// compatibility with upstream and are ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let branch = recurse(cur).boxed();
            // Each level: half leaves, half deeper structure — keeps
            // expected sizes bounded like upstream's decaying recursion.
            cur = Union::new(vec![leaf.clone(), branch]).boxed();
        }
        cur
    }

    /// Type-erase the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(move |rng| self.sample(rng)))
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among equally-weighted alternative strategies
/// (the engine behind [`prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over the given alternatives; must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! of zero strategies");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let k = rng.below(self.options.len() as u64) as usize;
        self.options[k].sample(rng)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// String strategies from a small regex subset: a sequence of units,
/// each a character class (`[a-z0-9() .']`), the any-printable escape
/// (`\PC`), or a literal character, optionally followed by `{m,n}`.
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        sample_pattern(self, rng)
    }
}

fn sample_pattern(pattern: &str, rng: &mut TestRng) -> String {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0usize;
    let mut out = String::new();
    while i < chars.len() {
        // One unit: a character set to draw from.
        let set: Vec<char> = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .expect("pattern: unclosed character class")
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j] as u32, chars[j + 2] as u32);
                        for c in lo..=hi {
                            set.push(char::from_u32(c).expect("pattern: bad range"));
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            }
            '\\' => {
                assert!(
                    chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C'),
                    "pattern: unsupported escape in {pattern:?}"
                );
                i += 3;
                // \PC — any non-control character. Printable ASCII plus
                // a few multi-byte characters to exercise UTF-8 paths.
                let mut set: Vec<char> = (0x20u32..0x7f).map(|c| c as u8 as char).collect();
                set.extend(['λ', 'é', '→', '∀', '中']);
                set
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        // Optional repetition.
        let (lo, hi) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("pattern: unclosed repetition")
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            let (a, b) = body
                .split_once(',')
                .expect("pattern: only {m,n} repetitions supported");
            i = close + 1;
            (
                a.parse::<usize>().expect("pattern: bad repeat lower bound"),
                b.parse::<usize>().expect("pattern: bad repeat upper bound"),
            )
        } else {
            (1, 1)
        };
        let n = lo + rng.below((hi - lo + 1) as u64) as usize;
        for _ in 0..n {
            out.push(set[rng.below(set.len() as u64) as usize]);
        }
    }
    out
}

/// Types with a canonical [`any`] strategy.
pub trait Arbitrary: Sized {
    /// Sample an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (upstream `any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// The `prop::` strategy-combinator namespace.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};

        /// Strategy for `Vec<T>` with a length drawn from `range`.
        pub struct VecStrategy<S> {
            element: S,
            lo: usize,
            hi: usize,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let n = self.lo + rng.below((self.hi - self.lo) as u64) as usize;
                (0..n).map(|_| self.element.sample(rng)).collect()
            }
        }

        /// Conversion into a half-open length range, mirroring
        /// upstream's `Into<SizeRange>` bound on `vec`.
        pub trait IntoSizeRange {
            /// The `(lo, hi)` half-open bounds.
            fn bounds(self) -> (usize, usize);
        }

        impl IntoSizeRange for usize {
            fn bounds(self) -> (usize, usize) {
                (self, self + 1)
            }
        }

        impl IntoSizeRange for core::ops::Range<usize> {
            fn bounds(self) -> (usize, usize) {
                (self.start, self.end)
            }
        }

        impl IntoSizeRange for core::ops::RangeInclusive<usize> {
            fn bounds(self) -> (usize, usize) {
                (*self.start(), *self.end() + 1)
            }
        }

        /// Vectors of `element` values with length drawn from `size`:
        /// an exact `usize` or a length range.
        pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
            let (lo, hi) = size.bounds();
            assert!(lo < hi, "vec: empty size range");
            VecStrategy { element, lo, hi }
        }
    }

    /// Sampling from explicit value lists.
    pub mod sample {
        use super::super::{Strategy, TestRng};

        /// Strategy choosing uniformly from a fixed list.
        pub struct Select<T: Clone>(Vec<T>);

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn sample(&self, rng: &mut TestRng) -> T {
                self.0[rng.below(self.0.len() as u64) as usize].clone()
            }
        }

        /// Choose uniformly from `options` (must be non-empty).
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select of empty list");
            Select(options)
        }
    }

    /// Option strategies.
    pub mod option {
        use super::super::{Strategy, TestRng};

        /// Strategy for `Option<T>` (3:1 biased toward `Some`, like
        /// upstream's default weight).
        pub struct OptionStrategy<S>(S);

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.below(4) == 0 {
                    None
                } else {
                    Some(self.0.sample(rng))
                }
            }
        }

        /// `Option` of the inner strategy's values.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy(inner)
        }
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy,
    };
}

/// Uniform choice among alternative strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Assert a boolean property within a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Assert equality within a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Assert inequality within a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that samples its arguments [`ProptestConfig::cases`]
/// times and runs the body on each sample.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@expand ($config) $($rest)*);
    };
    (@expand ($config:expr)
        $( $(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..u64::from(config.cases) {
                    let mut proptest_rng =
                        $crate::TestRng::for_case(concat!(module_path!(), "::", stringify!($name)), case);
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut proptest_rng);)*
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@expand ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn pattern_subset_generates_in_class() {
        let mut rng = crate::TestRng::for_case("pattern", 0);
        for _ in 0..200 {
            let s = crate::Strategy::sample(&"[a-c0-2]{2,5}", &mut rng);
            assert!((2..=5).contains(&s.chars().count()));
            assert!(s.chars().all(|c| "abc012".contains(c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn oneof_and_map_compose(v in prop_oneof![
            (0i64..10).prop_map(|i| i * 2),
            Just(99i64),
        ]) {
            prop_assert!(v == 99 || (0..20).contains(&v));
        }

        #[test]
        fn vec_and_select(xs in prop::collection::vec(prop::sample::select(vec![1u8, 3, 5]), 0..6)) {
            prop_assert!(xs.len() < 6);
            prop_assert!(xs.iter().all(|x| [1, 3, 5].contains(x)));
        }

        #[test]
        fn recursive_terminates(s in (0i64..3).prop_map(|i| i.to_string()).prop_recursive(3, 16, 4, |inner| {
            prop::collection::vec(inner, 1..4).prop_map(|items| format!("({})", items.join(" ")))
        })) {
            prop_assert!(!s.is_empty());
        }
    }
}
