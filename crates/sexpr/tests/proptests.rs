//! Property-based tests for the s-expression core.

use proptest::prelude::*;
use small_sexpr::metrics::np;
use small_sexpr::tree::{node_counts, super_sequence, traversal, Order};
use small_sexpr::{parse, print, Interner, SExpr};

/// Strategy producing arbitrary proper lists of bounded depth/width using
/// a small symbol alphabet.
fn arb_sexpr() -> impl Strategy<Value = String> {
    let leaf = prop_oneof![
        prop::sample::select(vec!["a", "b", "c", "xyz", "foo"]).prop_map(str::to_owned),
        (-1000i64..1000).prop_map(|i| i.to_string()),
        Just("nil".to_owned()),
    ];
    leaf.prop_recursive(4, 64, 6, |inner| {
        prop::collection::vec(inner, 0..6).prop_map(|items| format!("({})", items.join(" ")))
    })
}

proptest! {
    #[test]
    fn parse_print_roundtrip(src in arb_sexpr()) {
        let mut i = Interner::new();
        let e = parse(&src, &mut i).unwrap();
        let printed = print(&e, &i);
        let e2 = parse(&printed, &mut i).unwrap();
        prop_assert_eq!(e, e2);
    }

    #[test]
    fn np_tree_identities(src in arb_sexpr()) {
        let mut i = Interner::new();
        let e = parse(&src, &mut i).unwrap();
        let m = np(&e);
        let (internal, leaves) = node_counts(&e);
        // For lists: internal = n + p, leaves = n + p + 1.
        // For bare atoms the tree is a single leaf.
        if e.is_cons() {
            // nil elements add an extra leaf but no n; adjust: the identity
            // internal + 1 == leaves always holds for a binary tree.
            prop_assert_eq!(internal + 1, leaves);
            // and internal >= n + p (equality when no nil elements appear
            // in car position).
            prop_assert!(internal >= m.n + m.p);
        } else {
            prop_assert_eq!(internal, 0);
            prop_assert_eq!(leaves, 1);
        }
    }

    #[test]
    fn super_sequence_is_3i_plus_l(src in arb_sexpr()) {
        let mut i = Interner::new();
        let e = parse(&src, &mut i).unwrap();
        let (internal, leaves) = node_counts(&e);
        prop_assert_eq!(super_sequence(&e).len(), 3 * internal + leaves);
    }

    #[test]
    fn traversal_orders_agree_on_leaves(src in arb_sexpr()) {
        let mut i = Interner::new();
        let e = parse(&src, &mut i).unwrap();
        // All three ordered traversals see the leaves in identical
        // left-to-right order (§5.3.1).
        let leaves = |o: Order| {
            traversal(&e, o)
                .into_iter()
                .filter(|n| !n.is_internal())
                .map(|n| n.number())
                .collect::<Vec<_>>()
        };
        let pre = leaves(Order::Pre);
        prop_assert_eq!(&pre, &leaves(Order::In));
        prop_assert_eq!(&pre, &leaves(Order::Post));
    }

    #[test]
    fn equality_is_reflexive_and_hash_agrees(src in arb_sexpr()) {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut i = Interner::new();
        let e1 = parse(&src, &mut i).unwrap();
        let e2 = parse(&src, &mut i).unwrap();
        prop_assert_eq!(&e1, &e2);
        let h = |e: &SExpr| {
            let mut s = DefaultHasher::new();
            e.hash(&mut s);
            s.finish()
        };
        prop_assert_eq!(h(&e1), h(&e2));
    }
}

proptest! {
    /// The reader must never panic, whatever bytes arrive — it returns
    /// a parse error or an expression.
    #[test]
    fn reader_never_panics_on_arbitrary_input(src in "\\PC{0,64}") {
        let mut i = Interner::new();
        let _ = parse(&src, &mut i);
    }

    /// Parser-accepted input always survives a print/reparse cycle.
    #[test]
    fn accepted_input_roundtrips(src in "[a-z0-9() .']{0,48}") {
        let mut i = Interner::new();
        if let Ok(e) = parse(&src, &mut i) {
            let printed = print(&e, &i);
            let e2 = parse(&printed, &mut i).expect("printer output must reparse");
            prop_assert_eq!(e, e2);
        }
    }
}
