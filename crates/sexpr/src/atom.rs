//! Atoms: symbols (interned names) and integers.
//!
//! The simple Lisp of §4.3.4 has integers as its only numeric type, and
//! character-string names as symbols. `nil` is a distinguished atom that
//! also terminates lists; it is represented at the [`crate::SExpr`] level
//! rather than here.

use std::fmt;

/// An interned symbol name. Cheap to copy and compare; resolve the text
/// through the [`Interner`] that produced it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Symbol(pub u32);

impl Symbol {
    /// Raw index into the interner's table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A non-`nil` atomic s-expression.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Atom {
    /// An interned symbol.
    Sym(Symbol),
    /// A (fixnum) integer — the only numeric type in the §4.3.4 Lisp.
    Int(i64),
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::Sym(s) => write!(f, "#sym{}", s.0),
            Atom::Int(i) => write!(f, "{i}"),
        }
    }
}

/// Symbol interner: maps names to dense `u32` ids and back.
///
/// Interning keeps symbol comparison O(1) and makes traces compact —
/// important because the LYRA-scale traces contain >150 000 primitive
/// events (Table 5.1).
///
/// Storage is arena-backed: every name's bytes live contiguously in one
/// append-only `String` (a bump allocation per symbol, never an owned
/// `String` each), addressed by `(offset, len)` spans, and the
/// name→symbol index is a hand-rolled open-addressed table keyed by
/// [FxHash](fxhash) — so `intern` of a known name touches no allocator
/// at all, and a miss costs exactly one arena append. Symbols are dense
/// ids in intern order, so iterating `0..len()` replays the exact
/// sequence — the property the suspend/resume image format relies on.
#[derive(Default, Debug, Clone)]
pub struct Interner {
    /// Bump arena holding every interned name back to back.
    arena: String,
    /// Per-symbol `(offset, len)` span into `arena`, in intern order.
    spans: Vec<(u32, u32)>,
    /// Open-addressed index: each slot holds `symbol index + 1`, with 0
    /// marking an empty slot. Length is always a power of two.
    table: Vec<u32>,
}

/// Above this load (numerator/denominator of table slots occupied) the
/// index doubles.
const LOAD_NUM: usize = 7;
const LOAD_DEN: usize = 8;

impl Interner {
    /// Create an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn span_str(&self, k: usize) -> &str {
        let (off, len) = self.spans[k];
        &self.arena[off as usize..(off + len) as usize]
    }

    /// Find the table slot for `name`: either the slot already holding
    /// its symbol, or the empty slot where it belongs.
    #[inline]
    fn probe(&self, name: &str) -> usize {
        debug_assert!(!self.table.is_empty());
        let mask = self.table.len() - 1;
        let mut idx = fxhash::hash_bytes(name.as_bytes()) as usize & mask;
        loop {
            match self.table[idx] {
                0 => return idx,
                slot => {
                    if self.span_str((slot - 1) as usize) == name {
                        return idx;
                    }
                }
            }
            idx = (idx + 1) & mask;
        }
    }

    fn grow(&mut self) {
        let cap = (self.table.len() * 2).max(16);
        self.table.clear();
        self.table.resize(cap, 0);
        let mask = cap - 1;
        for k in 0..self.spans.len() {
            let mut idx = fxhash::hash_bytes(self.span_str(k).as_bytes()) as usize & mask;
            while self.table[idx] != 0 {
                idx = (idx + 1) & mask;
            }
            self.table[idx] = k as u32 + 1;
        }
    }

    /// Intern `name`, returning the existing symbol if already present.
    pub fn intern(&mut self, name: &str) -> Symbol {
        if self.spans.len() + 1 > self.table.len() * LOAD_NUM / LOAD_DEN {
            self.grow();
        }
        let idx = self.probe(name);
        if let Some(slot) = self.table[idx].checked_sub(1) {
            return Symbol(slot);
        }
        let sym = Symbol(self.spans.len() as u32);
        let off = self.arena.len() as u32;
        self.arena.push_str(name);
        self.spans.push((off, name.len() as u32));
        self.table[idx] = sym.0 + 1;
        sym
    }

    /// Look up a symbol without interning. Returns `None` if never seen.
    pub fn get(&self, name: &str) -> Option<Symbol> {
        if self.table.is_empty() {
            return None;
        }
        self.table[self.probe(name)].checked_sub(1).map(Symbol)
    }

    /// Resolve a symbol back to its name.
    ///
    /// # Panics
    /// Panics if `sym` did not come from this interner.
    pub fn name(&self, sym: Symbol) -> &str {
        self.span_str(sym.index())
    }

    /// Number of distinct symbols interned.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether no symbols have been interned.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("car");
        let b = i.intern("car");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn intern_distinguishes_names() {
        let mut i = Interner::new();
        let a = i.intern("car");
        let b = i.intern("cdr");
        assert_ne!(a, b);
        assert_eq!(i.name(a), "car");
        assert_eq!(i.name(b), "cdr");
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert!(i.get("cons").is_none());
        let s = i.intern("cons");
        assert_eq!(i.get("cons"), Some(s));
    }

    #[test]
    fn interner_is_case_sensitive() {
        let mut i = Interner::new();
        assert_ne!(i.intern("Foo"), i.intern("foo"));
    }

    #[test]
    fn ids_are_dense_in_intern_order() {
        let mut i = Interner::new();
        let names = ["car", "cdr", "cons", "", "x", "car-of-cdr"];
        for (k, n) in names.iter().enumerate() {
            assert_eq!(i.intern(n), Symbol(k as u32));
        }
        // Replaying 0..len() reproduces the exact intern sequence — the
        // suspend/resume image format serializes symbols this way.
        for (k, n) in names.iter().enumerate() {
            assert_eq!(i.name(Symbol(k as u32)), *n);
        }
        assert_eq!(i.len(), names.len());
    }

    #[test]
    fn arena_neighbors_do_not_alias() {
        // Adjacent arena spans must not bleed into each other: "ab"+"c"
        // interned back to back is distinct from "a"+"bc".
        let mut i = Interner::new();
        let ab = i.intern("ab");
        let c = i.intern("c");
        assert_ne!(i.get("a"), Some(ab));
        assert_eq!(i.get("abc"), None);
        assert_eq!(i.get("ab"), Some(ab));
        assert_eq!(i.get("c"), Some(c));
    }

    #[test]
    fn survives_index_growth_and_clone() {
        let mut i = Interner::new();
        let syms: Vec<Symbol> = (0..500).map(|k| i.intern(&format!("sym-{k}"))).collect();
        for (k, s) in syms.iter().enumerate() {
            assert_eq!(i.name(*s), format!("sym-{k}"));
            assert_eq!(i.get(&format!("sym-{k}")), Some(*s));
            assert_eq!(i.intern(&format!("sym-{k}")), *s, "re-intern is stable");
        }
        let mut j = i.clone();
        assert_eq!(j.intern("sym-499"), syms[499]);
        let fresh = j.intern("sym-500");
        assert_eq!(fresh, Symbol(500));
        assert_eq!(j.name(fresh), "sym-500");
    }
}
