//! Atoms: symbols (interned names) and integers.
//!
//! The simple Lisp of §4.3.4 has integers as its only numeric type, and
//! character-string names as symbols. `nil` is a distinguished atom that
//! also terminates lists; it is represented at the [`crate::SExpr`] level
//! rather than here.

use std::collections::HashMap;
use std::fmt;

/// An interned symbol name. Cheap to copy and compare; resolve the text
/// through the [`Interner`] that produced it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Symbol(pub u32);

impl Symbol {
    /// Raw index into the interner's table.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A non-`nil` atomic s-expression.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Atom {
    /// An interned symbol.
    Sym(Symbol),
    /// A (fixnum) integer — the only numeric type in the §4.3.4 Lisp.
    Int(i64),
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::Sym(s) => write!(f, "#sym{}", s.0),
            Atom::Int(i) => write!(f, "{i}"),
        }
    }
}

/// Symbol interner: maps names to dense `u32` ids and back.
///
/// Interning keeps symbol comparison O(1) and makes traces compact —
/// important because the LYRA-scale traces contain >150 000 primitive
/// events (Table 5.1).
#[derive(Default, Debug, Clone)]
pub struct Interner {
    names: Vec<String>,
    index: HashMap<String, Symbol>,
}

impl Interner {
    /// Create an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning the existing symbol if already present.
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&sym) = self.index.get(name) {
            return sym;
        }
        let sym = Symbol(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), sym);
        sym
    }

    /// Look up a symbol without interning. Returns `None` if never seen.
    pub fn get(&self, name: &str) -> Option<Symbol> {
        self.index.get(name).copied()
    }

    /// Resolve a symbol back to its name.
    ///
    /// # Panics
    /// Panics if `sym` did not come from this interner.
    pub fn name(&self, sym: Symbol) -> &str {
        &self.names[sym.index()]
    }

    /// Number of distinct symbols interned.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no symbols have been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("car");
        let b = i.intern("car");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn intern_distinguishes_names() {
        let mut i = Interner::new();
        let a = i.intern("car");
        let b = i.intern("cdr");
        assert_ne!(a, b);
        assert_eq!(i.name(a), "car");
        assert_eq!(i.name(b), "cdr");
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert!(i.get("cons").is_none());
        let s = i.intern("cons");
        assert_eq!(i.get("cons"), Some(s));
    }

    #[test]
    fn interner_is_case_sensitive() {
        let mut i = Interner::new();
        assert_ne!(i.intern("Foo"), i.intern("foo"));
    }
}
