#![warn(missing_docs)]
//! S-expression core for the SMALL reproduction.
//!
//! Everything in the thesis — traces, locality analyses, the Lisp
//! interpreter, and the SMALL simulator — operates on s-expressions
//! (§2.2.2): atoms (symbols, integers, `nil`) and lists built from cons
//! cells. This crate provides the shared data model:
//!
//! * [`Symbol`] / [`Interner`] — interned symbol names,
//! * [`SExpr`] — a structurally-shared s-expression tree,
//! * [`reader`] — the textual reader (parser),
//! * [`printer`] — the printer (inverse of the reader),
//! * [`metrics`] — the `n`/`p` complexity measures of §3.3.1,
//! * [`tree`] — the binary-tree view of a list used in §5.3.1.
//!
//! The representation here is deliberately *abstract* (boxed trees): it is
//! the representation-independent vantage point of Chapter 3. The concrete
//! machine-level representations (two-pointer cells, cdr-coding,
//! structure-coding) live in the `small-heap` crate.

pub mod atom;
pub mod expr;
pub mod metrics;
pub mod printer;
pub mod reader;
pub mod tree;

pub use atom::{Atom, Interner, Symbol};
pub use expr::SExpr;
pub use printer::{print, print_into};
pub use reader::{parse, parse_all, ParseError};
