//! Binary-tree view of a list (§5.3.1, Figure 5.6).
//!
//! Every cons cell becomes an internal node with the car sub-tree on the
//! left and the cdr sub-tree on the right; atoms and `nil`s become leaves.
//! Nodes are numbered in the Minsky/BLAST style `N = 2^l + k` (root = 1,
//! children of `N` are `2N` and `2N+1`), which the structure-coded heap
//! representation uses as its addressing key.
//!
//! A proper list with `n` atoms and `p` internal parenthesis pairs has
//! `n + p` internal nodes and `n + p + 1` leaves (`n` atom leaves and
//! `p + 1` nil leaves), so a complete ordered traversal touches each
//! internal node exactly three times and each leaf once — this is the
//! basis of the guaranteed 75% LPT hit rate derived in §5.3.1.

use crate::atom::Atom;
use crate::expr::SExpr;

/// A node of the binary-tree view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TreeNode {
    /// Internal node (a cons cell), carrying its Minsky number.
    Internal(u64),
    /// Leaf holding an atom, carrying its Minsky number.
    Leaf(u64, Atom),
    /// Leaf holding `nil`, carrying its Minsky number.
    NilLeaf(u64),
}

impl TreeNode {
    /// The Minsky node number `N = 2^l + k`.
    pub fn number(&self) -> u64 {
        match self {
            TreeNode::Internal(n) | TreeNode::Leaf(n, _) | TreeNode::NilLeaf(n) => *n,
        }
    }

    /// Whether this node is internal (a cons cell).
    pub fn is_internal(&self) -> bool {
        matches!(self, TreeNode::Internal(_))
    }
}

/// An ordered traversal discipline (§5.3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Order {
    /// Visit each internal node on first contact.
    Pre,
    /// Visit each internal node on second contact.
    In,
    /// Visit each internal node on third (final) contact.
    Post,
}

/// Count internal nodes and leaves of the tree view.
pub fn node_counts(expr: &SExpr) -> (usize, usize) {
    fn go(e: &SExpr, internal: &mut usize, leaves: &mut usize) {
        match e {
            SExpr::Cons(c) => {
                *internal += 1;
                go(&c.0, internal, leaves);
                go(&c.1, internal, leaves);
            }
            _ => *leaves += 1,
        }
    }
    let mut internal = 0;
    let mut leaves = 0;
    go(expr, &mut internal, &mut leaves);
    (internal, leaves)
}

/// The visit sequence of an ordered traversal: internal nodes interleaved
/// with leaves in the requested order.
pub fn traversal(expr: &SExpr, order: Order) -> Vec<TreeNode> {
    let mut out = Vec::new();
    visit(expr, 1, order, &mut out);
    out
}

fn visit(e: &SExpr, num: u64, order: Order, out: &mut Vec<TreeNode>) {
    match e {
        SExpr::Cons(c) => {
            if order == Order::Pre {
                out.push(TreeNode::Internal(num));
            }
            visit(&c.0, num.wrapping_mul(2), order, out);
            if order == Order::In {
                out.push(TreeNode::Internal(num));
            }
            visit(&c.1, num.wrapping_mul(2).wrapping_add(1), order, out);
            if order == Order::Post {
                out.push(TreeNode::Internal(num));
            }
        }
        SExpr::Nil => out.push(TreeNode::NilLeaf(num)),
        SExpr::Atom(a) => out.push(TreeNode::Leaf(num, *a)),
    }
}

/// The traversal *super-sequence* (§5.3.1): the order in which nodes are
/// *touched*, with each internal node touched exactly three times (before
/// its left sub-tree, between the sub-trees, and after the right
/// sub-tree). Identical for pre-, in-, and post-order traversal — which is
/// why all three incur exactly the same split/merge activity in the LPT.
pub fn super_sequence(expr: &SExpr) -> Vec<TreeNode> {
    let mut out = Vec::new();
    fn go(e: &SExpr, num: u64, out: &mut Vec<TreeNode>) {
        match e {
            SExpr::Cons(c) => {
                out.push(TreeNode::Internal(num));
                go(&c.0, num.wrapping_mul(2), out);
                out.push(TreeNode::Internal(num));
                go(&c.1, num.wrapping_mul(2).wrapping_add(1), out);
                out.push(TreeNode::Internal(num));
            }
            SExpr::Nil => out.push(TreeNode::NilLeaf(num)),
            SExpr::Atom(a) => out.push(TreeNode::Leaf(num, *a)),
        }
    }
    go(expr, 1, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Interner;
    use crate::metrics::np;
    use crate::reader::parse;

    fn e(src: &str) -> SExpr {
        let mut i = Interner::new();
        parse(src, &mut i).unwrap()
    }

    #[test]
    fn counts_match_np_identities() {
        for src in [
            "(((A B) C D) E F G)",
            "(A B C (D E) F G)",
            "(A (B (C (D E F) G)))",
        ] {
            let x = e(src);
            let m = np(&x);
            let (internal, leaves) = node_counts(&x);
            assert_eq!(internal, m.n + m.p, "{src}");
            assert_eq!(leaves, m.n + m.p + 1, "{src}");
        }
    }

    #[test]
    fn super_sequence_touch_counts() {
        let x = e("(((A B) C D) E F G)");
        let (internal, leaves) = node_counts(&x);
        let seq = super_sequence(&x);
        assert_eq!(seq.len(), 3 * internal + leaves);
        // every internal node appears exactly 3 times
        use std::collections::HashMap;
        let mut touches: HashMap<u64, usize> = HashMap::new();
        for n in &seq {
            if n.is_internal() {
                *touches.entry(n.number()).or_default() += 1;
            }
        }
        assert_eq!(touches.len(), internal);
        assert!(touches.values().all(|&c| c == 3));
    }

    #[test]
    fn traversal_lengths() {
        let x = e("(((A B) C D) E F G)");
        let (internal, leaves) = node_counts(&x);
        for order in [Order::Pre, Order::In, Order::Post] {
            let t = traversal(&x, order);
            assert_eq!(t.len(), internal + leaves);
        }
    }

    #[test]
    fn traversals_are_subsequences_of_super_sequence() {
        let x = e("(((A B) C D) E F G)");
        let sup = super_sequence(&x);
        for order in [Order::Pre, Order::In, Order::Post] {
            let t = traversal(&x, order);
            // check subsequence property on node numbers
            let mut it = sup.iter();
            for node in &t {
                let found = it.any(|s| {
                    s == node
                        || (s.number() == node.number() && s.is_internal() && node.is_internal())
                });
                assert!(found, "{order:?} traversal is not a subsequence");
            }
        }
    }

    #[test]
    fn preorder_visits_root_first_postorder_last() {
        let x = e("(A B)");
        let pre = traversal(&x, Order::Pre);
        let post = traversal(&x, Order::Post);
        assert_eq!(pre.first().unwrap().number(), 1);
        assert_eq!(post.last().unwrap().number(), 1);
    }

    #[test]
    fn minsky_numbering_children() {
        // (A) = cons(A, nil): root 1, leaf A at 2, nil at 3.
        let x = e("(A)");
        let pre = traversal(&x, Order::Pre);
        let nums: Vec<u64> = pre.iter().map(|n| n.number()).collect();
        assert_eq!(nums, vec![1, 2, 3]);
    }
}
