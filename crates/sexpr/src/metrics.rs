//! The `n` / `p` list-complexity measures of §3.3.1 (Figure 3.2).
//!
//! For a list the thesis defines:
//!
//! * **n** — the number of symbols (atoms) in the list, at any depth;
//! * **p** — the number of *internal* parenthesis pairs, i.e. the number
//!   of sub-lists nested anywhere below the outermost pair.
//!
//! Two worked examples from Figure 3.2:
//!
//! * `(A B C (D E) F G)` has `n = 7`, `p = 1`, and needs `n + p = 8`
//!   two-pointer list cells;
//! * `(A (B (C (D E F) G)))` has `n = 7`, `p = 3`, and needs `10` cells.
//!
//! `n + p` is exactly the number of cons cells in the tree (each cell's
//! car slot holds either a symbol — counted in `n` — or a sub-list —
//! counted in `p`), and is therefore proportional to the space cost of
//! two-pointer or cdr-coded representation, while a structure-coded
//! representation (CDAR/EPS) needs only `n` entries.

use crate::expr::SExpr;

/// The `(n, p)` complexity pair for one list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NP {
    /// Number of atoms at any depth.
    pub n: usize,
    /// Number of internal (nested) parenthesis pairs.
    pub p: usize,
}

impl NP {
    /// Cells needed under two-pointer (or cdr-coded) representation.
    pub fn two_pointer_cells(&self) -> usize {
        self.n + self.p
    }

    /// Entries needed under a structure-coded representation.
    pub fn structure_coded_entries(&self) -> usize {
        self.n
    }
}

/// Compute `n` and `p` for an expression.
///
/// For an atom, `n = 1, p = 0`; for `nil`, both are zero. For a list, `p`
/// counts every cons cell whose *car* is itself a cons cell (i.e. every
/// nested open-paren), at any depth. Dotted atoms in cdr position count
/// toward `n`.
pub fn np(expr: &SExpr) -> NP {
    match expr {
        SExpr::Nil => NP { n: 0, p: 0 },
        SExpr::Atom(_) => NP { n: 1, p: 0 },
        SExpr::Cons(_) => {
            let mut out = NP::default();
            walk(expr, &mut out);
            out
        }
    }
}

fn walk(list: &SExpr, out: &mut NP) {
    let mut cur = list;
    loop {
        match cur {
            SExpr::Cons(c) => {
                match &c.0 {
                    SExpr::Cons(_) => {
                        out.p += 1;
                        walk(&c.0, out);
                    }
                    SExpr::Atom(_) => out.n += 1,
                    SExpr::Nil => {}
                }
                cur = &c.1;
            }
            SExpr::Atom(_) => {
                // dotted tail
                out.n += 1;
                return;
            }
            SExpr::Nil => return,
        }
    }
}

/// Mean of `n` and `p` over a collection of lists (Table 3.1).
pub fn mean_np<'a, I: IntoIterator<Item = &'a SExpr>>(lists: I) -> (f64, f64) {
    let mut count = 0usize;
    let mut sum_n = 0usize;
    let mut sum_p = 0usize;
    for l in lists {
        let m = np(l);
        sum_n += m.n;
        sum_p += m.p;
        count += 1;
    }
    if count == 0 {
        (0.0, 0.0)
    } else {
        (sum_n as f64 / count as f64, sum_p as f64 / count as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Interner;
    use crate::reader::parse;

    fn npm(src: &str) -> NP {
        let mut i = Interner::new();
        np(&parse(src, &mut i).unwrap())
    }

    #[test]
    fn figure_3_2_first_example() {
        let m = npm("(A B C (D E) F G)");
        assert_eq!(m, NP { n: 7, p: 1 });
        assert_eq!(m.two_pointer_cells(), 8);
        assert_eq!(m.structure_coded_entries(), 7);
    }

    #[test]
    fn figure_3_2_second_example() {
        let m = npm("(A (B (C (D E F) G)))");
        assert_eq!(m, NP { n: 7, p: 3 });
        assert_eq!(m.two_pointer_cells(), 10);
    }

    #[test]
    fn atoms_and_nil() {
        assert_eq!(npm("A"), NP { n: 1, p: 0 });
        assert_eq!(npm("42"), NP { n: 1, p: 0 });
        assert_eq!(npm("nil"), NP { n: 0, p: 0 });
    }

    #[test]
    fn flat_list() {
        assert_eq!(npm("(A B C)"), NP { n: 3, p: 0 });
    }

    #[test]
    fn nil_elements_do_not_count() {
        assert_eq!(npm("(A nil B)"), NP { n: 2, p: 0 });
    }

    #[test]
    fn dotted_tail_counts_as_atom() {
        assert_eq!(npm("(A . B)"), NP { n: 2, p: 0 });
        assert_eq!(npm("(A (B . C))"), NP { n: 3, p: 1 });
    }

    #[test]
    fn two_pointer_cells_matches_cell_count_for_proper_lists() {
        let mut i = Interner::new();
        for src in [
            "(A B C (D E) F G)",
            "(A (B (C (D E F) G)))",
            "((A B) (C D) (E F))",
            "(((A)))",
        ] {
            let e = parse(src, &mut i).unwrap();
            // cell_count counts nil-free cells too; with no nil elements
            // and no dotted tails the identities match.
            assert_eq!(np(&e).two_pointer_cells(), e.cell_count(), "{src}");
        }
    }

    #[test]
    fn mean_over_lists() {
        let mut i = Interner::new();
        let a = parse("(A B)", &mut i).unwrap();
        let b = parse("(A (B C))", &mut i).unwrap();
        let (n, p) = mean_np([&a, &b]);
        assert!((n - 2.5).abs() < 1e-9);
        assert!((p - 0.5).abs() < 1e-9);
    }
}
