//! The Lisp printer: [`SExpr`] → text, inverse of the reader.

use crate::atom::{Atom, Interner};
use crate::expr::SExpr;
use std::fmt::Write;

/// Print an expression using `interner` to resolve symbol names.
pub fn print(expr: &SExpr, interner: &Interner) -> String {
    let mut out = String::new();
    print_into(&mut out, expr, interner);
    out
}

/// Append the canonical printed form of `expr` to `out`. The
/// allocation-free variant of [`print`] for callers assembling many
/// forms into one buffer (e.g. the wire protocol's space-joined eval
/// payloads).
pub fn print_into(out: &mut String, expr: &SExpr, interner: &Interner) {
    write_expr(out, expr, interner);
}

fn write_expr(out: &mut String, expr: &SExpr, interner: &Interner) {
    match expr {
        SExpr::Nil => out.push_str("nil"),
        SExpr::Atom(Atom::Int(i)) => {
            let _ = write!(out, "{i}");
        }
        SExpr::Atom(Atom::Sym(s)) => out.push_str(interner.name(*s)),
        SExpr::Cons(_) => {
            out.push('(');
            let mut cur = expr;
            let mut first = true;
            loop {
                match cur {
                    SExpr::Cons(c) => {
                        if !first {
                            out.push(' ');
                        }
                        first = false;
                        write_expr(out, &c.0, interner);
                        cur = &c.1;
                    }
                    SExpr::Nil => break,
                    atom => {
                        out.push_str(" . ");
                        write_expr(out, atom, interner);
                        break;
                    }
                }
            }
            out.push(')');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reader::parse;

    #[test]
    fn print_parse_roundtrip() {
        let mut i = Interner::new();
        for src in [
            "(a b c (d e) f g)",
            "(a (b (c (d e f) g)))",
            "((a . 1) (b . 2))",
            "nil",
            "(nil nil)",
            "-42",
        ] {
            let e = parse(src, &mut i).unwrap();
            let printed = print(&e, &i);
            let e2 = parse(&printed, &mut i).unwrap();
            assert_eq!(e, e2, "roundtrip failed for {src}");
        }
    }
}
