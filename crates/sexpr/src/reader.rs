//! The Lisp reader: text → [`SExpr`].
//!
//! Accepts the classic surface syntax used throughout the thesis:
//! `( … )` lists, dotted pairs `(a . b)`, integers, symbols, `'x` quote
//! shorthand (expanded to `(quote x)`), and `;` line comments.

use crate::atom::Interner;
use crate::expr::SExpr;
use std::fmt;

/// Errors produced by the reader.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// Input ended inside a list or after a quote.
    UnexpectedEof,
    /// A `)` with no matching `(` (byte offset).
    UnbalancedClose(usize),
    /// A `.` in an illegal position (byte offset).
    BadDot(usize),
    /// Trailing garbage after a complete expression (byte offset).
    TrailingInput(usize),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::UnexpectedEof => write!(f, "unexpected end of input"),
            ParseError::UnbalancedClose(at) => write!(f, "unbalanced ')' at byte {at}"),
            ParseError::BadDot(at) => write!(f, "misplaced '.' at byte {at}"),
            ParseError::TrailingInput(at) => write!(f, "trailing input at byte {at}"),
        }
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Token<'a> {
    Open,
    Close,
    Quote,
    Dot,
    Int(i64),
    /// A symbol name, borrowed from the source text (interned only at
    /// the parser level — the lexer never allocates).
    Sym(&'a str),
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.src.len() {
            let c = self.src[self.pos];
            if c == b';' {
                while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                    self.pos += 1;
                }
            } else if c.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn next(&mut self) -> Option<(usize, Token<'a>)> {
        self.skip_ws();
        if self.pos >= self.src.len() {
            return None;
        }
        let at = self.pos;
        let c = self.src[self.pos];
        let tok = match c {
            b'(' | b'[' => {
                self.pos += 1;
                Token::Open
            }
            b')' | b']' => {
                self.pos += 1;
                Token::Close
            }
            b'\'' => {
                self.pos += 1;
                Token::Quote
            }
            _ => {
                let start = self.pos;
                while self.pos < self.src.len() {
                    let c = self.src[self.pos];
                    if c.is_ascii_whitespace()
                        || matches!(c, b'(' | b')' | b'[' | b']' | b'\'' | b';')
                    {
                        break;
                    }
                    self.pos += 1;
                }
                let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii");
                if text == "." {
                    Token::Dot
                } else if let Ok(i) = text.parse::<i64>() {
                    Token::Int(i)
                } else {
                    Token::Sym(text)
                }
            }
        };
        Some((at, tok))
    }
}

struct Parser<'a, 'i> {
    lexer: Lexer<'a>,
    interner: &'i mut Interner,
    peeked: Option<Option<(usize, Token<'a>)>>,
    /// Retired element buffers from completed lists, reused by later
    /// lists in the same parse so steady-state parsing does not grow
    /// a fresh `Vec` per `(`.
    scratch: Vec<Vec<SExpr>>,
}

impl<'a> Parser<'a, '_> {
    fn peek(&mut self) -> &Option<(usize, Token<'a>)> {
        if self.peeked.is_none() {
            self.peeked = Some(self.lexer.next());
        }
        self.peeked.as_ref().unwrap()
    }

    fn advance(&mut self) -> Option<(usize, Token<'a>)> {
        match self.peeked.take() {
            Some(t) => t,
            None => self.lexer.next(),
        }
    }

    fn expr(&mut self) -> Result<SExpr, ParseError> {
        let (at, tok) = self.advance().ok_or(ParseError::UnexpectedEof)?;
        match tok {
            Token::Int(i) => Ok(SExpr::int(i)),
            Token::Sym(s) => {
                if s.eq_ignore_ascii_case("nil") {
                    Ok(SExpr::Nil)
                } else {
                    let sym = self.interner.intern(s);
                    Ok(SExpr::sym(sym))
                }
            }
            Token::Quote => {
                let quoted = self.expr()?;
                let q = self.interner.intern("quote");
                Ok(SExpr::cons(SExpr::sym(q), SExpr::cons(quoted, SExpr::Nil)))
            }
            Token::Open => self.list_tail(at),
            Token::Close => Err(ParseError::UnbalancedClose(at)),
            Token::Dot => Err(ParseError::BadDot(at)),
        }
    }

    fn list_tail(&mut self, _open_at: usize) -> Result<SExpr, ParseError> {
        let mut items = self.scratch.pop().unwrap_or_default();
        loop {
            match self.peek() {
                None => return Err(ParseError::UnexpectedEof),
                Some((_, Token::Close)) => {
                    self.advance();
                    let list = items
                        .drain(..)
                        .rev()
                        .fold(SExpr::Nil, |acc, x| SExpr::cons(x, acc));
                    self.scratch.push(items);
                    return Ok(list);
                }
                Some((at, Token::Dot)) => {
                    let at = *at;
                    if items.is_empty() {
                        return Err(ParseError::BadDot(at));
                    }
                    self.advance();
                    let tail = self.expr()?;
                    match self.advance() {
                        Some((_, Token::Close)) => {
                            let list = items
                                .drain(..)
                                .rev()
                                .fold(tail, |acc, x| SExpr::cons(x, acc));
                            self.scratch.push(items);
                            return Ok(list);
                        }
                        Some((at, _)) => return Err(ParseError::BadDot(at)),
                        None => return Err(ParseError::UnexpectedEof),
                    }
                }
                Some(_) => {
                    let e = self.expr()?;
                    items.push(e);
                }
            }
        }
    }
}

/// Parse a single expression; error on trailing input.
pub fn parse(src: &str, interner: &mut Interner) -> Result<SExpr, ParseError> {
    let mut p = Parser {
        lexer: Lexer::new(src),
        interner,
        peeked: None,
        scratch: Vec::new(),
    };
    let e = p.expr()?;
    if let Some((at, _)) = p.advance() {
        return Err(ParseError::TrailingInput(at));
    }
    Ok(e)
}

/// Parse a sequence of top-level expressions (e.g. a program file).
pub fn parse_all(src: &str, interner: &mut Interner) -> Result<Vec<SExpr>, ParseError> {
    let mut p = Parser {
        lexer: Lexer::new(src),
        interner,
        peeked: None,
        scratch: Vec::new(),
    };
    let mut out = Vec::new();
    while p.peek().is_some() {
        out.push(p.expr()?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::print;

    fn roundtrip(src: &str) -> String {
        let mut i = Interner::new();
        let e = parse(src, &mut i).expect("parse");
        print(&e, &i)
    }

    #[test]
    fn atoms() {
        assert_eq!(roundtrip("42"), "42");
        assert_eq!(roundtrip("-7"), "-7");
        assert_eq!(roundtrip("foo"), "foo");
        assert_eq!(roundtrip("nil"), "nil");
        assert_eq!(roundtrip("NIL"), "nil");
    }

    #[test]
    fn simple_list() {
        assert_eq!(roundtrip("(a b c)"), "(a b c)");
        assert_eq!(roundtrip("( a  b\n c )"), "(a b c)");
    }

    #[test]
    fn nested_list() {
        assert_eq!(roundtrip("(a (b (c d)) e)"), "(a (b (c d)) e)");
        assert_eq!(roundtrip("()"), "nil");
        assert_eq!(roundtrip("(())"), "(nil)");
    }

    #[test]
    fn dotted_pair() {
        assert_eq!(roundtrip("(a . b)"), "(a . b)");
        assert_eq!(roundtrip("(a b . c)"), "(a b . c)");
        assert_eq!(roundtrip("(a . (b . nil))"), "(a b)");
    }

    #[test]
    fn quote_expands() {
        assert_eq!(roundtrip("'x"), "(quote x)");
        assert_eq!(roundtrip("'(a b)"), "(quote (a b))");
    }

    #[test]
    fn comments_skipped() {
        assert_eq!(roundtrip("(a ; comment\n b)"), "(a b)");
    }

    #[test]
    fn errors() {
        let mut i = Interner::new();
        assert!(matches!(
            parse("(a b", &mut i),
            Err(ParseError::UnexpectedEof)
        ));
        assert!(matches!(
            parse(")", &mut i),
            Err(ParseError::UnbalancedClose(_))
        ));
        assert!(matches!(parse("(. a)", &mut i), Err(ParseError::BadDot(_))));
        assert!(matches!(
            parse("a b", &mut i),
            Err(ParseError::TrailingInput(_))
        ));
    }

    #[test]
    fn parse_all_reads_program() {
        let mut i = Interner::new();
        let es = parse_all("(def f (lambda (x) x)) (f 1)", &mut i).unwrap();
        assert_eq!(es.len(), 2);
    }

    #[test]
    fn brackets_accepted() {
        // The thesis text itself uses `]` as a super-paren occasionally;
        // we treat brackets as plain parens.
        assert_eq!(roundtrip("[a b]"), "(a b)");
    }
}
