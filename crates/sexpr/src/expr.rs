//! The [`SExpr`] tree: the representation-independent view of Lisp data.
//!
//! Cons cells are reference-counted so that sub-structure can be shared
//! cheaply, exactly as `car`/`cdr` return shared sub-structure in a real
//! Lisp (§2.2.2, Figure 2.1). Structural equality and hashing are what the
//! trace preprocessor of §5.2.1 relies on ("lists that look identical are
//! allotted the same unique identifier").

use crate::atom::{Atom, Symbol};
use std::sync::Arc;

/// An s-expression: `nil`, an atom, or a cons cell.
#[derive(Clone, Debug)]
pub enum SExpr {
    /// The empty list / false value.
    Nil,
    /// A non-nil atom (symbol or integer).
    Atom(Atom),
    /// A cons cell `(car . cdr)`. Shared via `Arc` so that `cdr`-walking a
    /// list does not copy it and trees can cross threads (Multilisp).
    Cons(Arc<(SExpr, SExpr)>),
}

impl SExpr {
    /// Construct a symbol atom.
    #[inline]
    pub fn sym(s: Symbol) -> Self {
        SExpr::Atom(Atom::Sym(s))
    }

    /// Construct an integer atom.
    #[inline]
    pub fn int(i: i64) -> Self {
        SExpr::Atom(Atom::Int(i))
    }

    /// Cons two expressions.
    #[inline]
    pub fn cons(car: SExpr, cdr: SExpr) -> Self {
        SExpr::Cons(Arc::new((car, cdr)))
    }

    /// Build a proper list from an iterator of elements.
    pub fn list<I: IntoIterator<Item = SExpr>>(items: I) -> Self
    where
        I::IntoIter: DoubleEndedIterator,
    {
        items
            .into_iter()
            .rev()
            .fold(SExpr::Nil, |acc, x| SExpr::cons(x, acc))
    }

    /// `car` of a cons cell; `nil` of `nil` (Lisp convention); `None` for
    /// other atoms (which would be a runtime type error in the machine).
    pub fn car(&self) -> Option<SExpr> {
        match self {
            SExpr::Cons(c) => Some(c.0.clone()),
            SExpr::Nil => Some(SExpr::Nil),
            SExpr::Atom(_) => None,
        }
    }

    /// `cdr` of a cons cell; `nil` of `nil`; `None` for other atoms.
    pub fn cdr(&self) -> Option<SExpr> {
        match self {
            SExpr::Cons(c) => Some(c.1.clone()),
            SExpr::Nil => Some(SExpr::Nil),
            SExpr::Atom(_) => None,
        }
    }

    /// True iff this is `nil`.
    #[inline]
    pub fn is_nil(&self) -> bool {
        matches!(self, SExpr::Nil)
    }

    /// True iff this is an atom in the Lisp sense (`nil` included).
    #[inline]
    pub fn is_atom(&self) -> bool {
        !matches!(self, SExpr::Cons(_))
    }

    /// True iff this is a cons cell.
    #[inline]
    pub fn is_cons(&self) -> bool {
        matches!(self, SExpr::Cons(_))
    }

    /// The integer payload, if this is an integer atom.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            SExpr::Atom(Atom::Int(i)) => Some(*i),
            _ => None,
        }
    }

    /// The symbol payload, if this is a symbol atom.
    pub fn as_sym(&self) -> Option<Symbol> {
        match self {
            SExpr::Atom(Atom::Sym(s)) => Some(*s),
            _ => None,
        }
    }

    /// Iterate the elements of a proper list. Iteration stops at the first
    /// non-cons cdr (so a dotted tail is silently dropped; use
    /// [`SExpr::is_proper_list`] to check).
    pub fn iter(&self) -> ListIter<'_> {
        ListIter { cur: self }
    }

    /// Whether the expression is a proper (nil-terminated) list.
    pub fn is_proper_list(&self) -> bool {
        let mut cur = self;
        loop {
            match cur {
                SExpr::Nil => return true,
                SExpr::Cons(c) => cur = &c.1,
                SExpr::Atom(_) => return false,
            }
        }
    }

    /// Length of a proper list (number of top-level elements). Dotted
    /// tails count the cells traversed.
    pub fn len(&self) -> usize {
        self.iter().count()
    }

    /// Whether this is `nil` or an empty iteration.
    pub fn is_empty(&self) -> bool {
        !self.is_cons()
    }

    /// Total number of cons cells reachable (counting shared structure
    /// once per *path*, i.e. as if the structure were a tree — this is the
    /// space the list costs under two-pointer representation; Clark's
    /// studies found sub-structure sharing to be rare).
    pub fn cell_count(&self) -> usize {
        match self {
            SExpr::Cons(c) => 1 + c.0.cell_count() + c.1.cell_count(),
            _ => 0,
        }
    }
}

impl PartialEq for SExpr {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (SExpr::Nil, SExpr::Nil) => true,
            (SExpr::Atom(a), SExpr::Atom(b)) => a == b,
            (SExpr::Cons(a), SExpr::Cons(b)) => {
                // Pointer equality fast path: shared structure compares
                // equal without descending.
                Arc::ptr_eq(a, b) || (a.0 == b.0 && a.1 == b.1)
            }
            _ => false,
        }
    }
}

impl Eq for SExpr {}

impl std::hash::Hash for SExpr {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            SExpr::Nil => state.write_u8(0),
            SExpr::Atom(a) => {
                state.write_u8(1);
                a.hash(state);
            }
            SExpr::Cons(c) => {
                state.write_u8(2);
                c.0.hash(state);
                c.1.hash(state);
            }
        }
    }
}

/// Iterator over the top-level elements of a list.
pub struct ListIter<'a> {
    cur: &'a SExpr,
}

impl<'a> Iterator for ListIter<'a> {
    type Item = &'a SExpr;

    fn next(&mut self) -> Option<&'a SExpr> {
        match self.cur {
            SExpr::Cons(c) => {
                self.cur = &c.1;
                Some(&c.0)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SExpr {
        // (1 2 (3 4) 5)
        SExpr::list(vec![
            SExpr::int(1),
            SExpr::int(2),
            SExpr::list(vec![SExpr::int(3), SExpr::int(4)]),
            SExpr::int(5),
        ])
    }

    #[test]
    fn list_construction_and_iteration() {
        let l = sample();
        let lens: Vec<usize> = l.iter().map(|e| e.len()).collect();
        assert_eq!(lens, vec![0, 0, 2, 0]);
        assert_eq!(l.len(), 4);
        assert!(l.is_proper_list());
    }

    #[test]
    fn car_cdr_of_nil_is_nil() {
        assert!(SExpr::Nil.car().unwrap().is_nil());
        assert!(SExpr::Nil.cdr().unwrap().is_nil());
    }

    #[test]
    fn car_cdr_of_atom_is_error() {
        assert!(SExpr::int(3).car().is_none());
        assert!(SExpr::int(3).cdr().is_none());
    }

    #[test]
    fn structural_equality() {
        assert_eq!(sample(), sample());
        assert_ne!(sample(), SExpr::Nil);
        assert_ne!(
            SExpr::cons(SExpr::int(1), SExpr::Nil),
            SExpr::cons(SExpr::int(2), SExpr::Nil)
        );
    }

    #[test]
    fn hash_consistent_with_eq() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let h = |e: &SExpr| {
            let mut s = DefaultHasher::new();
            e.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&sample()), h(&sample()));
    }

    #[test]
    fn cell_count_matches_structure() {
        // (1 2 (3 4) 5): 4 top-level cells + 2 inner = 6
        assert_eq!(sample().cell_count(), 6);
        assert_eq!(SExpr::Nil.cell_count(), 0);
        assert_eq!(SExpr::int(9).cell_count(), 0);
    }

    #[test]
    fn dotted_pair_is_not_proper() {
        let d = SExpr::cons(SExpr::int(1), SExpr::int(2));
        assert!(!d.is_proper_list());
        assert!(d.is_cons());
    }

    #[test]
    fn shared_structure_compares_equal_fast() {
        let inner = SExpr::list(vec![SExpr::int(1)]);
        let a = SExpr::cons(inner.clone(), SExpr::Nil);
        let b = SExpr::cons(inner, SExpr::Nil);
        assert_eq!(a, b);
    }
}
