//! EDITOR analogue: a structure editor for Lisp function definitions.
//!
//! The thesis drove the Interlisp TTY editor through "global
//! substitutions, searches, modifications" on an editing function
//! (§3.3.1). This workload loads a large nested function definition and
//! executes an edit script of substitutions, atom counts, and
//! path-extractions. EDITOR works on by far the most complex lists of
//! the suite (Table 3.1: n ≈ 75, p ≈ 21).

use crate::runner::{run_workload, WorkloadRun};
use small_sexpr::{parse, Interner};

const SOURCE: &str = r#"
(def subst* (lambda (old new e)
  (cond ((equal e old) new)
        ((atom e) e)
        (t (cons (subst* old new (car e))
                 (subst* old new (cdr e)))))))

(def count-atom (lambda (x e)
  (cond ((equal e x) 1)
        ((atom e) 0)
        (t (add (count-atom x (car e)) (count-atom x (cdr e)))))))

(def extract (lambda (path e)
  (cond ((null path) e)
        ((atom e) nil)
        ((equal (car path) 0) (extract (cdr path) (car e)))
        (t (extract (cdr path) (cdr e))))))

(def depth* (lambda (e)
  (cond ((atom e) 0)
        (t (max2 (add 1 (depth* (car e))) (depth* (cdr e)))))))

(def max2 (lambda (a b) (cond ((greaterp a b) a) (t b))))

(def do-op (lambda (op text)
  (prog (kind)
    (setq kind (car op))
    (cond ((equal kind 1)
           (setq text (subst* (cadr op) (caddr op) text))
           (write (count-atom (caddr op) text))
           (return text)))
    (cond ((equal kind 2)
           (write (count-atom (cadr op) text))
           (return text)))
    (cond ((equal kind 3)
           (write (extract (cadr op) text))
           (return text)))
    (write (depth* text))
    (return text))))

(def run-script (lambda (script text)
  (cond ((null script) text)
        (t (run-script (cdr script) (do-op (car script) text))))))

(def main (lambda ()
  (prog (text script)
    (read text)
    (read script)
    (setq text (run-script script text))
    (write (count-atom (quote lambda) text))
    (return (depth* text)))))

(main)
"#;

/// Generate the "function definition" being edited: a nested cond tree
/// whose complexity matches EDITOR's Table 3.1 profile (n ≈ 75, p ≈ 21
/// per top-level list at scale 1).
fn document(scale: u32) -> String {
    fn clause(d: u32, salt: u32) -> String {
        if d == 0 {
            format!("(setq v{salt} (add v{salt} {salt}))")
        } else {
            format!(
                "(cond ((null x{salt}) {}) ((greaterp v{salt} {salt}) {}) (t (progn {} (write v{salt}))))",
                clause(d - 1, salt * 2 + 1),
                clause(d - 1, salt * 2 + 2),
                clause(d - 1, salt * 3 + 1),
            )
        }
    }
    let depth = 2 + scale.min(4);
    format!(
        "(def edit-me (lambda (x0 v0) (prog (tmp) {} {} (return tmp))))",
        clause(depth, 0),
        clause(depth.saturating_sub(1), 1),
    )
}

fn script(scale: u32) -> String {
    let mut ops = String::from("(");
    for k in 0..4 * scale.max(1) {
        ops.push_str(&format!("(1 v{k} w{k}) ",));
        ops.push_str("(2 setq) ");
        ops.push_str("(3 (1 1 0)) (4) ");
    }
    ops.push(')');
    ops
}

/// Run the EDITOR workload at `scale`.
pub fn run(scale: u32) -> WorkloadRun {
    let mut interner = Interner::new();
    let inputs = vec![
        parse(&document(scale), &mut interner).expect("document"),
        parse(&script(scale), &mut interner).expect("script"),
    ];
    run_workload("editor", SOURCE, inputs, interner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn substitutions_apply() {
        let r = run(1);
        // Op (1 v0 w0) rewrote v0 → w0; the count of w0 afterwards > 0.
        let first_count = r.outputs[0].as_int().unwrap();
        assert!(first_count > 0);
        // The final count of `lambda` is 1 (the definition head).
        let last = r.outputs.last().unwrap().as_int().unwrap();
        assert_eq!(last, 1);
    }

    #[test]
    fn lists_are_complex() {
        let r = run(1);
        // The document uid (first read) must show EDITOR-like complexity.
        let biggest = r.trace.uids.iter().map(|u| (u.n, u.p)).max().unwrap();
        assert!(biggest.0 >= 60, "n = {}", biggest.0);
        assert!(biggest.1 >= 15, "p = {}", biggest.1);
    }

    #[test]
    fn trace_scale() {
        let r = run(1);
        let s = small_trace::TraceStats::of(&r.trace);
        assert!(s.primitives > 1_000, "{}", s.primitives);
    }
}
