//! PEARL analogue: an a-list database with lookup and destructive
//! update.
//!
//! The thesis used PEARL "to construct a small database management
//! system and perform lookup and update operations on it" (§3.3.1), and
//! notes that PEARL's data structures were *hunks* — direct-access
//! structures — so its traced list activity was short, with an unusually
//! high `rplaca`/`rplacd` fraction (Figure 3.1) and almost no primitive
//! chaining (Table 3.2). This workload reproduces that profile: records
//! are field a-lists updated in place with `rplacd`, and record access
//! goes through the interpreter's untraced hunk primitives (`hassoc`,
//! `hnth`) — the documented stand-in for Franz hunks.

use crate::runner::{run_workload, WorkloadRun};
use small_sexpr::{parse, Interner};

const SOURCE: &str = r#"
(def db-insert (lambda (db key rec)
  (cons (cons key rec) db)))

(def db-lookup (lambda (db key field)
  (prog (r f)
    (setq r (hassoc key db))
    (cond ((null r) (return nil)))
    (setq f (hassoc field (cdr r)))
    (cond ((null f) (return nil)))
    (return (cdr f)))))

(def db-update (lambda (db key field val)
  (prog (r f)
    (setq r (hassoc key db))
    (cond ((null r) (return db)))
    (setq f (hassoc field (cdr r)))
    (cond ((null f)
           (rplacd r (cons (cons field val) (cdr r)))
           (return db)))
    (rplacd f val)
    (return db))))

(def run-script (lambda (script db)
  (cond ((null script) db)
        (t (run-script (cdr script) (do-op (car script) db))))))

(def do-op (lambda (op db)
  (prog (kind)
    (setq kind (hnth 0 op))
    (cond ((equal kind 1)
           (return (db-insert db (hnth 1 op) (hnth 2 op)))))
    (cond ((equal kind 2)
           (write (db-lookup db (hnth 1 op) (hnth 2 op)))
           (return db)))
    (return (db-update db (hnth 1 op) (hnth 2 op) (hnth 3 op))))))

(def main (lambda ()
  (prog (script db)
    (read script)
    (setq db (run-script script nil))
    (write (length db))
    (return (length db)))))

(main)
"#;

fn script(scale: u32) -> String {
    let mut out = String::from("(");
    let n = 40 * scale.max(1);
    for k in 0..n {
        out.push_str(&format!(
            "(1 k{k} ((name . n{k}) (age . {}) (dept . d{}))) ",
            20 + k % 40,
            k % 4
        ));
    }
    for k in 0..n {
        out.push_str(&format!("(2 k{} age) ", (k * 7 + 3) % n));
        out.push_str(&format!("(3 k{} age {}) ", (k * 5 + 1) % n, 30 + k));
        out.push_str(&format!("(3 k{} office r{}) ", (k * 3 + 2) % n, k));
    }
    out.push(')');
    out
}

/// Run the PEARL workload at `scale`.
pub fn run(scale: u32) -> WorkloadRun {
    let mut interner = Interner::new();
    let inputs = vec![parse(&script(scale), &mut interner).expect("script")];
    run_workload("pearl", SOURCE, inputs, interner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use small_trace::{Prim, TraceStats};

    #[test]
    fn lookups_return_values() {
        let r = run(1);
        // Lookup outputs plus the final db length.
        assert!(r.outputs.len() > 3);
        let len = r.outputs.last().unwrap().as_int().unwrap();
        assert_eq!(len, 40, "all inserts present");
    }

    #[test]
    fn update_heavy_profile() {
        let r = run(1);
        let s = TraceStats::of(&r.trace);
        let rplac = s.prim_percent(Prim::Rplaca) + s.prim_percent(Prim::Rplacd);
        // Figure 3.1: PEARL's rplac fraction is the highest of the suite.
        assert!(rplac > 1.0, "rplac% = {rplac}");
        assert!(s.primitives < 30_000, "PEARL stays the shortest trace");
    }

    #[test]
    fn updates_are_destructive() {
        let r = run(1);
        // After updating k1's age, a subsequent lookup sees the new
        // value... the script interleaves; just verify some lookup
        // returned a non-nil value.
        assert!(r
            .outputs
            .iter()
            .any(|o| !o.is_empty() || o.as_int().is_some()));
    }
}
