//! LYRA analogue: a VLSI geometric design-rule checker in Lisp.
//!
//! The thesis ran LYRA doing "CMOS design rules checks on a portion of
//! an 8 bit multiplier" (§3.3.1). This workload checks minimum-width and
//! minimum-spacing rules over a rectangle list: every rectangle is
//! width-checked against its layer's rule, and every same-layer pair is
//! spacing-checked — the O(n²) pair scan is what makes LYRA by far the
//! longest trace in Table 5.1, dominated by car/cdr access.

use crate::runner::{run_workload, WorkloadRun};
use small_sexpr::{parse, Interner};

const SOURCE: &str = r#"
(def cadddr (lambda (x) (car (cdr (cdr (cdr x))))))
(def caddddr (lambda (x) (car (cdr (cdr (cdr (cdr x)))))))

(def rlayer (lambda (r) (car r)))
(def rx1 (lambda (r) (cadr r)))
(def ry1 (lambda (r) (caddr r)))
(def rx2 (lambda (r) (cadddr r)))
(def ry2 (lambda (r) (caddddr r)))

(def min2 (lambda (a b) (cond ((lessp a b) a) (t b))))
(def max2 (lambda (a b) (cond ((greaterp a b) a) (t b))))

(def rule-for (lambda (layer rules)
  (prog (p)
    (setq p (assoc layer rules))
    (cond ((null p) (return (cons 2 2))))
    (return (cdr p)))))

(def width-of (lambda (r)
  (min2 (sub (rx2 r) (rx1 r)) (sub (ry2 r) (ry1 r)))))

(def check-width (lambda (r rules)
  (cond ((lessp (width-of r) (car (rule-for (rlayer r) rules)))
         (cons 1 r))
        (t nil))))

(def gap (lambda (a b)
  (prog (gx gy)
    (setq gx (max2 (sub (rx1 a) (rx2 b)) (sub (rx1 b) (rx2 a))))
    (setq gy (max2 (sub (ry1 a) (ry2 b)) (sub (ry1 b) (ry2 a))))
    (cond ((and (lessp gx 0) (lessp gy 0)) (return 0)))
    (return (max2 gx gy)))))

(def check-pair (lambda (a b rules)
  (prog (g minsp)
    (cond ((not (equal (rlayer a) (rlayer b))) (return nil)))
    (setq g (gap a b))
    (cond ((equal g 0) (return nil)))
    (setq minsp (cdr (rule-for (rlayer a) rules)))
    (cond ((lessp g minsp)
           (return (cons 2 (cons (rx1 a) (cons (ry1 a)
                    (cons (rx1 b) (cons (ry1 b) nil))))))))
    (return nil))))

(def check-against (lambda (r others rules acc)
  (cond ((null others) acc)
        (t (prog (e)
             (setq e (check-pair r (car others) rules))
             (cond ((null e)
                    (return (check-against r (cdr others) rules acc))))
             (return (check-against r (cdr others) rules (cons e acc))))))))

(def check-all (lambda (rects rules acc)
  (cond ((null rects) acc)
        (t (prog (e)
             (setq e (check-width (car rects) rules))
             (cond ((not (null e)) (setq acc (cons e acc))))
             (setq acc (check-against (car rects) (cdr rects) rules acc))
             (return (check-all (cdr rects) rules acc)))))))

(def main (lambda ()
  (prog (rects rules errs)
    (read rects)
    (read rules)
    (setq errs (check-all rects rules nil))
    (write (length errs))
    (write errs)
    (return (length rects)))))

(main)
"#;

/// Generate the rectangle field: a grid of `cols × rows` rectangles on 3
/// layers with deterministic pseudo-random sizes; a fraction violate the
/// width rule, and tight columns violate spacing.
fn rects(scale: u32) -> String {
    let cols = 8 + 2 * scale.max(1) as i64;
    let rows = 8;
    let mut out = String::from("(");
    let mut h = 0x9e37u64;
    for r in 0..rows {
        for c in 0..cols {
            h = h
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let layer = (h >> 32) % 3 + 1;
            let w = 1 + ((h >> 40) % 5) as i64; // widths 1..5; rule ≥2 ⇒ some violate
            let hgt = 2 + ((h >> 45) % 4) as i64;
            let x1 = c * 7 + ((h >> 50) % 3) as i64; // jitter ⇒ some gaps < 2
            let y1 = r * 8;
            out.push_str(&format!("({layer} {x1} {y1} {} {}) ", x1 + w, y1 + hgt));
        }
    }
    out.push(')');
    out
}

/// The workload's Lisp source text.
pub fn source() -> &'static str {
    SOURCE
}

/// The `(read …)` inputs for a run at `scale`.
pub fn inputs(scale: u32, interner: &mut Interner) -> Vec<small_sexpr::SExpr> {
    vec![
        parse(&rects(scale), interner).expect("rects"),
        // (layer . (minwidth . minspacing))
        parse("((1 . (2 . 2)) (2 . (2 . 3)) (3 . (3 . 2)))", interner).expect("rules"),
    ]
}

/// Run the LYRA workload at `scale`.
pub fn run(scale: u32) -> WorkloadRun {
    let mut interner = Interner::new();
    let inputs = self::inputs(scale, &mut interner);
    run_workload("lyra", SOURCE, inputs, interner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use small_trace::{Prim, TraceStats};

    #[test]
    fn finds_violations() {
        let r = run(1);
        let count = r.outputs[0].as_int().expect("violation count");
        assert!(count > 0, "the generated field must contain violations");
        // The error list has that many entries.
        assert_eq!(r.outputs[1].len(), count as usize);
    }

    #[test]
    fn is_the_longest_trace_and_access_dominated() {
        let r = run(1);
        let s = TraceStats::of(&r.trace);
        assert!(s.primitives > 20_000, "{}", s.primitives);
        let access = s.prim_percent(Prim::Car) + s.prim_percent(Prim::Cdr);
        assert!(access > 70.0, "access% = {access}");
    }

    #[test]
    fn deterministic() {
        let a = run(1);
        let b = run(1);
        assert_eq!(a.trace.primitive_count(), b.trace.primitive_count());
    }
}
