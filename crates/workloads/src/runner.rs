//! Shared workload runner: parse, instrument, evaluate, collect trace.

use small_lisp::env::DeepEnv;
use small_lisp::interp::{Interp, LispError, PRELUDE};
use small_sexpr::{Interner, SExpr};
use small_trace::record::{resolve_fn_names, Recorder};
use small_trace::Trace;

/// Result of one traced workload run.
pub struct WorkloadRun {
    /// The recorded primitive/function trace.
    pub trace: Trace,
    /// Interpreter statistics (sanity checks against the trace).
    pub stats: small_lisp::interp::InterpStats,
    /// Everything the program `write`d.
    pub outputs: Vec<SExpr>,
    /// The interner (to print outputs).
    pub interner: Interner,
}

/// Run `source` (plus the prelude) with `inputs` queued for `(read …)`,
/// tracing list primitives. The final form of `source` is the program's
/// entry call. Runs on a dedicated thread with a large stack so deep
/// recursion in interpreted code is safe.
///
/// # Panics
/// Panics if the workload program itself errors — workload sources are
/// fixed assets of this crate and must run.
pub fn run_workload(
    name: &str,
    source: &str,
    inputs: Vec<SExpr>,
    interner: Interner,
) -> WorkloadRun {
    let name = name.to_owned();
    let source = source.to_owned();
    let builder = std::thread::Builder::new()
        .name(format!("workload-{name}"))
        .stack_size(256 << 20);
    let handle = builder
        .spawn(move || run_inner(&name, &source, inputs, interner))
        .expect("spawn workload thread");
    handle.join().expect("workload thread panicked")
}

fn run_inner(name: &str, source: &str, inputs: Vec<SExpr>, mut interner: Interner) -> WorkloadRun {
    let recorder = Recorder::new(name, &mut interner);
    let mut it = Interp::new(interner, DeepEnv::new(), recorder);
    it.set_depth_limit(20_000);
    it.set_step_budget(500_000_000);
    it.run_program(PRELUDE)
        .unwrap_or_else(|e| panic!("{name}: prelude failed: {e}"));
    for i in inputs {
        it.input.push_back(i);
    }
    match it.run_program(source) {
        Ok(_) => {}
        Err(LispError::ReadEof) => panic!("{name}: ran out of input"),
        Err(e) => panic!("{name}: workload failed: {e}"),
    }
    let stats = it.stats();
    let outputs = std::mem::take(&mut it.output);
    let recorder = std::mem::replace(&mut it.hook, Recorder::new("_", &mut it.interner));
    let mut trace = recorder.finish();
    resolve_fn_names(&mut trace, &it.interner);
    WorkloadRun {
        trace,
        stats,
        outputs,
        interner: it.interner,
    }
}
