//! PLAGEN analogue: a PLA (programmable logic array) generator in Lisp.
//!
//! The thesis used PLAGEN "to generate a PLA for a traffic light
//! controller" (§3.3.1, after Mead & Conway). This workload takes a
//! truth table and produces the PLA personality matrix: an AND-plane row
//! per product term and an OR-plane row per output, merging rows with
//! identical AND parts. Access-primitive dominated, as Figure 3.1 shows.

use crate::runner::{run_workload, WorkloadRun};
use small_sexpr::{parse, Interner};

const SOURCE: &str = r#"
(def make-and-row (lambda (ins)
  (cond ((null ins) nil)
        (t (cons (car ins) (make-and-row (cdr ins)))))))

(def or-merge (lambda (a b)
  (cond ((null a) nil)
        (t (cons (cond ((equal (car a) 1) 1)
                       ((equal (car b) 1) 1)
                       (t 0))
                 (or-merge (cdr a) (cdr b)))))))

(def find-row (lambda (and-row matrix)
  (cond ((null matrix) nil)
        ((equal (car (car matrix)) and-row) (car matrix))
        (t (find-row and-row (cdr matrix))))))

(def add-term (lambda (row matrix)
  (prog (and-row or-row hit)
    (setq and-row (make-and-row (car row)))
    (setq or-row (cadr row))
    (setq hit (find-row and-row matrix))
    (cond ((null hit)
           (return (cons (cons and-row (cons or-row nil)) matrix))))
    (rplaca (cdr hit) (or-merge (cadr hit) or-row))
    (return matrix))))

(def build-matrix (lambda (table matrix)
  (cond ((null table) matrix)
        (t (build-matrix (cdr table) (add-term (car table) matrix))))))

(def count-ones (lambda (row)
  (cond ((null row) 0)
        ((equal (car row) 1) (add 1 (count-ones (cdr row))))
        (t (count-ones (cdr row))))))

(def matrix-cost (lambda (matrix)
  (cond ((null matrix) 0)
        (t (add (add (count-ones (car (car matrix)))
                     (count-ones (cadr (car matrix))))
                (matrix-cost (cdr matrix)))))))

(def write-rows (lambda (matrix)
  (cond ((null matrix) nil)
        (t (progn
             (write (car matrix))
             (write-rows (cdr matrix)))))))

(def main (lambda ()
  (prog (table matrix)
    (read table)
    (setq matrix (build-matrix table nil))
    (write-rows matrix)
    (write (matrix-cost matrix))
    (return (length matrix)))))

(main)
"#;

/// The traffic-light-controller truth table (Mead & Conway flavour):
/// inputs (cars, timer-long, timer-short, state1, state0) → outputs
/// (next-state1, next-state0, start-timer, hl-green/farm-green code).
/// Rows are (inputs outputs); don't-cares are expanded to 0/1 pairs by
/// the generator, which at higher scales re-feeds permuted copies to
/// grow the trace while preserving matrix semantics.
fn truth_table(scale: u32) -> String {
    // Base rows: (c tl ts s1 s0) -> (n1 n0 st g)
    let base: &[([u8; 5], [u8; 4])] = &[
        ([0, 0, 0, 0, 0], [0, 0, 0, 1]),
        ([0, 1, 0, 0, 0], [0, 0, 0, 1]),
        ([1, 0, 0, 0, 0], [0, 0, 0, 1]),
        ([1, 1, 0, 0, 0], [0, 1, 1, 1]),
        ([1, 1, 1, 0, 0], [0, 1, 1, 1]),
        ([0, 0, 1, 0, 1], [1, 1, 1, 0]),
        ([0, 1, 1, 0, 1], [1, 1, 1, 0]),
        ([1, 0, 0, 0, 1], [0, 1, 0, 0]),
        ([0, 0, 0, 1, 1], [1, 1, 0, 0]),
        ([1, 0, 1, 1, 1], [1, 0, 1, 0]),
        ([0, 1, 1, 1, 1], [1, 0, 1, 0]),
        ([0, 0, 1, 1, 0], [0, 0, 1, 1]),
        ([1, 1, 1, 1, 0], [0, 0, 1, 1]),
        ([1, 0, 1, 1, 0], [0, 0, 0, 1]),
    ];
    let mut out = String::from("(");
    for rep in 0..4 * scale.max(1) {
        for (ins, outs) in base {
            out.push_str("((");
            for k in 0..ins.len() {
                // Higher reps rotate the input columns so the rotated
                // rows have (mostly) new AND parts, growing the matrix
                // and the search work in `find-row`.
                let idx = (k + rep as usize) % ins.len();
                out.push_str(&format!("{} ", ins[idx]));
            }
            out.push_str(") (");
            for o in outs {
                out.push_str(&format!("{o} "));
            }
            out.push_str(")) ");
        }
    }
    out.push(')');
    out
}

/// Run the PLAGEN workload at `scale`.
pub fn run(scale: u32) -> WorkloadRun {
    let mut interner = Interner::new();
    let inputs = vec![parse(&truth_table(scale), &mut interner).expect("table")];
    run_workload("plagen", SOURCE, inputs, interner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use small_trace::{Prim, TraceStats};

    #[test]
    fn generates_personality_matrix() {
        let r = run(1);
        // Rows + cost value were written.
        assert!(r.outputs.len() >= 10, "got {}", r.outputs.len());
        // Cost is the final write, a positive integer.
        let cost = r.outputs.last().unwrap().as_int().expect("cost int");
        assert!(cost > 0);
    }

    #[test]
    fn merging_reduces_rows() {
        // Rotations repeat every 5 reps, so duplicate AND parts appear
        // across reps and the matrix must stay smaller than the table.
        let r = run(2);
        let rows = r.outputs.len() - 1;
        assert!(
            rows < 2 * 4 * 14,
            "duplicate AND rows must merge, got {rows}"
        );
    }

    #[test]
    fn access_primitives_dominate() {
        let r = run(1);
        let s = TraceStats::of(&r.trace);
        let access = s.prim_percent(Prim::Car) + s.prim_percent(Prim::Cdr);
        assert!(access > 50.0, "access% = {access}");
        assert!(s.primitives > 2000, "{}", s.primitives);
    }
}
