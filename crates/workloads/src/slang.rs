//! SLANG analogue: a gate-level logic simulator in Lisp.
//!
//! The thesis ran SLANG on "a BCD to decimal convertor as well as
//! another simple Boolean function" (§3.3.1). This workload simulates a
//! BCD→decimal decoder netlist over a set of input vectors. The wire
//! environment is an association list extended with `cons` and updated
//! destructively — giving the higher `cons` fraction Figure 3.1 reports
//! for SLANG.

use crate::runner::{run_workload, WorkloadRun};
use small_sexpr::{parse, Interner, SExpr};

/// Gate types: 1 = and2, 2 = or2, 3 = not1, 4 = xor2.
const SOURCE: &str = r#"
(def band (lambda (a b) (cond ((equal a 0) 0) ((equal b 0) 0) (t 1))))
(def bor  (lambda (a b) (cond ((equal a 1) 1) ((equal b 1) 1) (t 0))))
(def bnot (lambda (a) (cond ((equal a 0) 1) (t 0))))
(def bxor (lambda (a b) (cond ((equal a b) 0) (t 1))))

(def wire-val (lambda (w env)
  (prog (p)
    (setq p (assoc w env))
    (cond ((null p) (return 0)))
    (return (cdr p)))))

(def set-wire (lambda (w v env)
  (cons (cons w v) env)))

(def gate-out (lambda (g env)
  (prog (ty a b)
    (setq ty (cadr g))
    (setq a (wire-val (caddr g) env))
    (cond ((equal ty 3) (return (bnot a))))
    (setq b (wire-val (car (cdr (cdr (cdr g)))) env))
    (cond ((equal ty 1) (return (band a b)))
          ((equal ty 2) (return (bor a b))))
    (return (bxor a b)))))

(def sim-step (lambda (gates env)
  (cond ((null gates) env)
        (t (sim-step (cdr gates)
                     (set-wire (car (car gates))
                               (gate-out (car gates) env)
                               env))))))

(def collect-outs (lambda (outs env)
  (cond ((null outs) nil)
        (t (cons (wire-val (car outs) env)
                 (collect-outs (cdr outs) env))))))

(def run-one (lambda (gates tv outs)
  (prog (env)
    (setq env tv)
    (setq env (sim-step gates env))
    (return (collect-outs outs env)))))

(def run-tests (lambda (gates tests outs)
  (cond ((null tests) nil)
        (t (progn
             (write (run-one gates (car tests) outs))
             (run-tests gates (cdr tests) outs))))))

(def main (lambda ()
  (prog (gates tests outs)
    (read gates)
    (read tests)
    (read outs)
    (run-tests gates tests outs)
    (return (length gates)))))

(main)
"#;

/// Wire numbering: inputs 1..=4 (BCD bits b3 b2 b1 b0), inverters
/// 11..=14, first-level ANDs 21..=30, outputs 31..=40.
fn netlist() -> String {
    let mut gates = String::from("(");
    // Inverters for each input bit.
    for b in 1..=4 {
        gates.push_str(&format!("({} 3 {}) ", 10 + b, b));
    }
    // Decimal outputs d0..d9: d = AND of 4 literals, built from two
    // 2-input ANDs: t = and(l3, l2); out = and(t, and(l1, l0)).
    // Literal for bit k of digit d: input k if bit set, inverter if not.
    for d in 0..10u32 {
        let lit = |bit: u32| -> u32 {
            let k = 4 - bit; // wire index for bit (b3 = wire 1 … b0 = wire 4)
            if d >> bit & 1 == 1 {
                k
            } else {
                10 + k
            }
        };
        let t1 = 50 + d * 3;
        let t2 = 51 + d * 3;
        gates.push_str(&format!("({t1} 1 {} {}) ", lit(3), lit(2)));
        gates.push_str(&format!("({t2} 1 {} {}) ", lit(1), lit(0)));
        gates.push_str(&format!("({} 1 {t1} {t2}) ", 31 + d));
    }
    gates.push(')');
    gates
}

fn test_vectors(scale: u32) -> String {
    let mut out = String::from("(");
    let count = 10 * scale.max(1);
    for i in 0..count {
        let v = i % 10;
        out.push_str(&format!(
            "((1 . {}) (2 . {}) (3 . {}) (4 . {})) ",
            v >> 3 & 1,
            v >> 2 & 1,
            v >> 1 & 1,
            v & 1
        ));
    }
    out.push(')');
    out
}

/// The workload's Lisp source text (also compilable by the §4.3.4
/// compiler — see `tests/workload_on_small.rs`).
pub fn source() -> &'static str {
    SOURCE
}

/// The `(read …)` inputs for a run at `scale`, parsed with `interner`.
pub fn inputs(scale: u32, interner: &mut Interner) -> Vec<small_sexpr::SExpr> {
    vec![
        parse(&netlist(), interner).expect("netlist"),
        parse(&test_vectors(scale), interner).expect("tests"),
        parse("(31 32 33 34 35 36 37 38 39 40)", interner).expect("outs"),
    ]
}

/// Run the SLANG workload at `scale` (number of test sweeps).
pub fn run(scale: u32) -> WorkloadRun {
    let mut interner = Interner::new();
    let inputs = self::inputs(scale, &mut interner);
    run_workload("slang", SOURCE, inputs, interner)
}

/// The decoder outputs expected for input digit `v`: one-hot.
pub fn expected_output(v: u32) -> SExpr {
    SExpr::list(
        (0..10)
            .map(|d| SExpr::int(i64::from(d == v)))
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use small_sexpr::print;

    #[test]
    fn decoder_outputs_are_one_hot() {
        let r = run(1);
        assert_eq!(r.outputs.len(), 10);
        for (i, out) in r.outputs.iter().enumerate() {
            let want = expected_output(i as u32);
            assert_eq!(
                print(out, &r.interner),
                print(&want, &r.interner),
                "digit {i}"
            );
        }
    }

    #[test]
    fn trace_has_slang_character() {
        let r = run(1);
        let stats = small_trace::TraceStats::of(&r.trace);
        assert!(stats.primitives > 1000, "got {}", stats.primitives);
        // Figure 3.1: SLANG has the highest cons fraction of the suite
        // (the wire environment is extended functionally). Absolute
        // levels are lower than the thesis's because our interpreted
        // `assoc` inflates access counts; the cross-workload ordering is
        // asserted in tests/figure31.rs.
        let cons_pct = stats.prim_percent(small_trace::Prim::Cons);
        assert!(cons_pct > 1.0, "cons% = {cons_pct}");
        assert!(stats.max_depth >= 5);
    }

    #[test]
    fn scale_grows_trace() {
        let a = run(1).trace.primitive_count();
        let b = run(2).trace.primitive_count();
        assert!(b > a);
    }
}
