#![warn(missing_docs)]
//! Benchmark Lisp workloads — our analogues of the thesis's five traced
//! programs (§3.3.1): SLANG (circuit simulator), PLAGEN (PLA generator),
//! LYRA (VLSI design-rule checker), EDITOR (list-structure editor), and
//! PEARL (a-list database). Each is a genuine Lisp program, written in
//! the §4.3.4 simple Lisp and run on the instrumented interpreter; the
//! list-primitive traffic these programs generate is what all Chapter 3
//! and Chapter 5 experiments consume.
//!
//! The original benchmarks and their 1985 inputs are unavailable; these
//! programs match them in *domain* and in the characteristics the thesis
//! reports (primitive mix per Figure 3.1, list complexity per Table 3.1,
//! trace scale per Table 5.1 — see DESIGN.md "Substitutions"). The
//! [`synthetic`] module additionally generates traces pinned exactly to
//! the Table 5.1 scale parameters for the biggest runs.

pub mod editor;
pub mod lyra;
pub mod pearl;
pub mod plagen;
pub mod runner;
pub mod slang;
pub mod synthetic;

pub use runner::{run_workload, WorkloadRun};

use small_trace::Trace;

/// The five standard workloads at a given scale factor (1 = default,
/// larger = longer traces).
pub fn standard_suite(scale: u32) -> Vec<Trace> {
    vec![
        slang::run(scale).trace,
        plagen::run(scale).trace,
        lyra::run(scale).trace,
        editor::run(scale).trace,
        pearl::run(scale).trace,
    ]
}

/// The four workloads the Chapter 5 simulations use (Table 5.1 omits
/// PEARL).
pub fn chapter5_suite(scale: u32) -> Vec<Trace> {
    vec![
        lyra::run(scale).trace,
        plagen::run(scale).trace,
        slang::run(scale).trace,
        editor::run(scale).trace,
    ]
}
