//! Synthetic trace generation calibrated to the thesis's published
//! per-trace statistics.
//!
//! The organic workloads in this crate regenerate the *behavioural*
//! profile of the suite; the synthetic generator additionally pins the
//! exact *scale* parameters of Table 5.1 (trace length, function calls,
//! maximum call depth) and the Figure 3.1 primitive mix — useful for the
//! Chapter 5 simulations, which consume traces only through the
//! preprocessed form of §5.2.1 (primitive kinds, chaining flags,
//! function-call structure, and n/p size distributions).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use small_trace::event::{Event, ListRef, Prim, Trace, UidInfo};

/// Parameters of a synthetic trace.
#[derive(Debug, Clone)]
pub struct SyntheticParams {
    /// Trace name.
    pub name: String,
    /// Target primitive-event count (Table 5.1 "Primitives").
    pub primitives: usize,
    /// Target function-call count (Table 5.1 "Functions").
    pub functions: usize,
    /// Maximum call depth (Table 5.1 "Max Depth").
    pub max_depth: usize,
    /// Weights for car/cdr/cons/rplaca/rplacd/read (Figure 3.1 mix).
    pub prim_mix: [f64; 6],
    /// Probability an access argument is chained to the previous result
    /// (Table 3.2 levels).
    pub chain_prob: f64,
    /// Mean `n` of newly created lists (Table 3.1).
    pub mean_n: f64,
    /// Mean `p` of newly created lists (Table 3.1).
    pub mean_p: f64,
    /// RNG seed.
    pub seed: u64,
}

/// Presets matching Table 5.1 / Table 3.1 / Figure 3.1 / Table 3.2.
pub fn table_5_1(name: &str) -> SyntheticParams {
    let (primitives, functions, max_depth, mix, chain, n, p) = match name {
        "lyra" => (
            160_933,
            11_907,
            27,
            [0.42, 0.38, 0.12, 0.01, 0.01, 0.06],
            0.75,
            9.7,
            1.55,
        ),
        "plagen" => (
            34_628,
            8_173,
            15,
            [0.40, 0.35, 0.17, 0.01, 0.01, 0.06],
            0.34,
            12.4,
            2.9,
        ),
        "slang" => (
            2_304,
            620,
            14,
            [0.33, 0.30, 0.27, 0.02, 0.02, 0.06],
            0.40,
            10.04,
            1.99,
        ),
        "editor" => (
            1_437,
            342,
            29,
            [0.42, 0.36, 0.12, 0.02, 0.02, 0.06],
            0.43,
            74.74,
            20.98,
        ),
        "pearl" => (
            1_572,
            390,
            16,
            [0.30, 0.28, 0.20, 0.08, 0.08, 0.06],
            0.01,
            13.98,
            2.79,
        ),
        other => panic!("no Table 5.1 preset for {other}"),
    };
    SyntheticParams {
        name: name.to_owned(),
        primitives,
        functions,
        max_depth,
        prim_mix: mix,
        chain_prob: chain,
        mean_n: n,
        mean_p: p,
        seed: 0x5ea1,
    }
}

/// Generate a synthetic trace.
pub fn generate(params: &SyntheticParams) -> Trace {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut trace = Trace {
        name: params.name.clone(),
        ..Default::default()
    };
    // A small set of synthetic "functions".
    let fn_pool = 24.min(params.functions.max(1));
    for k in 0..fn_pool {
        trace.fn_names.push(format!("synth-fn-{k}"));
    }

    let new_uid = |trace: &mut Trace, rng: &mut StdRng, atom: bool| -> u32 {
        let uid = trace.uids.len() as u32;
        let n = if atom {
            1
        } else {
            1 + sample_geometric(rng, params.mean_n)
        };
        let p = if atom {
            0
        } else {
            sample_geometric(rng, params.mean_p + 1.0).saturating_sub(1)
        };
        trace.uids.push(UidInfo { n, p, atom });
        uid
    };

    // Pool of recently-live list uids to draw operands from.
    let mut pool: Vec<u32> = Vec::new();
    for _ in 0..8 {
        let uid = new_uid(&mut trace, &mut rng, false);
        pool.push(uid);
    }

    let total_mix: f64 = params.prim_mix.iter().sum();
    let prims_per_fn = params.primitives as f64 / params.functions.max(1) as f64;
    // Probability an event slot is a call boundary, tuned so the ratio
    // of primitives to calls matches the preset.
    let call_prob = 1.0 / (prims_per_fn + 1.0);

    let mut depth = 0usize;
    let mut exact_counter = 0u64;
    let mut prev_result: Option<u32> = None;
    let mut prims_emitted = 0usize;

    while prims_emitted < params.primitives {
        if rng.gen_bool(call_prob) {
            // Call-structure event: biased random walk over depth with a
            // drift toward mid-depths; rare deep-recursion spikes climb
            // all the way to max_depth (Table 5.1's "Max Depth").
            if rng.gen_ratio(1, 200) {
                while depth < params.max_depth {
                    depth += 1;
                    trace.events.push(Event::FnEnter {
                        name: rng.gen_range(0..fn_pool) as u32,
                        nargs: rng.gen_range(0..4),
                    });
                }
                continue;
            }
            let target = params.max_depth / 2;
            if depth == 0 || (depth < target && rng.gen_bool(0.6)) {
                depth += 1;
                trace.events.push(Event::FnEnter {
                    name: rng.gen_range(0..fn_pool) as u32,
                    nargs: rng.gen_range(0..4),
                });
            } else {
                depth -= 1;
                trace.events.push(Event::FnExit);
            }
            continue;
        }
        // Primitive event.
        let mut pick = rng.gen_range(0.0..total_mix);
        let mut prim = Prim::Car;
        for (k, w) in params.prim_mix.iter().enumerate() {
            if pick < *w {
                prim = Prim::ALL[k];
                break;
            }
            pick -= *w;
        }
        let arg_uid = |rng: &mut StdRng, pool: &Vec<u32>| -> (u32, bool) {
            if let Some(prev) = prev_result {
                if rng.gen_bool(params.chain_prob) {
                    return (prev, true);
                }
            }
            (pool[rng.gen_range(0..pool.len())], false)
        };
        let mk_ref = |uid: u32, chained: bool, exact: &mut u64| -> ListRef {
            *exact += 1;
            ListRef {
                uid,
                exact: Some(uid as u64),
                chained,
            }
        };
        let event = match prim {
            Prim::Car | Prim::Cdr => {
                let (a, chained) = arg_uid(&mut rng, &pool);
                // Result: often an existing list (walking structure),
                // sometimes an atom leaf.
                let result = if rng.gen_bool(0.25) {
                    let uid = new_uid(&mut trace, &mut rng, true);
                    ListRef {
                        uid,
                        exact: None,
                        chained: false,
                    }
                } else {
                    let uid = if rng.gen_bool(0.5) && !pool.is_empty() {
                        pool[rng.gen_range(0..pool.len())]
                    } else {
                        let u = new_uid(&mut trace, &mut rng, false);
                        pool.push(u);
                        u
                    };
                    mk_ref(uid, false, &mut exact_counter)
                };
                prev_result = result.is_list().then_some(result.uid);
                Event::Prim {
                    prim,
                    args: vec![mk_ref(a, chained, &mut exact_counter)],
                    result,
                }
            }
            Prim::Cons | Prim::Rplaca | Prim::Rplacd => {
                let (a, ca) = arg_uid(&mut rng, &pool);
                let (b, _) = arg_uid(&mut rng, &pool);
                let result_uid = if prim == Prim::Cons {
                    let u = new_uid(&mut trace, &mut rng, false);
                    pool.push(u);
                    u
                } else {
                    a
                };
                let result = mk_ref(result_uid, false, &mut exact_counter);
                prev_result = Some(result.uid);
                Event::Prim {
                    prim,
                    args: vec![
                        mk_ref(a, ca, &mut exact_counter),
                        mk_ref(b, false, &mut exact_counter),
                    ],
                    result,
                }
            }
            Prim::Read => {
                let u = new_uid(&mut trace, &mut rng, false);
                pool.push(u);
                let result = mk_ref(u, false, &mut exact_counter);
                prev_result = Some(result.uid);
                Event::Prim {
                    prim,
                    args: vec![],
                    result,
                }
            }
        };
        trace.events.push(event);
        prims_emitted += 1;
        // Keep the operand pool bounded, biased to recent lists.
        if pool.len() > 64 {
            pool.drain(0..32);
        }
    }
    // Unwind the call stack.
    while depth > 0 {
        trace.events.push(Event::FnExit);
        depth -= 1;
    }
    trace
}

/// Sample a geometric-ish positive count with the given mean.
fn sample_geometric(rng: &mut StdRng, mean: f64) -> u32 {
    if mean <= 1.0 {
        return 1;
    }
    let p = 1.0 / mean;
    let mut k = 1u32;
    while k < 10_000 && !rng.gen_bool(p) {
        k += 1;
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;
    use small_trace::TraceStats;

    #[test]
    fn presets_hit_table_5_1_scale() {
        for name in ["lyra", "plagen", "slang", "editor"] {
            let params = table_5_1(name);
            let t = generate(&params);
            let s = TraceStats::of(&t);
            assert_eq!(s.primitives, params.primitives, "{name}");
            // Function calls land near the preset (the generator trades
            // exactness for realistic interleaving).
            let ratio = s.functions as f64 / params.functions as f64;
            assert!((0.5..2.0).contains(&ratio), "{name}: fn ratio {ratio}");
            assert_eq!(s.max_depth, params.max_depth, "{name}");
        }
    }

    #[test]
    fn primitive_mix_tracks_weights() {
        let params = table_5_1("lyra");
        let t = generate(&params);
        let s = TraceStats::of(&t);
        let car = s.prim_percent(small_trace::Prim::Car);
        assert!((32.0..52.0).contains(&car), "car% = {car}");
    }

    #[test]
    fn chaining_rate_tracks_parameter() {
        let params = table_5_1("lyra"); // chain_prob 0.75
        let t = generate(&params);
        let (mut chained, mut total) = (0usize, 0usize);
        for (p, args, _) in t.prims() {
            if matches!(p, Prim::Car | Prim::Cdr) {
                total += 1;
                chained += usize::from(args[0].chained);
            }
        }
        let rate = chained as f64 / total as f64;
        assert!((0.55..0.9).contains(&rate), "chain rate {rate}");
    }

    #[test]
    fn mean_np_tracks_parameters() {
        let params = table_5_1("editor");
        let t = generate(&params);
        let lists: Vec<_> = t.uids.iter().filter(|u| !u.atom).collect();
        let mean_n: f64 = lists.iter().map(|u| u.n as f64).sum::<f64>() / lists.len() as f64;
        assert!((30.0..150.0).contains(&mean_n), "mean n = {mean_n}");
    }

    #[test]
    fn deterministic_per_seed() {
        let params = table_5_1("slang");
        assert_eq!(generate(&params), generate(&params));
        let mut other = params.clone();
        other.seed += 1;
        assert_ne!(generate(&params), generate(&other));
    }
}
