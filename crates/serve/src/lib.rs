//! Multi-session serving layer for the SMALL machine.
//!
//! The paper's EP/LP split is already a client/server protocol — the
//! EP issues `cons`/`car`/`cdr` requests against an LP that owns all
//! list structure. This crate lifts that shape one level up: many
//! complete SMALL machines (EP + LP + metrics sink) behind one
//! dependency-free threaded TCP server speaking a length-framed
//! s-expression protocol.
//!
//! * [`protocol`] — wire framing and the typed error-reply vocabulary
//!   (every `VmError`/`LpError`/`PersistError` crosses the wire as a
//!   symbol-coded reply; nothing panics across the boundary).
//! * [`session`] — one machine per session; compile-and-run requests,
//!   `setq` globals persisting across requests, suspend/resume through
//!   `small-persist` checkpoints with a stats-neutral guarantee.
//! * [`manager`] — checkout-based session ownership: per-session
//!   request serialization, cross-session concurrency, LRU eviction of
//!   idle sessions to bytes, resume-on-touch, `/stats` aggregation.
//! * [`pool`] / [`server`] — bounded worker pool (poison-recovering,
//!   panic-containing) and the accept/dispatch/drain front end.
//! * [`gen`] / [`soak`] — seeded load generation and the
//!   fleet-vs-serial-twin soak harness with a byte-deterministic
//!   report.

#![warn(missing_docs)]

pub mod gen;
pub mod manager;
pub mod pool;
pub mod protocol;
pub mod server;
pub mod session;
pub mod soak;

pub use manager::SessionManager;
pub use server::{start, Client, ServerHandle};
pub use session::{ServeConfig, Session};
pub use soak::{run_soak, SoakOutcome, SoakParams};
