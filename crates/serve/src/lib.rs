//! Multi-session serving layer for the SMALL machine.
//!
//! The paper's EP/LP split is already a client/server protocol — the
//! EP issues `cons`/`car`/`cdr` requests against an LP that owns all
//! list structure. This crate lifts that shape one level up: many
//! complete SMALL machines (EP + LP + metrics sink) behind a sharded,
//! dependency-free nonblocking TCP server speaking a length-framed
//! s-expression protocol, with WAL-shipping replication onto a warm
//! standby.
//!
//! * [`protocol`] — the single home of the wire format: framing, the
//!   documented grammar, the versioned handshake, and the public typed
//!   [`protocol::Request`]/[`protocol::Reply`] API (round-trip
//!   proptested). No raw framing exists outside this module and the
//!   I/O edges that call it.
//! * [`client`] — the typed blocking client every in-tree consumer
//!   uses (soak fleet, churn workers, standby puller, tests).
//! * [`session`] — one machine per session; compile-and-run requests,
//!   `setq` globals persisting across requests, suspend/resume through
//!   `small-persist` checkpoints with a stats-neutral guarantee.
//! * [`manager`] — the per-shard [`SessionStore`]: single-owner, no
//!   locks; LRU suspend-to-checkpoint; also the serial twin the
//!   harnesses compare wire transcripts against.
//! * [`reactor`] / [`shard`] / [`server`] — nonblocking connections
//!   with ordered reply outboxes; N shard event loops with sessions
//!   pinned by `id % shards` and bounded run queues that shed with
//!   typed `(err busy …)` replies; the acceptor/lifecycle front end
//!   with a two-barrier drain that can never tear a suspend blob.
//! * [`repl`] — WAL-shipping replication: group-committed journal
//!   frames pulled by a warm [`repl::Standby`] and replayed under
//!   digest verification, so failover promotes byte-identical state.
//! * [`telemetry`] — the request-path observability layer: per-shard
//!   [`telemetry::ShardMetrics`] latency histograms on two clocks
//!   (deterministic virtual cycles, opt-in wall time), volatile
//!   queue/shed/WAL-lag observables, a Prometheus text dump, and a
//!   wall-clock [`telemetry::TraceLog`] exporting Chrome traces.
//! * [`gen`] / [`soak`] / [`failover`] — seeded load generation, the
//!   fleet-vs-serial-twin soak (plus multi-thousand-session churn),
//!   and the kill-primary failover campaign (lease-driven promotion),
//!   all with byte-deterministic reports.
//! * [`netchaos`] — deterministic network-fault chaos: a seeded fault
//!   plan (torn frames, pinned-offset connection resets, duplicated /
//!   delayed / corrupted replica pulls) injected under a retrying
//!   client, proving exactly-once retry semantics and lease-based
//!   automatic failover against the serial twin.
//! * [`clusterchaos`] — the chain campaign: primary → S1 → S2 relayed
//!   WAL shipping under the same seeded faults, the primary killed
//!   twice in sequence, with a cluster-aware failing-over client whose
//!   every reply must match the serial twin across both promotions.

#![warn(missing_docs)]

pub mod client;
pub mod clusterchaos;
pub mod failover;
pub mod gen;
pub mod manager;
pub mod netchaos;
pub mod protocol;
pub mod reactor;
pub mod repl;
pub mod server;
pub mod session;
pub mod shard;
pub mod soak;
pub mod telemetry;

pub use client::{Client, RetryClient, RetryPolicy, Transport};
pub use clusterchaos::{run_clusterchaos, ClusterChaosOutcome, ClusterChaosParams};
pub use failover::{run_failover, FailoverOutcome, FailoverParams};
pub use manager::SessionStore;
pub use netchaos::{run_netchaos, FaultPlan, FaultyStream, NetChaosOutcome, NetChaosParams};
pub use protocol::{Reply, Request, Role, PROTO_VERSION};
pub use repl::{Lease, LeaseParams, RelayNode, RelayParts, Standby, Wal};
pub use server::{start, start_promoted, DrainOutcome, ServerHandle, ServerParams};
pub use session::{ServeConfig, Session};
pub use soak::{run_soak, SoakOutcome, SoakParams};
pub use telemetry::{prometheus_text, ReqKind, ServeSink, ShardMetrics, TraceLog, VolatileMetrics};
