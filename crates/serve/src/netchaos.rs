//! Deterministic network-fault chaos for the serving stack.
//!
//! The heap-fault chaos harness (`small-chaos`) proved the *machine*
//! survives seeded allocator failure; this module points the same
//! discipline at the *wire*. A seeded [`FaultPlan`] is injected at the
//! transport boundary — a [`FaultyStream`] slid underneath the typed
//! client — and at the replication pull loop:
//!
//! * **partial reads/writes** — every I/O call is clamped to a seeded
//!   chunk size (down to a single byte), so frames tear and coalesce
//!   at arbitrary boundaries on both sides;
//! * **connection resets at pinned byte offsets** — when the shared
//!   cumulative byte counter reaches a planned offset the socket is
//!   shut down mid-frame and the caller sees `ConnectionReset`;
//! * **duplicated replica pulls** — after catching up, the standby is
//!   fed an already-applied batch again and must skip it;
//! * **delayed replica pulls** — scheduled rounds skip the catch-up
//!   entirely, growing (and then draining) real applied lag;
//! * **corrupted WAL frames** — a pulled batch has a byte flipped and
//!   must fail closed ([`ReplError::BadFrame`]) without perturbing the
//!   standby, which then applies the clean batch.
//!
//! The system under test survives via the protocol-v3 machinery: the
//! [`RetryClient`] re-sends dropped requests verbatim on fresh
//! connections, and because every mutating request in the script
//! carries an idempotency token or sequence number, the server's dedup
//! window turns re-sends into cached replies — exactly-once effects
//! over at-least-once delivery. After the pinned kill point the
//! primary dies for real, the standby's [`Lease`] expires after
//! consecutive missed `(ping)` probes, and the standby promotes
//! itself.
//!
//! The oracle is the same as the failover campaign's: an uninterrupted
//! serial twin. Every reply the chaos-ridden client collects — one per
//! scripted operation, however many attempts it took — must be
//! byte-identical to the twin's, the promoted store must agree with
//! the twin on aggregate counts, and a post-promotion re-send of the
//! last pre-kill mutating request must come back from the replicated
//! dedup window without executing. The report
//! (`results/netchaos_report.json`) contains only schedule-independent
//! data and is byte-identical across runs; CI runs the campaign twice
//! and `cmp`s the two reports.

use crate::client::{self, Client, RetryClient, RetryPolicy, Transport};
use crate::gen::programs_for;
use crate::manager::SessionStore;
use crate::protocol::{Request, Role};
use crate::repl::{Lease, LeaseParams, ReplError, Standby};
use crate::server::{self, ServerParams};
use crate::session::ServeConfig;
use small_persist::{digest_bytes, DIGEST_SEED};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::net::{Shutdown, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Heartbeat cadence during the live phase (every N script ops), so
/// the lease sees real beats before the kill and the probe count is a
/// deterministic function of the kill point. Shared with the
/// cluster-chaos campaign so both harnesses probe identically.
pub(crate) const HEARTBEAT_EVERY: usize = 8;

/// Tokens for the scripted opens start here (any value works; being
/// far from the session-id range keeps transcripts easy to read).
pub(crate) const TOKEN_BASE: u64 = 1000;

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------
// The fault plan
// ---------------------------------------------------------------------

/// The seeded fault schedule for one run. Everything here is computed
/// up front from `(seed, kill_at)` — nothing is drawn during I/O — so
/// the faults a run experiences are a pure function of its key.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Cumulative client-connection byte offsets (reads + writes
    /// combined, across reconnects) at which the connection is reset.
    pub reset_offsets: Vec<u64>,
    /// Script indices after which the standby re-applies an
    /// already-applied batch (must be skipped as a duplicate).
    pub dup_pulls: Vec<usize>,
    /// Script indices whose catch-up is skipped (applied lag grows).
    /// Never includes the final pre-kill index, so the standby is
    /// always caught up when the primary dies.
    pub delayed_pulls: Vec<usize>,
    /// Script indices where a corrupted copy of the next batch is
    /// probed (must fail closed) before the clean batch applies.
    pub corrupt_pulls: Vec<usize>,
}

impl FaultPlan {
    /// Build the plan for one `(seed, kill_at)` run.
    pub fn new(seed: u64, kill_at: usize) -> FaultPlan {
        let mut rng = seed ^ 0x6E65_7463_6861_6F73; // "netchaos"
        let mut reset_offsets = Vec::new();
        // First reset lands inside the early frames; spacing leaves a
        // full retry cycle (redial handshake + re-send + reply) of
        // headroom so a bounded attempt budget always wins through.
        let mut at = 200 + splitmix64(&mut rng) % 256;
        for _ in 0..6 {
            reset_offsets.push(at);
            at += 384 + splitmix64(&mut rng) % 512;
        }
        let (mut dup_pulls, mut delayed_pulls, mut corrupt_pulls) =
            (Vec::new(), Vec::new(), Vec::new());
        for i in 1..kill_at {
            match splitmix64(&mut rng) % 8 {
                0 => dup_pulls.push(i),
                1 if i + 1 < kill_at => delayed_pulls.push(i),
                2 => corrupt_pulls.push(i),
                _ => {}
            }
        }
        FaultPlan {
            reset_offsets,
            dup_pulls,
            delayed_pulls,
            corrupt_pulls,
        }
    }

    /// Distinct fault points this plan schedules (resets are counted
    /// as planned here; the report also records how many fired).
    pub fn points(&self) -> usize {
        self.reset_offsets.len()
            + self.dup_pulls.len()
            + self.delayed_pulls.len()
            + self.corrupt_pulls.len()
    }
}

// ---------------------------------------------------------------------
// The faulty transport
// ---------------------------------------------------------------------

/// Shared fault-injection state: one per run, threaded through every
/// [`FaultyStream`] the run's client dials, so byte counters and the
/// reset queue survive reconnects.
#[derive(Debug)]
pub struct FaultState {
    /// Chunk-size stream. Private to the transport: its consumption
    /// rate depends on call timing, which is why reset offsets are
    /// *not* drawn from it during I/O.
    rng: u64,
    /// Cumulative bytes moved (reads + writes) across every connection
    /// sharing this state.
    transferred: u64,
    /// Pending reset offsets against `transferred`, ascending.
    resets: VecDeque<u64>,
    /// Offsets consumed so far.
    resets_fired: u64,
}

impl FaultState {
    /// Fresh shared state with a seeded chunker and a reset queue.
    pub fn shared(seed: u64, reset_offsets: &[u64]) -> Arc<Mutex<FaultState>> {
        Arc::new(Mutex::new(FaultState {
            rng: seed ^ 0x5DEE_CE66_D1CE_4E5B,
            transferred: 0,
            resets: reset_offsets.iter().copied().collect(),
            resets_fired: 0,
        }))
    }

    /// Resets injected so far.
    pub fn resets_fired(&self) -> u64 {
        self.resets_fired
    }

    /// Total bytes moved through faulty streams so far.
    pub fn transferred(&self) -> u64 {
        self.transferred
    }

    /// Budget for one I/O call of at most `len` bytes: `None` means
    /// the call must inject a reset *now* (the counter sits exactly on
    /// a planned offset); otherwise the allowed size, clamped to the
    /// seeded chunk and to the distance to the next offset so the
    /// counter can never jump past one.
    fn pre_io(&mut self, len: usize) -> Option<usize> {
        if let Some(&next) = self.resets.front() {
            if self.transferred >= next {
                self.resets.pop_front();
                self.resets_fired += 1;
                return None;
            }
        }
        let chunk = 1 + (splitmix64(&mut self.rng) % 64) as usize;
        let room = self
            .resets
            .front()
            .map(|&next| (next - self.transferred) as usize)
            .unwrap_or(usize::MAX);
        Some(len.min(chunk).min(room))
    }
}

/// A [`TcpStream`] that tears frames and dies on schedule: every read
/// and write is clamped to a seeded chunk size, and when the shared
/// cumulative byte counter reaches a planned offset the socket is shut
/// down and the call fails with `ConnectionReset`. Implements
/// [`Transport`], so a [`Client`] runs over it unchanged.
#[derive(Debug)]
pub struct FaultyStream {
    inner: TcpStream,
    state: Arc<Mutex<FaultState>>,
}

impl FaultyStream {
    /// Wrap a connected stream in a run's shared fault state.
    pub fn new(inner: TcpStream, state: Arc<Mutex<FaultState>>) -> FaultyStream {
        FaultyStream { inner, state }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FaultState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn inject_reset(&self) -> io::Error {
        let _ = self.inner.shutdown(Shutdown::Both);
        io::Error::new(io::ErrorKind::ConnectionReset, "injected reset")
    }
}

impl Read for FaultyStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let cap = match self.lock().pre_io(buf.len()) {
            Some(cap) => cap,
            None => return Err(self.inject_reset()),
        };
        let n = self.inner.read(&mut buf[..cap])?;
        self.lock().transferred += n as u64;
        Ok(n)
    }
}

impl Write for FaultyStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if buf.is_empty() {
            return Ok(0);
        }
        let cap = match self.lock().pre_io(buf.len()) {
            Some(cap) => cap,
            None => return Err(self.inject_reset()),
        };
        let n = self.inner.write(&buf[..cap])?;
        self.lock().transferred += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl Transport for FaultyStream {
    fn try_split(&self) -> io::Result<FaultyStream> {
        Ok(FaultyStream {
            inner: self.inner.try_clone()?,
            state: Arc::clone(&self.state),
        })
    }
    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.inner.set_read_timeout(timeout)
    }
    fn set_write_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.inner.set_write_timeout(timeout)
    }
}

// ---------------------------------------------------------------------
// The campaign
// ---------------------------------------------------------------------

/// Campaign shape.
#[derive(Debug, Clone)]
pub struct NetChaosParams {
    /// Seeds to run; every seed runs once per kill point.
    pub seeds: Vec<u64>,
    /// Sessions opened (with idempotency tokens) before the rounds.
    pub sessions: usize,
    /// Generated eval requests per session.
    pub requests: usize,
    /// Global operation indices at which the primary is killed.
    pub kill_points: Vec<usize>,
    /// Primary (and twin-input) machine configuration.
    pub cfg: ServeConfig,
    /// Standby machine configuration (different residency cap, as in
    /// the failover campaign).
    pub standby_cfg: ServeConfig,
    /// Primary server shape; `replicate` is forced on.
    pub server: ServerParams,
}

impl Default for NetChaosParams {
    fn default() -> Self {
        let cfg = ServeConfig {
            heap_cells: 1 << 13,
            table_size: 384,
            max_resident: 2,
            ..ServeConfig::default()
        };
        NetChaosParams {
            seeds: vec![11, 23, 47],
            sessions: 4,
            requests: 8,
            // Script length is sessions + sessions * requests = 36.
            kill_points: vec![5, 31],
            cfg,
            standby_cfg: ServeConfig {
                max_resident: 1,
                ..cfg
            },
            server: ServerParams {
                shards: 2,
                queue_cap: 64,
                max_conns_per_shard: 16,
                replicate: true,
                ..ServerParams::default()
            },
        }
    }
}

/// What a campaign produced.
pub struct NetChaosOutcome {
    /// The deterministic JSON report body.
    pub report: String,
    /// Runs with any divergence or an unsurvived fault.
    pub mismatches: usize,
    /// Distinct fault points injected across the whole campaign.
    pub fault_points: usize,
    /// Summed [`RetryClient::retries`] across runs. Attempt counts are
    /// timing-dependent, so these three live in the stderr summary
    /// only — never in the byte-compared report.
    pub client_retries: u64,
    /// Summed [`RetryClient::reconnects`] across runs.
    pub client_reconnects: u64,
    /// Summed [`RetryClient::redials`] across runs.
    pub client_redials: u64,
}

/// The fully idempotent script: tokenized opens, then the generated
/// programs dealt round-robin as `(seval …)` with dense per-session
/// sequence numbers. Every mutating request can be re-sent verbatim.
/// Shared with the cluster-chaos campaign (same workload, deeper
/// topology).
pub(crate) fn script(seed: u64, sessions: usize, requests: usize) -> Vec<Request> {
    let mut ops: Vec<Request> = (0..sessions)
        .map(|s| Request::Open {
            token: Some(TOKEN_BASE + s as u64),
        })
        .collect();
    let progs: Vec<Vec<String>> = (0..sessions)
        .map(|s| programs_for(seed, s as u64, requests))
        .collect();
    let mut seqs = vec![0u64; sessions];
    let rounds = progs.first().map_or(0, Vec::len);
    for round in 0..rounds {
        for (s, prog) in progs.iter().enumerate() {
            ops.push(Request::Eval {
                id: s as u64,
                seq: Some(seqs[s]),
                src: prog[round].clone(),
            });
            seqs[s] += 1;
        }
    }
    ops
}

/// Post-promotion epilogue (applied directly to the promoted store and
/// the twin — no wire, no retries, so no sequence numbers needed):
/// a fresh session proving id continuity, then ledger/digest/close for
/// every original session.
fn epilogue(sessions: usize) -> Vec<Request> {
    let fresh = sessions as u64;
    let mut ops = vec![
        Request::Open { token: None },
        Request::Eval {
            id: fresh,
            seq: None,
            src: "(setq acc (cons 7 nil))".to_string(),
        },
        Request::Close {
            id: fresh,
            seq: None,
        },
    ];
    for s in 0..sessions as u64 {
        ops.push(Request::Ledger { id: s });
        ops.push(Request::Digest { id: s });
        ops.push(Request::Close { id: s, seq: None });
    }
    ops
}

pub(crate) fn transcript_digest(replies: &[String]) -> u64 {
    let mut h = DIGEST_SEED;
    for r in replies {
        h = digest_bytes(h, r.as_bytes());
    }
    h
}

pub(crate) fn repl_io(e: ReplError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}

struct RunResult {
    json: String,
    mismatched: bool,
    fault_points: usize,
    client_retries: u64,
    client_reconnects: u64,
    client_redials: u64,
}

/// One `(seed, kill_point)` run.
fn run_one(p: &NetChaosParams, seed: u64, kill_point: usize) -> io::Result<RunResult> {
    let mut params = p.server;
    params.replicate = true;
    let handle = server::start("127.0.0.1:0", p.cfg, params)?;
    let addr = handle.addr();

    let ops = script(seed, p.sessions, p.requests);
    let kill_at = kill_point.min(ops.len().saturating_sub(1));
    let plan = FaultPlan::new(seed, kill_at);
    let state = FaultState::shared(seed, &plan.reset_offsets);

    // The chaos-ridden client: typed client over the faulty transport,
    // wrapped in deadline + seeded-backoff + reconnect-with-resume.
    let dial_state = Arc::clone(&state);
    let mut client = RetryClient::new(
        move || {
            let stream = TcpStream::connect(addr)?;
            stream.set_nodelay(true)?;
            Client::from_transport(
                FaultyStream::new(stream, Arc::clone(&dial_state)),
                Role::Client,
            )
        },
        RetryPolicy {
            attempts: 10,
            seed,
            ..RetryPolicy::default()
        },
    );
    // The replica puller rides a clean connection: its faults (dups,
    // delays, corruption) are injected at the batch level below, where
    // they can be asserted on precisely.
    let mut puller = Client::connect(addr, Role::Replica)?;
    let mut standby = Standby::new(p.standby_cfg);
    let mut twin = SessionStore::new(ServeConfig {
        max_resident: usize::MAX,
        ..p.cfg
    });
    let mut lease = Lease::new(LeaseParams::default());

    let mut transcript = Vec::new();
    let mut oracle = Vec::new();
    let (mut beats, mut dup_pulls, mut delayed_pulls, mut corrupt_probes) =
        (0u64, 0u64, 0u64, 0u64);
    let mut max_pull_lag = 0u64;
    let (mut dup_ok, mut corrupt_ok) = (true, true);

    // Phase 1: lockstep through the fault plan. One transcript entry
    // per scripted op, however many attempts the wire needed.
    for (i, op) in ops.iter().take(kill_at).enumerate() {
        transcript.push(client.request_text(&op.encode())?);
        oracle.push(twin.apply(op).encode());
        let target = handle
            .wal_next_lsn()
            .expect("replicating primary has a WAL");
        if plan.delayed_pulls.contains(&i) {
            delayed_pulls += 1;
            max_pull_lag = max_pull_lag.max(target.saturating_sub(standby.applied_lsn()));
        } else {
            if plan.corrupt_pulls.contains(&i) && standby.next_lsn() < target {
                let (_, bytes) = puller.pull(standby.next_lsn())?;
                if !bytes.is_empty() {
                    let mut bad = bytes.clone();
                    let last = bad.len() - 1;
                    bad[last] ^= 0xff;
                    // Fail closed: the corrupt batch must change nothing.
                    let before = standby.next_lsn();
                    corrupt_ok &= matches!(standby.apply(&bad), Err(ReplError::BadFrame { .. }));
                    corrupt_ok &= standby.next_lsn() == before;
                    standby.apply(&bytes).map_err(repl_io)?;
                    corrupt_probes += 1;
                }
            }
            puller.catch_up(&mut standby, target)?;
            if plan.dup_pulls.contains(&i) && standby.next_lsn() > 0 {
                // Re-pull a window the standby already applied: an
                // at-least-once shipping layer in miniature.
                let from = standby.next_lsn().saturating_sub(2);
                let (_, bytes) = puller.pull(from)?;
                dup_ok &= standby.apply(&bytes).map_err(repl_io)? == 0;
                dup_pulls += 1;
            }
        }
        if i % HEARTBEAT_EVERY == 0 {
            match client::ping(addr, lease.params().ping_timeout) {
                Some(lsn) => {
                    lease.beat(lsn);
                    beats += 1;
                }
                None => {
                    lease.miss();
                }
            }
        }
    }
    let resets_fired = {
        let st = state.lock().unwrap_or_else(|e| e.into_inner());
        st.resets_fired()
    };

    // Kill the primary for real.
    client.disconnect();
    let (client_retries, client_reconnects, client_redials) =
        (client.retries(), client.reconnects(), client.redials());
    drop(client);
    drop(puller);
    let replicated_lsn = standby.next_lsn();
    let corpse = handle.shutdown();
    let drain_ok = corpse.verify_suspended().is_ok();

    // The standby notices on its own: consecutive missed probes expire
    // the lease, and promotion is its decision. Bounded in case the
    // freed port is grabbed by a concurrent test's listener.
    for _ in 0..lease.params().miss_threshold * 10 {
        if lease.is_expired() {
            break;
        }
        match client::ping(addr, lease.params().ping_timeout) {
            Some(lsn) => lease.beat(lsn),
            None => {
                lease.miss();
            }
        }
    }
    let lease_ok = lease.is_expired() && lease.misses() == lease.params().miss_threshold;

    let mut promoted = standby.promote();

    // Exactly-once across failover: re-send the last pre-kill mutating
    // request. The promoted standby must answer from the *replicated*
    // dedup state — same reply bytes, nothing executed.
    let mut retry_cached = true;
    let last_mutating = ops.iter().enumerate().take(kill_at).rev().find(|(_, op)| {
        matches!(
            op,
            Request::Eval { seq: Some(_), .. } | Request::Open { token: Some(_) }
        )
    });
    if let Some((idx, op)) = last_mutating {
        let (reply, applied) = match op {
            Request::Eval {
                id,
                seq: Some(s),
                src,
            } => {
                let ledger_before = promoted.ledger(*id);
                let out = promoted.eval_seq(*id, *s, src);
                retry_cached &= promoted.ledger(*id) == ledger_before;
                out
            }
            Request::Open { token: Some(t) } => promoted.open_with_token(u64::MAX, *t),
            _ => unreachable!("filtered above"),
        };
        retry_cached &= !applied && reply.encode() == transcript[idx];
    }

    // Phase 2: finish the script and the epilogue on the survivor.
    for op in ops.iter().skip(kill_at) {
        transcript.push(promoted.apply(op).encode());
        oracle.push(twin.apply(op).encode());
    }
    for op in epilogue(p.sessions) {
        transcript.push(promoted.apply(&op).encode());
        oracle.push(twin.apply(&op).encode());
    }

    let transcript_ok = transcript == oracle;
    let counts_ok = promoted.aggregate_counts() == twin.aggregate_counts();
    let mismatched = !(transcript_ok
        && counts_ok
        && drain_ok
        && lease_ok
        && retry_cached
        && dup_ok
        && corrupt_ok);
    let fault_points = resets_fired as usize
        + dup_pulls as usize
        + delayed_pulls as usize
        + corrupt_probes as usize;
    Ok(RunResult {
        json: format!(
            "{{\"seed\":{seed},\"kill_at\":{kill_at},\"ops\":{},\
             \"resets_planned\":{},\"resets_fired\":{resets_fired},\
             \"dup_pulls\":{dup_pulls},\"delayed_pulls\":{delayed_pulls},\
             \"corrupt_probes\":{corrupt_probes},\"max_pull_lag\":{max_pull_lag},\
             \"replicated_lsn\":{replicated_lsn},\
             \"lease_beats\":{beats},\"lease_misses\":{},\"lease_expired\":{},\
             \"transcript_digest\":\"d{:016x}\",\
             \"transcript_match\":{transcript_ok},\"counts_match\":{counts_ok},\
             \"retry_cached\":{retry_cached},\"dup_idempotent\":{dup_ok},\
             \"corrupt_failed_closed\":{corrupt_ok},\"primary_drain_ok\":{drain_ok}}}",
            ops.len(),
            plan.reset_offsets.len(),
            lease.misses(),
            lease.is_expired(),
            transcript_digest(&oracle),
        ),
        mismatched,
        fault_points,
        client_retries,
        client_reconnects,
        client_redials,
    })
}

/// Run the whole campaign: every seed at every kill point.
pub fn run_netchaos(p: &NetChaosParams) -> io::Result<NetChaosOutcome> {
    let mut runs = Vec::new();
    let mut mismatches = 0usize;
    let mut fault_points = 0usize;
    let (mut client_retries, mut client_reconnects, mut client_redials) = (0u64, 0u64, 0u64);
    for &seed in &p.seeds {
        for &kill in &p.kill_points {
            let run = run_one(p, seed, kill)?;
            if run.mismatched {
                mismatches += 1;
            }
            fault_points += run.fault_points;
            client_retries += run.client_retries;
            client_reconnects += run.client_reconnects;
            client_redials += run.client_redials;
            runs.push(run.json);
        }
    }
    let report = format!(
        "{{\"schema\":\"netchaos_report_v1\",\"proto_version\":{},\
         \"sessions\":{},\"requests\":{},\
         \"kill_points\":[{}],\"seeds\":[{}],\
         \"fault_points\":{fault_points},\"all_match\":{},\"runs\":[{}]}}\n",
        crate::protocol::PROTO_VERSION,
        p.sessions,
        p.requests,
        p.kill_points
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join(","),
        p.seeds
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(","),
        mismatches == 0,
        runs.join(","),
    );
    Ok(NetChaosOutcome {
        report,
        mismatches,
        fault_points,
        client_retries,
        client_reconnects,
        client_redials,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn faulty_stream_resets_at_the_pinned_offset() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let peer = TcpStream::connect(addr).unwrap();
        let (sink, _) = listener.accept().unwrap();
        let state = FaultState::shared(7, &[100]);
        let mut faulty = FaultyStream::new(peer, Arc::clone(&state));

        // Chunking: a large write is always clamped below the chunk cap.
        let n = faulty.write(&[0u8; 500]).unwrap();
        assert!((1..=64).contains(&n), "chunked write returned {n}");

        // Writing through the boundary fails exactly at byte 100, with
        // the socket dead afterwards.
        let mut total = n as u64;
        let err = loop {
            match faulty.write(&[0u8; 500]) {
                Ok(n) => total += n as u64,
                Err(e) => break e,
            }
        };
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        assert_eq!(total, 100, "reset fired at the pinned offset");
        let st = state.lock().unwrap();
        assert_eq!((st.resets_fired(), st.transferred()), (1, 100));
        drop(sink);
    }

    #[test]
    fn fault_plans_are_pure_functions_of_their_key() {
        let a = FaultPlan::new(11, 31);
        let b = FaultPlan::new(11, 31);
        assert_eq!(a.reset_offsets, b.reset_offsets);
        assert_eq!(a.dup_pulls, b.dup_pulls);
        assert_eq!(a.delayed_pulls, b.delayed_pulls);
        assert_eq!(a.corrupt_pulls, b.corrupt_pulls);
        assert!(a.points() > 0);
        // Delays never land on the final pre-kill op.
        assert!(!a.delayed_pulls.contains(&30));
        let c = FaultPlan::new(23, 31);
        assert_ne!(a.reset_offsets, c.reset_offsets, "seeds must differ");
    }

    #[test]
    fn netchaos_campaign_is_clean_and_deterministic() {
        let p = NetChaosParams {
            seeds: vec![11],
            kill_points: vec![5, 31],
            ..NetChaosParams::default()
        };
        let a = run_netchaos(&p).expect("campaign runs");
        assert_eq!(a.mismatches, 0, "report: {}", a.report);
        assert!(a.fault_points > 0, "faults must actually fire");
        let b = run_netchaos(&p).expect("campaign reruns");
        assert_eq!(a.report, b.report, "report must be byte-deterministic");
    }
}
