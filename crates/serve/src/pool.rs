//! A bounded thread pool over `std::sync` primitives.
//!
//! The server is dependency-free, so the pool is a `Mutex<VecDeque>`
//! of boxed jobs plus a condvar — the same shape as the sweep engine's
//! work queue, with two hygiene properties the serving path needs:
//!
//! * **Poison recovery.** Every guard acquisition uses
//!   `unwrap_or_else(|e| e.into_inner())` (the idiom established in
//!   `Rooted::drop`): a panic while the queue lock is held must not
//!   wedge every other worker behind a `PoisonError`.
//! * **Panic containment.** Each job runs under `catch_unwind`; a
//!   panicking job is counted and dropped, the worker survives, and
//!   later jobs run normally.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    queue: Mutex<VecDeque<Job>>,
    ready: Condvar,
    shutting_down: AtomicBool,
    panics: AtomicU64,
}

impl Shared {
    fn lock(&self) -> MutexGuard<'_, VecDeque<Job>> {
        self.queue.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// A fixed-size worker pool executing boxed jobs in FIFO order.
pub struct ThreadPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl ThreadPool {
    /// Spawn `n` workers (at least one).
    pub fn new(n: usize) -> ThreadPool {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            shutting_down: AtomicBool::new(false),
            panics: AtomicU64::new(0),
        });
        let workers = (0..n.max(1))
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        ThreadPool { shared, workers }
    }

    /// Enqueue a job. Jobs submitted after [`ThreadPool::join`] began
    /// are silently dropped (the pool is draining).
    pub fn execute(&self, job: impl FnOnce() + Send + 'static) {
        if self.shared.shutting_down.load(Ordering::Acquire) {
            return;
        }
        self.shared.lock().push_back(Box::new(job));
        self.shared.ready.notify_one();
    }

    /// Number of jobs that ended in a panic (contained, not fatal).
    pub fn panicked_jobs(&self) -> u64 {
        self.shared.panics.load(Ordering::Relaxed)
    }

    /// Graceful drain: stop accepting work, let the workers finish the
    /// queue, and join them.
    pub fn join(mut self) {
        self.shared.shutting_down.store(true, Ordering::Release);
        self.shared.ready.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // A dropped (not joined) pool still signals shutdown so its
        // workers exit once the queue drains, instead of leaking
        // blocked threads.
        self.shared.shutting_down.store(true, Ordering::Release);
        self.shared.ready.notify_all();
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = shared.lock();
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                if shared.shutting_down.load(Ordering::Acquire) {
                    return;
                }
                q = shared.ready.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        if catch_unwind(AssertUnwindSafe(job)).is_err() {
            shared.panics.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runs_jobs_and_drains_on_join() {
        let pool = ThreadPool::new(4);
        let done = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let done = Arc::clone(&done);
            pool.execute(move || {
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.join();
        assert_eq!(done.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn panicking_job_does_not_wedge_the_pool() {
        let pool = ThreadPool::new(2);
        let done = Arc::new(AtomicUsize::new(0));
        for k in 0..20 {
            let done = Arc::clone(&done);
            pool.execute(move || {
                if k % 5 == 0 {
                    panic!("job {k} exploding on purpose");
                }
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.join();
        assert_eq!(done.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn panic_count_is_reported() {
        let pool = ThreadPool::new(1);
        pool.execute(|| panic!("boom"));
        pool.execute(|| {});
        // Drain deterministically before reading the counter.
        let shared = Arc::clone(&pool.shared);
        pool.join();
        assert_eq!(shared.panics.load(Ordering::Relaxed), 1);
    }
}
