//! Deterministic load generation for the soak harness.
//!
//! Each `(seed, client)` pair maps to a fixed request-program list via
//! a seeded `StdRng`; the server fleet and the serial twin replay the
//! exact same texts, so any reply divergence is machine divergence,
//! never workload noise. The mix exercises the serving layer's whole
//! surface: pure computation, session-global accumulation (`setq`
//! state spanning requests and surviving suspend/resume), §2 mutation
//! (`rplaca`/`rplacd`, including shared structure and a
//! build-then-broken cycle), and typed error paths — each client ends
//! by tearing its state down so a closed session leaves an empty LPT.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The pinned seed schedule: `--seeds N` on the soak bin takes the
/// first `N` of these, so CI invocations are stable across machines.
pub const PINNED_SEEDS: [u64; 8] = [11, 23, 47, 83, 131, 199, 283, 383];

/// The fixed request-program list for one client under one seed.
pub fn programs_for(seed: u64, client: u64, n: usize) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(
        seed.wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(client.wrapping_mul(0xd1b5_4a32_d192_ed03)),
    );
    let mut out = Vec::with_capacity(n + 3);
    out.push("(setq acc nil)".to_string());
    out.push(format!("(setq k {})", rng.gen_range(1i64..100)));
    for i in 0..n {
        let a = rng.gen_range(-50i64..50);
        let b = rng.gen_range(1i64..20);
        let req = match rng.gen_range(0u32..10) {
            0 | 1 => format!("(add {a} (times {b} k))"),
            2 | 3 => format!("(setq acc (cons {a} acc))"),
            // Mutation on a fresh cell hanging off session state.
            4 => format!("(prog (x) (setq x (cons {a} acc)) (rplaca x {b}) (return (car x)))"),
            // Shared structure: y's tail *is* x; mutations through x
            // must be visible through y.
            5 => format!(
                "(prog (x y) (setq x (cons {a} (cons {b} nil))) (setq y (cons 7 x)) \
                 (rplaca x 0) (rplacd (cdr x) nil) \
                 (return (cons (car (cdr y)) (cdr y))))"
            ),
            // Self-reference, observed and then broken before return.
            6 => format!(
                "(prog (x probe) (setq x (cons {a} (cons {b} nil))) \
                 (rplacd (cdr x) x) (setq probe (car (cdr (cdr x)))) \
                 (rplacd (cdr x) nil) (return (cons probe x)))"
            ),
            // Typed error paths: the reply is part of the transcript.
            7 => ["(car 5)", "(quotient k 0)", "(rplaca nil 1)", "nosuchvar"]
                [rng.gen_range(0usize..4)]
            .to_string(),
            8 => "(setq acc (cdr acc))".to_string(),
            // Walk the accumulator with a prog loop.
            _ => "(prog (p len) (setq p acc) (setq len 0) \
                  loop (cond ((null p) (return len))) \
                  (setq len (add len 1)) (setq p (cdr p)) (go loop))"
                .to_string(),
        };
        out.push(req);
        // Bound accumulator growth so small tables never truly overflow.
        if i % 16 == 15 {
            out.push("(setq acc nil)".to_string());
        }
    }
    out.push("(setq acc nil)".to_string());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(programs_for(11, 3, 40), programs_for(11, 3, 40));
        assert_ne!(programs_for(11, 3, 40), programs_for(11, 4, 40));
        assert_ne!(programs_for(11, 3, 40), programs_for(23, 3, 40));
    }

    #[test]
    fn every_generated_program_parses() {
        use small_sexpr::{parse_all, Interner};
        for seed in PINNED_SEEDS {
            for client in 0..4 {
                for p in programs_for(seed, client, 48) {
                    let mut i = Interner::new();
                    parse_all(&p, &mut i).unwrap_or_else(|e| panic!("{p}: {e}"));
                }
            }
        }
    }
}
