//! The session manager: N independent machines behind one façade.
//!
//! Sessions live in three states: **resident** (machine in memory),
//! **busy** (checked out by a worker thread running a request), and
//! **suspended** (serialized to a `small-persist` checkpoint blob by
//! LRU eviction). A worker *checks out* a session — waiting on a
//! condvar if another worker has it, transparently resuming it if it
//! was evicted — runs exactly one request against it, and checks it
//! back in. That checkout discipline gives per-session request
//! serialization and cross-session concurrency with no long-held
//! global lock: the manager mutex only guards the slot map.
//!
//! Eviction runs at check-in/open time: while more than
//! [`ServeConfig::max_resident`] sessions are resident, the
//! least-recently-used *idle* session is suspended to bytes. Because
//! suspension is stats-neutral (see [`Session::suspend`]), eviction
//! policy — which depends on thread scheduling — cannot influence any
//! session's results or ledger; the soak harness checks exactly that.
//!
//! Every manager lock acquisition uses the poisoned-recovery idiom
//! (`unwrap_or_else(|e| e.into_inner())`): a worker that panics
//! mid-request must not wedge the server (its session is re-marked
//! idle by the check-in guard running on unwind).

use crate::protocol::err_reply;
use crate::session::{ServeConfig, Session};
use small_metrics::EventCounts;
use std::collections::HashMap;
use std::sync::{Condvar, Mutex, MutexGuard};

enum Slot {
    Resident(Box<Session>),
    Busy,
    Suspended(Vec<u8>),
}

struct Inner {
    slots: HashMap<u64, Slot>,
    /// id → last-touch tick, for LRU victim selection.
    touch: HashMap<u64, u64>,
    clock: u64,
    next_id: u64,
    evictions: u64,
    resumes: u64,
    /// Counts carried by sessions that have been closed (so `/stats`
    /// keeps covering them).
    retired: EventCounts,
}

/// Owns every session and mediates checkout/check-in.
pub struct SessionManager {
    cfg: ServeConfig,
    state: Mutex<Inner>,
    idle: Condvar,
}

impl SessionManager {
    /// An empty manager.
    pub fn new(cfg: ServeConfig) -> SessionManager {
        SessionManager {
            cfg,
            state: Mutex::new(Inner {
                slots: HashMap::new(),
                touch: HashMap::new(),
                clock: 0,
                next_id: 0,
                evictions: 0,
                resumes: 0,
                retired: EventCounts::default(),
            }),
            idle: Condvar::new(),
        }
    }

    /// The configuration sessions are built with.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    fn lock(&self) -> MutexGuard<'_, Inner> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Create a session; returns its id.
    pub fn open(&self) -> u64 {
        let mut st = self.lock();
        let id = st.next_id;
        st.next_id += 1;
        let session = Box::new(Session::new(id, &self.cfg));
        st.slots.insert(id, Slot::Resident(session));
        st.clock += 1;
        let now = st.clock;
        st.touch.insert(id, now);
        Self::enforce_lru(&mut st, self.cfg.max_resident);
        id
    }

    /// Evict least-recently-touched resident sessions until at most
    /// `max_resident` remain resident. Busy sessions are never victims.
    fn enforce_lru(st: &mut Inner, max_resident: usize) {
        loop {
            let resident: Vec<u64> = st
                .slots
                .iter()
                .filter(|(_, s)| matches!(s, Slot::Resident(_)))
                .map(|(&id, _)| id)
                .collect();
            if resident.len() <= max_resident {
                return;
            }
            let victim = resident
                .into_iter()
                .min_by_key(|id| st.touch.get(id).copied().unwrap_or(0))
                .expect("resident list non-empty");
            let Some(Slot::Resident(session)) = st.slots.remove(&victim) else {
                unreachable!("victim chosen from resident set");
            };
            st.slots.insert(victim, Slot::Suspended(session.suspend()));
            st.evictions += 1;
        }
    }

    /// Check a session out for exclusive use. Blocks while another
    /// worker has it; resumes it if it was evicted. `None` if the id
    /// is unknown (never created, or closed).
    fn checkout(&self, id: u64) -> Result<Option<Box<Session>>, String> {
        let mut st = self.lock();
        loop {
            match st.slots.get(&id) {
                None => return Ok(None),
                Some(Slot::Busy) => {
                    st = self.idle.wait(st).unwrap_or_else(|e| e.into_inner());
                }
                Some(Slot::Resident(_)) => {
                    let Some(Slot::Resident(s)) = st.slots.insert(id, Slot::Busy) else {
                        unreachable!("matched resident above");
                    };
                    return Ok(Some(s));
                }
                Some(Slot::Suspended(_)) => {
                    let Some(Slot::Suspended(bytes)) = st.slots.insert(id, Slot::Busy) else {
                        unreachable!("matched suspended above");
                    };
                    // Resume outside any per-session wait but inside the
                    // manager lock: rebuilding a small machine is brief
                    // and keeps the state transition atomic.
                    match Session::resume(id, &self.cfg, &bytes) {
                        Ok(s) => {
                            st.resumes += 1;
                            return Ok(Some(Box::new(s)));
                        }
                        Err(e) => {
                            // Fail closed: the blob is damaged, the
                            // session is unrecoverable. Drop it and
                            // surface the typed error.
                            st.slots.remove(&id);
                            st.touch.remove(&id);
                            return Err(Session::persist_reply(&e));
                        }
                    }
                }
            }
        }
    }

    /// Check a session back in after a request and run LRU enforcement.
    fn checkin(&self, id: u64, session: Box<Session>) {
        let mut st = self.lock();
        st.slots.insert(id, Slot::Resident(session));
        st.clock += 1;
        let now = st.clock;
        st.touch.insert(id, now);
        Self::enforce_lru(&mut st, self.cfg.max_resident);
        drop(st);
        self.idle.notify_all();
    }

    /// Run `f` against the checked-out session `id`, producing a reply.
    fn with_session(&self, id: u64, f: impl FnOnce(&mut Session) -> String) -> String {
        match self.checkout(id) {
            Err(reply) => reply,
            Ok(None) => err_reply("session", "no-such-session"),
            Ok(Some(session)) => {
                // Re-home the session even if `f` panics (a wedged Busy
                // slot would deadlock every later request for this id).
                struct Checkin<'a> {
                    mgr: &'a SessionManager,
                    id: u64,
                    session: Option<Box<Session>>,
                }
                impl Drop for Checkin<'_> {
                    fn drop(&mut self) {
                        if let Some(s) = self.session.take() {
                            self.mgr.checkin(self.id, s);
                        }
                    }
                }
                let mut guard = Checkin {
                    mgr: self,
                    id,
                    session: Some(session),
                };
                f(guard.session.as_mut().expect("session present"))
            }
        }
    }

    /// Compile and run a request program on session `id`.
    pub fn eval(&self, id: u64, src: &str) -> String {
        self.with_session(id, |s| s.eval(src))
    }

    /// The session's `LptStats` ledger reply.
    pub fn ledger(&self, id: u64) -> String {
        self.with_session(id, |s| s.ledger_reply())
    }

    /// The session's transcript digest reply.
    pub fn digest(&self, id: u64) -> String {
        self.with_session(id, |s| s.digest_reply())
    }

    /// Close a session: shut its machine down and remove it. The reply
    /// carries the residual LPT occupancy (0 unless the session leaked
    /// cyclic garbage).
    pub fn close(&self, id: u64) -> String {
        match self.checkout(id) {
            Err(reply) => reply,
            Ok(None) => err_reply("session", "no-such-session"),
            Ok(Some(session)) => {
                let counts = session.counts();
                let (occupancy, _) = session.close();
                let mut st = self.lock();
                st.slots.remove(&id);
                st.touch.remove(&id);
                st.retired.merge(&counts);
                drop(st);
                self.idle.notify_all();
                format!("(ok closed {occupancy})")
            }
        }
    }

    /// Aggregate event counts across every session — busy sessions are
    /// skipped (their counts are in flight), suspended blobs are peeked
    /// without resurrecting them, retired sessions stay included.
    pub fn aggregate_counts(&self) -> EventCounts {
        let st = self.lock();
        let mut total = st.retired;
        for slot in st.slots.values() {
            match slot {
                Slot::Resident(s) => total.merge(&s.counts()),
                Slot::Suspended(bytes) => {
                    if let Ok(c) = Session::peek_counts(bytes) {
                        total.merge(&c);
                    }
                }
                Slot::Busy => {}
            }
        }
        total
    }

    /// `(ok (sessions <n>) (evictions <e>) (resumes <r>) (<kind> <count>)...)`
    /// — the `/stats` endpoint body.
    pub fn stats_reply(&self) -> String {
        let (sessions, evictions, resumes) = {
            let st = self.lock();
            (st.slots.len() as u64, st.evictions, st.resumes)
        };
        let c = self.aggregate_counts();
        let w = c.to_words();
        let names = EventCounts::WORD_NAMES;
        let mut out = String::from("(ok ");
        out.push_str(&format!(
            "(sessions {sessions}) (evictions {evictions}) (resumes {resumes})"
        ));
        for (name, value) in names.iter().zip(w.iter()) {
            out.push_str(&format!(" ({} {})", name.replace('_', "-"), value));
        }
        out.push(')');
        out
    }

    /// Lifetime eviction / resume counters (scheduling-dependent; used
    /// by harness assertions, never in deterministic reports).
    pub fn eviction_counters(&self) -> (u64, u64) {
        let st = self.lock();
        (st.evictions, st.resumes)
    }

    /// Ids of all live sessions (any state), ascending.
    pub fn session_ids(&self) -> Vec<u64> {
        let st = self.lock();
        let mut ids: Vec<u64> = st.slots.keys().copied().collect();
        ids.sort_unstable();
        ids
    }
}
