//! The per-shard session store: N independent machines, one owner.
//!
//! The sharded server pins every session to the shard selected by
//! `id % nshards`, and each shard's event loop is the *only* thread
//! that ever touches that shard's [`SessionStore`]. Per-session request
//! serialization is therefore **structural** — there is no checkout
//! protocol, no condvar, no `Busy` state, and no lock anywhere in this
//! module. (The previous serving core mediated ownership through a
//! `Mutex`/`Condvar` checkout discipline; the shard architecture made
//! all of that machinery unnecessary, and it was deleted rather than
//! kept dormant.)
//!
//! Sessions live in two states: **resident** (machine in memory) and
//! **suspended** (serialized to a `small-persist` checkpoint blob by
//! LRU eviction). Eviction runs after every touch: while more than
//! [`ServeConfig::max_resident`] sessions are resident, the
//! least-recently-used is suspended to bytes. Suspension is
//! stats-neutral (see [`Session::suspend`]), so eviction policy cannot
//! influence any session's replies or ledger; the soak and failover
//! harnesses gate on exactly that.
//!
//! Because suspension happens synchronously inside the owning shard's
//! loop, a suspend is always complete — blob fully written — before
//! the store can be drained at shutdown. [`SessionStore::verify_suspended`]
//! makes that checkable: the drain path decodes every suspended blob
//! and fails loudly if any is torn.
//!
//! The store also implements the serial **twin** used by the soak and
//! failover harnesses: [`SessionStore::apply`] maps any typed
//! [`Request`] to the exact [`Reply`] the server would produce, so an
//! uninterrupted in-process run is byte-comparable with wire traffic.

use crate::protocol::{
    err, seq_gap_reply, seq_too_old_reply, NodeRole, Reply, Request, StatsBody, PROTO_VERSION,
};
use crate::session::{ServeConfig, Session};
use crate::telemetry::{ReqKind, ShardMetrics, TraceLog, VolatileMetrics};
use small_metrics::EventCounts;
use small_persist::PersistError;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Instant;

/// How many *closed* sessions' idempotency tokens stay answerable.
/// A live session's token is never evicted; once the session closes its
/// token moves to a FIFO retention ring of this capacity, deep enough
/// to answer any plausibly-in-flight duplicate `(open <token>)` retry
/// without letting the map grow without bound.
pub const TOKEN_RETENTION: usize = 64;

/// How many cached sequenced-close replies are retained (same FIFO
/// discipline as [`TOKEN_RETENTION`]): enough to answer a retried
/// `(close <id> <seq>)` that raced a reset, bounded so the cache cannot
/// grow with session churn.
pub const CLOSED_RETENTION: usize = 64;

enum Slot {
    Resident(Box<Session>),
    Suspended(Vec<u8>),
}

/// Owns every session pinned to one shard (or, in the serial-twin and
/// standby roles, every session outright).
pub struct SessionStore {
    cfg: ServeConfig,
    slots: HashMap<u64, Slot>,
    /// id → last-touch tick, for LRU victim selection.
    touch: HashMap<u64, u64>,
    clock: u64,
    next_id: u64,
    evictions: u64,
    resumes: u64,
    /// Counts carried by sessions that have been closed (so `(stats)`
    /// keeps covering them).
    retired: EventCounts,
    /// Idempotency-token → session-id map for `(open <token>)`: a
    /// retried tokenized open returns the original `(ok opened <id>)`
    /// instead of creating a second session. Live sessions' tokens are
    /// pinned; closed sessions' tokens survive only while they sit in
    /// the [`TOKEN_RETENTION`]-deep `retired_tokens` ring.
    open_tokens: HashMap<u64, u64>,
    /// id → token reverse map for live tokenized sessions, so a close
    /// can retire its token without scanning.
    token_of: HashMap<u64, u64>,
    /// FIFO of closed sessions' tokens still answerable; overflow
    /// evicts the oldest from `open_tokens`.
    retired_tokens: VecDeque<u64>,
    /// Per-id cached reply of the last *sequenced* close, so a retried
    /// `(close <id> <seq>)` that raced a reset is answered from cache
    /// instead of `no-such-session`. Bounded by [`CLOSED_RETENTION`]
    /// via `closed_order`.
    closed: HashMap<u64, (u64, Reply)>,
    /// FIFO of ids in `closed`, oldest first.
    closed_order: VecDeque<u64>,
    /// Per-request-kind latency telemetry for every request this store
    /// served. The virtual-cycle histograms are deterministic (latency
    /// is a pure function of each request's operation stream — see
    /// [`Session::take_cycles`]); the wall histograms fill only under
    /// [`SessionStore::with_wall`].
    telemetry: ShardMetrics,
    wall: bool,
    /// Wall-clock span log and this store's trace thread, when tracing.
    trace: Option<(Arc<TraceLog>, u32)>,
}

impl SessionStore {
    /// An empty store.
    pub fn new(cfg: ServeConfig) -> SessionStore {
        SessionStore {
            cfg,
            slots: HashMap::new(),
            touch: HashMap::new(),
            clock: 0,
            next_id: 0,
            evictions: 0,
            resumes: 0,
            retired: EventCounts::default(),
            open_tokens: HashMap::new(),
            token_of: HashMap::new(),
            retired_tokens: VecDeque::new(),
            closed: HashMap::new(),
            closed_order: VecDeque::new(),
            telemetry: ShardMetrics::default(),
            wall: false,
            trace: None,
        }
    }

    /// Enable wall-clock request timing (the volatile half of the
    /// telemetry; off by default so unpinned machines don't report
    /// noise).
    pub fn with_wall(mut self, wall: bool) -> SessionStore {
        self.wall = wall;
        self
    }

    /// Attach a span log; suspend/resume lifecycle events on this store
    /// record to trace thread `tid`.
    pub fn with_trace(mut self, log: Arc<TraceLog>, tid: u32) -> SessionStore {
        self.trace = Some((log, tid));
        self
    }

    /// The store's request telemetry.
    pub fn telemetry(&self) -> &ShardMetrics {
        &self.telemetry
    }

    /// The configuration sessions are built with.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    fn wall_start(&self) -> Option<Instant> {
        self.wall.then(Instant::now)
    }

    fn record_req(&mut self, kind: ReqKind, cycles: u64, t0: Option<Instant>) {
        let wall_us = t0.map(|t| t.elapsed().as_micros() as u64);
        self.telemetry.record(kind, cycles, wall_us);
    }

    /// Create a session with a store-allocated id (serial twin and
    /// tests; the sharded server allocates ids globally and uses
    /// [`SessionStore::open_with_id`]).
    pub fn open(&mut self) -> u64 {
        let id = self.next_id;
        self.open_with_id(id);
        id
    }

    /// Create a session under a caller-assigned id. Advances the
    /// store's own id cursor past `id`, so store-allocated ids never
    /// collide with server-assigned ones (promotion relies on this).
    pub fn open_with_id(&mut self, id: u64) -> Reply {
        if self.slots.contains_key(&id) {
            return err("session", "duplicate-session");
        }
        let t0 = self.wall_start();
        self.next_id = self.next_id.max(id + 1);
        let session = Box::new(Session::new(id, &self.cfg));
        self.slots.insert(id, Slot::Resident(session));
        self.touch(id);
        self.enforce_lru();
        self.record_req(ReqKind::Open, 0, t0);
        Reply::Opened { id }
    }

    /// Create a session under a caller-assigned id, idempotently: if
    /// `token` has already opened a session, the original
    /// `(ok opened <id>)` is returned and nothing is created.
    ///
    /// The `applied` flag is `true` only when a session was actually
    /// created (the journal-this signal).
    pub fn open_with_token(&mut self, id: u64, token: u64) -> (Reply, bool) {
        if let Some(&existing) = self.open_tokens.get(&token) {
            return (Reply::Opened { id: existing }, false);
        }
        let reply = self.open_with_id(id);
        if let Reply::Opened { id } = reply {
            self.open_tokens.insert(token, id);
            self.token_of.insert(id, token);
            (Reply::Opened { id }, true)
        } else {
            (reply, false)
        }
    }

    /// Move a closing session's idempotency token (if any) from the
    /// pinned live set into the bounded retention ring; the overflow
    /// victim stops being answerable.
    fn retire_token(&mut self, id: u64) {
        if let Some(token) = self.token_of.remove(&id) {
            self.retired_tokens.push_back(token);
            while self.retired_tokens.len() > TOKEN_RETENTION {
                if let Some(old) = self.retired_tokens.pop_front() {
                    self.open_tokens.remove(&old);
                }
            }
        }
    }

    fn touch(&mut self, id: u64) {
        self.clock += 1;
        self.touch.insert(id, self.clock);
    }

    /// Evict least-recently-touched resident sessions until at most
    /// `max_resident` remain resident.
    fn enforce_lru(&mut self) {
        while self.resident_count() > self.cfg.max_resident {
            let victim = self
                .slots
                .iter()
                .filter(|(_, s)| matches!(s, Slot::Resident(_)))
                .map(|(&id, _)| id)
                .min_by_key(|id| self.touch.get(id).copied().unwrap_or(0))
                .expect("resident set non-empty");
            let Some(Slot::Resident(session)) = self.slots.remove(&victim) else {
                unreachable!("victim chosen from resident set");
            };
            // Synchronous suspend: by the time this statement finishes
            // the blob is fully written. There is no in-flight state
            // for a drain to race.
            let trace = self.trace.clone();
            let _span = trace.as_ref().map(|(log, tid)| log.span(*tid, "suspend"));
            self.slots
                .insert(victim, Slot::Suspended(session.suspend()));
            self.evictions += 1;
        }
    }

    fn resident_count(&self) -> usize {
        self.slots
            .values()
            .filter(|s| matches!(s, Slot::Resident(_)))
            .count()
    }

    /// Run `f` against session `id`, resuming it if it was evicted.
    /// A corrupt blob fails closed: the session is dropped and the
    /// typed persist error is the reply.
    fn with_session(&mut self, id: u64, f: impl FnOnce(&mut Session) -> Reply) -> Reply {
        match self.slots.get_mut(&id) {
            None => err("session", "no-such-session"),
            Some(Slot::Resident(_)) => {
                self.touch(id);
                let Some(Slot::Resident(s)) = self.slots.get_mut(&id) else {
                    unreachable!("matched resident above");
                };
                let reply = f(s);
                self.enforce_lru();
                reply
            }
            Some(Slot::Suspended(_)) => {
                let Some(Slot::Suspended(bytes)) = self.slots.remove(&id) else {
                    unreachable!("matched suspended above");
                };
                let trace = self.trace.clone();
                let resume_span = trace.as_ref().map(|(log, tid)| log.span(*tid, "resume"));
                let resumed = Session::resume(id, &self.cfg, &bytes);
                drop(resume_span);
                match resumed {
                    Ok(mut s) => {
                        self.resumes += 1;
                        // Discard any cycles the resume machinery
                        // accrued (handle re-wrapping): request latency
                        // must not depend on whether the session was
                        // evicted, or the twin comparison would break.
                        let _ = s.take_cycles();
                        let reply = f(&mut s);
                        self.slots.insert(id, Slot::Resident(Box::new(s)));
                        self.touch(id);
                        self.enforce_lru();
                        reply
                    }
                    Err(e) => {
                        self.touch.remove(&id);
                        Session::persist_reply(&e)
                    }
                }
            }
        }
    }

    /// Compile and run a request program on session `id`. The request's
    /// virtual-cycle cost (priced by the session's [`crate::telemetry::ServeSink`])
    /// lands in this store's telemetry.
    pub fn eval(&mut self, id: u64, src: &str) -> Reply {
        let t0 = self.wall_start();
        let mut cycles = 0;
        let reply = self.with_session(id, |s| {
            let r = s.eval(src);
            cycles = s.take_cycles();
            r
        });
        self.record_req(ReqKind::Eval, cycles, t0);
        reply
    }

    /// Run one sequenced request on session `id` (see
    /// [`Session::eval_seq`]): executes exactly once; retries are
    /// answered from the session's replay window. `applied` is `true`
    /// only when the request actually executed.
    pub fn eval_seq(&mut self, id: u64, seq: u64, src: &str) -> (Reply, bool) {
        let t0 = self.wall_start();
        let mut cycles = 0;
        let mut applied = false;
        let reply = self.with_session(id, |s| {
            let (r, a) = s.eval_seq(seq, src);
            applied = a;
            cycles = s.take_cycles();
            r
        });
        self.record_req(ReqKind::Eval, cycles, t0);
        (reply, applied)
    }

    /// The session's `LptStats` ledger reply. Ledger reads run no
    /// machine operations, so their virtual-cycle cost is 0 by
    /// definition; the histogram still counts them.
    pub fn ledger(&mut self, id: u64) -> Reply {
        let t0 = self.wall_start();
        let reply = self.with_session(id, |s| s.ledger_reply());
        self.record_req(ReqKind::Ledger, 0, t0);
        reply
    }

    /// The session's transcript digest reply.
    pub fn digest(&mut self, id: u64) -> Reply {
        let t0 = self.wall_start();
        let reply = self.with_session(id, |s| s.digest_reply());
        self.record_req(ReqKind::Digest, 0, t0);
        reply
    }

    /// Close a session: shut its machine down and remove it. The reply
    /// carries the residual LPT occupancy (0 unless the session leaked
    /// cyclic garbage).
    pub fn close(&mut self, id: u64) -> Reply {
        let t0 = self.wall_start();
        if self.slots.contains_key(&id) {
            // The slot is removed on every path below (even a failed
            // resume drops it), so the token retires with the session.
            self.retire_token(id);
        }
        let reply = match self.slots.remove(&id) {
            None => err("session", "no-such-session"),
            Some(Slot::Resident(session)) => {
                self.touch.remove(&id);
                let counts = session.counts();
                let (occupancy, _) = session.close();
                self.retired.merge(&counts);
                Reply::Closed {
                    occupancy: occupancy as u64,
                }
            }
            Some(Slot::Suspended(bytes)) => {
                self.touch.remove(&id);
                match Session::resume(id, &self.cfg, &bytes) {
                    Ok(session) => {
                        let counts = session.counts();
                        let (occupancy, _) = session.close();
                        self.retired.merge(&counts);
                        Reply::Closed {
                            occupancy: occupancy as u64,
                        }
                    }
                    Err(e) => Session::persist_reply(&e),
                }
            }
        };
        self.record_req(ReqKind::Close, 0, t0);
        reply
    }

    /// Close session `id` under sequence number `seq`, exactly once: a
    /// retry after the session is gone returns the cached
    /// `(ok closed …)` instead of `no-such-session`. `applied` is
    /// `true` only when the machine was actually shut down.
    pub fn close_seq(&mut self, id: u64, seq: u64) -> (Reply, bool) {
        if !self.slots.contains_key(&id) {
            return match self.closed.get(&id) {
                Some((s, reply)) if *s == seq => (reply.clone(), false),
                _ => (err("session", "no-such-session"), false),
            };
        }
        // Materialize the session (resuming if evicted) to consult its
        // seq cursor; a failed resume is the typed persist error.
        let mut cursor = None;
        let probe = self.with_session(id, |s| {
            cursor = Some(s.next_seq());
            Reply::Draining
        });
        let Some(cursor) = cursor else {
            return (probe, false);
        };
        if seq > cursor {
            (seq_gap_reply(cursor, seq), false)
        } else if seq < cursor {
            (seq_too_old_reply(seq), false)
        } else {
            let reply = self.close(id);
            if self.closed.insert(id, (seq, reply.clone())).is_none() {
                self.closed_order.push_back(id);
            }
            while self.closed_order.len() > CLOSED_RETENTION {
                if let Some(old) = self.closed_order.pop_front() {
                    self.closed.remove(&old);
                }
            }
            (reply, true)
        }
    }

    /// The store's next session id (promotion seeds the successor's
    /// global id allocator from this so fresh ids never collide with
    /// replicated ones).
    pub fn next_session_id(&self) -> u64 {
        self.next_id
    }

    /// Every answerable `(open <token>)` route — live sessions' pinned
    /// tokens plus the retained ring of recently closed ones — as
    /// `(token, id)` pairs. Promotion primes the successor server's
    /// shared token routes from this.
    pub fn token_routes(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.open_tokens.iter().map(|(&t, &id)| (t, id))
    }

    /// Map any typed request to its reply, exactly as the server does —
    /// this is the serial twin the soak and failover harnesses compare
    /// wire transcripts against. `Pull` is a replication-transport
    /// request and has no twin semantics.
    pub fn apply(&mut self, req: &Request) -> Reply {
        match req {
            Request::Hello { version, .. } => {
                if *version == PROTO_VERSION {
                    Reply::Hello {
                        version: PROTO_VERSION,
                        node: NodeRole::Primary,
                    }
                } else {
                    crate::protocol::unsupported_version_reply(*version)
                }
            }
            Request::Open { token: None } => {
                let id = self.next_id;
                self.open_with_id(id)
            }
            Request::Open { token: Some(t) } => {
                let id = self.next_id;
                self.open_with_token(id, *t).0
            }
            Request::Eval { id, seq: None, src } => self.eval(*id, src),
            Request::Eval {
                id,
                seq: Some(s),
                src,
            } => self.eval_seq(*id, *s, src).0,
            Request::Ledger { id } => self.ledger(*id),
            Request::Digest { id } => self.digest(*id),
            Request::Stats => Reply::Stats(Box::new(self.stats_body())),
            Request::Metrics => Reply::Metrics {
                deterministic: self.telemetry.deterministic_json(),
                // A serial twin has no queues, sheds, or WAL — its
                // volatile section is structurally present but empty.
                volatile: VolatileMetrics::default().json(&self.telemetry),
            },
            Request::Close { id, seq: None } => self.close(*id),
            Request::Close { id, seq: Some(s) } => self.close_seq(*id, *s).0,
            // The twin has no WAL; a real server answers its next LSN.
            Request::Ping => Reply::Pong {
                lsn: 0,
                node: NodeRole::Primary,
            },
            Request::Shutdown => Reply::Draining,
            Request::Pull { .. } => err("proto", "not-a-replica"),
        }
    }

    /// Aggregate event counts across every session — suspended blobs
    /// are peeked without resurrecting them, retired sessions stay
    /// included.
    pub fn aggregate_counts(&self) -> EventCounts {
        let mut total = self.retired;
        for slot in self.slots.values() {
            match slot {
                Slot::Resident(s) => total.merge(&s.counts()),
                Slot::Suspended(bytes) => {
                    if let Ok(c) = Session::peek_counts(bytes) {
                        total.merge(&c);
                    }
                }
            }
        }
        total
    }

    /// This store's contribution to the `(ok stats …)` body.
    pub fn stats_body(&self) -> StatsBody {
        StatsBody {
            sessions: self.slots.len() as u64,
            evictions: self.evictions,
            resumes: self.resumes,
            requests: self.telemetry.requests(),
            counts: self.aggregate_counts().to_words(),
        }
    }

    /// Lifetime eviction / resume counters (scheduling-dependent; used
    /// by harness assertions, never in deterministic reports).
    pub fn eviction_counters(&self) -> (u64, u64) {
        (self.evictions, self.resumes)
    }

    /// Ids of all live sessions (any state), ascending.
    pub fn session_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.slots.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Number of live sessions (any state).
    pub fn session_count(&self) -> usize {
        self.slots.len()
    }

    /// Decode every suspended blob, failing on the first torn one.
    /// The drain path runs this after the shards stop: because
    /// suspends are synchronous in the owning shard, shutdown must
    /// never observe a partially written checkpoint.
    pub fn verify_suspended(&self) -> Result<usize, PersistError> {
        let mut checked = 0;
        for (id, slot) in &self.slots {
            if let Slot::Suspended(bytes) = slot {
                // A full resume (not just a peek) exercises CRC,
                // version, image decode, and the table audit.
                let s = Session::resume(*id, &self.cfg, bytes)?;
                let _ = s.close();
                checked += 1;
            }
        }
        Ok(checked)
    }

    /// The suspended blobs by session id (ascending), for harness
    /// assertions about checkpoint integrity at drain time.
    pub fn suspended_blobs(&self) -> Vec<(u64, Vec<u8>)> {
        let mut out: Vec<(u64, Vec<u8>)> = self
            .slots
            .iter()
            .filter_map(|(&id, s)| match s {
                Slot::Suspended(bytes) => Some((id, bytes.clone())),
                Slot::Resident(_) => None,
            })
            .collect();
        out.sort_by_key(|(id, _)| *id);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(max_resident: usize) -> ServeConfig {
        ServeConfig {
            heap_cells: 1 << 12,
            table_size: 256,
            max_resident,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn open_eval_close_round_trip() {
        let mut store = SessionStore::new(cfg(4));
        let id = store.open();
        assert_eq!(store.eval(id, "(add 1 2)").encode(), "(ok value 3)");
        assert_eq!(store.close(id).encode(), "(ok closed 0)");
        assert_eq!(
            store.eval(id, "(add 1 2)").encode(),
            "(err session no-such-session)"
        );
    }

    #[test]
    fn lru_eviction_is_invisible_to_sessions() {
        let mut thrash = SessionStore::new(cfg(1));
        let mut roomy = SessionStore::new(cfg(usize::MAX));
        let a = [thrash.open(), roomy.open()];
        let b = [thrash.open(), roomy.open()];
        let script = [
            "(setq acc nil)",
            "(setq acc (cons 1 acc))",
            "(prog (x) (setq x (cons 9 acc)) (rplaca x 8) (return (car x)))",
            "(car acc)",
        ];
        for r in script {
            assert_eq!(thrash.eval(a[0], r), roomy.eval(a[1], r));
            assert_eq!(thrash.eval(b[0], r), roomy.eval(b[1], r));
        }
        assert_eq!(thrash.ledger(a[0]), roomy.ledger(a[1]));
        assert_eq!(thrash.digest(b[0]), roomy.digest(b[1]));
        let (ev, res) = thrash.eviction_counters();
        assert!(ev > 0 && res > 0, "cap 1 must thrash: {ev}/{res}");
        assert_eq!(roomy.eviction_counters(), (0, 0));
    }

    #[test]
    fn open_with_id_advances_the_cursor() {
        let mut store = SessionStore::new(cfg(4));
        assert_eq!(store.open_with_id(7), Reply::Opened { id: 7 });
        assert_eq!(
            store.open_with_id(7).encode(),
            "(err session duplicate-session)"
        );
        // A store-allocated id never collides with a caller-assigned one.
        assert_eq!(store.open(), 8);
    }

    #[test]
    fn token_and_close_caches_stay_bounded() {
        let mut store = SessionStore::new(cfg(2));
        // Churn far more tokenized sessions than the retention rings
        // hold; every one is opened, sequenced-closed, and gone.
        let churn = TOKEN_RETENTION + CLOSED_RETENTION;
        for k in 0..churn as u64 {
            let (reply, applied) = store.open_with_token(k, 10_000 + k);
            assert!(applied);
            assert_eq!(reply, Reply::Opened { id: k });
            let (reply, applied) = store.close_seq(k, 0);
            assert!(applied);
            assert_eq!(reply, Reply::Closed { occupancy: 0 });
        }
        // Closed sessions' tokens are retained only TOKEN_RETENTION
        // deep; the close cache is bounded the same way.
        assert_eq!(store.open_tokens.len(), TOKEN_RETENTION);
        assert_eq!(store.closed.len(), CLOSED_RETENTION);
        // A duplicate retry of a *recently* closed token is still
        // answered with the original id, not a fresh session …
        let last = churn as u64 - 1;
        let (reply, applied) = store.open_with_token(9999, 10_000 + last);
        assert!(!applied);
        assert_eq!(reply, Reply::Opened { id: last });
        // … and so is a retried sequenced close.
        let (reply, applied) = store.close_seq(last, 0);
        assert!(!applied);
        assert_eq!(reply, Reply::Closed { occupancy: 0 });
        // The oldest token fell out of the ring: retrying it now
        // (legitimately) creates a fresh session.
        let (reply, applied) = store.open_with_token(churn as u64, 10_000);
        assert!(applied);
        assert_eq!(reply, Reply::Opened { id: churn as u64 });
        // A *live* session's token is pinned regardless of churn.
        assert!(store.open_tokens.contains_key(&10_000));
    }

    #[test]
    fn suspended_blobs_verify_clean() {
        let mut store = SessionStore::new(cfg(1));
        let a = store.open();
        let b = store.open(); // evicts a
        store.eval(b, "(setq acc (cons 1 nil))");
        assert_eq!(store.suspended_blobs().len(), 1);
        assert_eq!(store.verify_suspended().expect("clean"), 1);
        let _ = a;
    }

    #[test]
    fn apply_mirrors_the_wire_semantics() {
        let mut store = SessionStore::new(cfg(4));
        assert_eq!(
            store.apply(&Request::Open { token: None }),
            Reply::Opened { id: 0 }
        );
        assert_eq!(
            store
                .apply(&Request::Eval {
                    id: 0,
                    seq: None,
                    src: "(add 2 2)".to_string()
                })
                .encode(),
            "(ok value 4)"
        );
        assert_eq!(
            store.apply(&Request::Hello {
                version: PROTO_VERSION,
                role: crate::protocol::Role::Client
            }),
            Reply::Hello {
                version: PROTO_VERSION,
                node: NodeRole::Primary
            }
        );
        assert_eq!(
            store
                .apply(&Request::Hello {
                    version: 99,
                    role: crate::protocol::Role::Client
                })
                .encode(),
            "(err proto unsupported-version 99 4)"
        );
        assert_eq!(
            store.apply(&Request::Ping),
            Reply::Pong {
                lsn: 0,
                node: NodeRole::Primary
            }
        );
        assert_eq!(store.apply(&Request::Shutdown), Reply::Draining);
        assert_eq!(
            store.apply(&Request::Pull { from: 0 }).encode(),
            "(err proto not-a-replica)"
        );
        assert_eq!(
            store.apply(&Request::Close { id: 0, seq: None }),
            Reply::Closed { occupancy: 0 }
        );
    }

    #[test]
    fn tokenized_open_is_idempotent() {
        let mut store = SessionStore::new(cfg(4));
        let (first, applied) = store.open_with_token(0, 77);
        assert!(applied);
        assert_eq!(first, Reply::Opened { id: 0 });
        // Retrying the token — even with a different candidate id —
        // returns the original reply and creates nothing.
        let (retry, applied) = store.open_with_token(5, 77);
        assert!(!applied);
        assert_eq!(retry, Reply::Opened { id: 0 });
        assert_eq!(store.session_count(), 1);
        // A different token gets a fresh session.
        let (other, applied) = store.open_with_token(5, 78);
        assert!(applied);
        assert_eq!(other, Reply::Opened { id: 5 });
    }

    #[test]
    fn sequenced_close_retries_come_from_cache() {
        let mut store = SessionStore::new(cfg(4));
        let id = store.open();
        assert!(store.eval_seq(id, 0, "(setq x 1)").1);
        let (closed, applied) = store.close_seq(id, 1);
        assert!(applied);
        assert_eq!(closed.encode(), "(ok closed 0)");
        // The retry after the session is gone replays the cached reply.
        let (retry, applied) = store.close_seq(id, 1);
        assert!(!applied);
        assert_eq!(retry, closed);
        // A different seq against the dead session stays typed.
        assert_eq!(
            store.close_seq(id, 3).0.encode(),
            "(err session no-such-session)"
        );
    }

    #[test]
    fn sequenced_eval_survives_eviction() {
        let mut store = SessionStore::new(cfg(1));
        let a = store.open();
        let b = store.open(); // evicts a
        assert!(store.eval_seq(a, 0, "(setq n 4)").1);
        assert!(store.eval_seq(b, 0, "(setq n 9)").1); // evicts a again
        let (reply, applied) = store.eval_seq(a, 0, "(setq n 4)");
        assert!(!applied, "retry must come from the resumed window");
        assert_eq!(reply.encode(), "(ok value 4)");
        let (reply, applied) = store.eval_seq(a, 1, "(add n 1)");
        assert!(applied);
        assert_eq!(reply.encode(), "(ok value 5)");
    }
}
