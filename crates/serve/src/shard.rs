//! Shard event loops: pinned sessions, bounded queues, ordered drain.
//!
//! The server runs `nshards` single-threaded event loops. Every
//! session is *pinned* to the shard `id % nshards`; that shard's
//! [`SessionStore`] is touched by that shard's thread only, so
//! per-session request serialization is structural — no lock protects
//! a session, because no two threads can ever want one.
//!
//! Connections are distributed round-robin across shards by the
//! acceptor. The owning shard decodes frames and routes each
//! session-targeting request to the home shard's **bounded run queue**
//! ([`RunQueue::try_push`]). A full queue sheds the request *at decode
//! time* with a typed `(err busy queue-full <shard>)` reply in the
//! request's reply slot — deterministic back-pressure in place of
//! unbounded accept; the connection stays open and ordered. Requests
//! that touch no session (`hello`, `stats`, `pull`, malformed frames)
//! are answered immediately by the owning shard.
//!
//! # Drain (the shutdown/suspend race, fixed structurally)
//!
//! Graceful shutdown is a two-barrier protocol over [`SharedState`]:
//!
//! 1. Each shard, on observing `stop`, stops adopting connections and
//!    decoding frames, then acknowledges on `decode_done`. Once all
//!    `nshards` have acknowledged, **no new job can ever be enqueued**.
//! 2. Each shard then drains its own run queue to empty — executing
//!    every remaining job, including the LRU suspends those jobs
//!    trigger, which run synchronously inside the loop — and
//!    acknowledges on `queues_done`. Once all have acknowledged, every
//!    reply has been completed and every suspend-to-checkpoint blob is
//!    fully written.
//!
//! Only then do shards flush remaining bytes and return their stores
//! to the joiner. A suspend can therefore never be in flight when the
//! server exits: the old drain path could race an in-flight
//! suspend-to-checkpoint and tear the blob; this one cannot, and
//! [`crate::server::DrainOutcome::verify_suspended`] checks it.

use crate::manager::{SessionStore, TOKEN_RETENTION};
use crate::protocol::{
    busy_reply, err, err_with, NodeRole, Reply, Request, Role, StatsBody, PROTO_VERSION,
};
use crate::reactor::{Conn, Outbox};
use crate::repl::{reply_digest, Wal, WalOp};
use crate::telemetry::{ShardMetrics, TraceLog, VolatileMetrics};
use std::collections::{HashMap, VecDeque};
use std::net::{SocketAddr, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

/// Idle sleep between event-loop passes that did no work.
const IDLE_SLEEP: Duration = Duration::from_micros(200);

/// Byte budget for one `(pull …)` batch (hex-doubled on the wire, so
/// comfortably inside `MAX_FRAME`).
const PULL_BATCH_BYTES: usize = 64 * 1024;

/// How long the final flush may take per shard before giving up on
/// unresponsive peers.
const DRAIN_FLUSH_DEADLINE: Duration = Duration::from_secs(2);

/// A session-targeting operation, routed to the session's home shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Action {
    /// Create the session under a pre-allocated global id.
    Open {
        /// The id the decoding shard reserved (or resolved through the
        /// token map for a retried tokenized open).
        id: u64,
        /// Idempotency token, when the open carried one.
        token: Option<u64>,
    },
    /// Run a program on the session.
    Eval {
        /// Target session.
        id: u64,
        /// Per-session request sequence number, when present.
        seq: Option<u64>,
        /// Canonical program text.
        src: String,
    },
    /// Ledger query.
    Ledger {
        /// Target session.
        id: u64,
    },
    /// Digest query.
    Digest {
        /// Target session.
        id: u64,
    },
    /// Close the session.
    Close {
        /// Target session.
        id: u64,
        /// Per-session request sequence number, when present.
        seq: Option<u64>,
    },
}

impl Action {
    /// The session id this action targets (pins it to a shard).
    pub fn session(&self) -> u64 {
        match self {
            Action::Open { id, .. }
            | Action::Eval { id, .. }
            | Action::Ledger { id }
            | Action::Digest { id }
            | Action::Close { id, .. } => *id,
        }
    }
}

/// One queued unit of work: an action plus the reply slot it must fill.
pub struct Job {
    /// Reply slot in the connection's outbox.
    pub seq: u64,
    /// The connection's outbox (shared with the owning shard).
    pub outbox: Arc<Outbox>,
    /// What to do.
    pub action: Action,
}

/// A bounded MPSC run queue: any shard pushes, the home shard drains.
pub struct RunQueue {
    cap: usize,
    q: Mutex<VecDeque<Job>>,
}

impl RunQueue {
    /// A queue admitting at most `cap` jobs.
    pub fn new(cap: usize) -> RunQueue {
        RunQueue {
            cap,
            q: Mutex::new(VecDeque::new()),
        }
    }

    fn lock(&self) -> MutexGuard<'_, VecDeque<Job>> {
        self.q.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Push unless full. On `Err` the caller sheds the job with a
    /// typed busy reply — never silently.
    pub fn try_push(&self, job: Job) -> Result<(), Job> {
        let mut q = self.lock();
        if q.len() >= self.cap {
            Err(job)
        } else {
            q.push_back(job);
            Ok(())
        }
    }

    /// Take everything currently queued, in FIFO order.
    pub fn drain_all(&self) -> Vec<Job> {
        self.lock().drain(..).collect()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }
}

/// Decode-time idempotency-token routing with bounded retention.
///
/// A retried `(open <token>)` must reach the *same home shard* as the
/// original, so token → id resolution happens at decode time, before
/// pinning. Routes for **live** sessions are pinned; once the session
/// closes its route moves to a fixed-depth FIFO
/// ([`crate::manager::TOKEN_RETENTION`] deep, mirroring the
/// store-level policy) that keeps recently closed opens routable for
/// duplicate retries while bounding the map for any workload length.
pub struct TokenRoutes {
    by_token: HashMap<u64, u64>,
    /// Reverse map for live sessions only (id → token).
    by_id: HashMap<u64, u64>,
    /// Closed sessions' tokens, oldest first.
    retired: VecDeque<u64>,
}

impl TokenRoutes {
    /// An empty routing table.
    pub fn new() -> TokenRoutes {
        TokenRoutes {
            by_token: HashMap::new(),
            by_id: HashMap::new(),
            retired: VecDeque::new(),
        }
    }

    /// Resolve `token` to its stable session id, allocating through
    /// `alloc` on first sight.
    pub fn resolve_or_insert(&mut self, token: u64, alloc: impl FnOnce() -> u64) -> u64 {
        if let Some(&id) = self.by_token.get(&token) {
            return id;
        }
        let id = alloc();
        self.by_token.insert(token, id);
        self.by_id.insert(id, token);
        id
    }

    /// Seed a live route (promotion: replayed state already holds the
    /// token → id binding).
    pub fn prime(&mut self, token: u64, id: u64) {
        self.by_token.insert(token, id);
        self.by_id.insert(id, token);
    }

    /// The session closed: move its token (if any) into the retired
    /// ring, evicting the oldest route once over the retention cap.
    pub fn note_close(&mut self, id: u64) {
        let Some(token) = self.by_id.remove(&id) else {
            return;
        };
        self.retired.push_back(token);
        while self.retired.len() > TOKEN_RETENTION {
            if let Some(old) = self.retired.pop_front() {
                self.by_token.remove(&old);
            }
        }
    }

    /// Total routes currently held (live + retired).
    pub fn len(&self) -> usize {
        self.by_token.len()
    }

    /// Whether no routes are held.
    pub fn is_empty(&self) -> bool {
        self.by_token.is_empty()
    }
}

impl Default for TokenRoutes {
    fn default() -> TokenRoutes {
        TokenRoutes::new()
    }
}

/// State shared by the acceptor, every shard, and the server handle.
pub struct SharedState {
    /// One bounded run queue per shard.
    pub queues: Vec<Arc<RunQueue>>,
    /// One incoming-connection inbox per shard (acceptor → shard).
    pub inboxes: Vec<Mutex<Vec<TcpStream>>>,
    /// Per-shard published stats (each shard writes its own cell).
    pub stats: Vec<Mutex<StatsBody>>,
    /// Per-shard published request telemetry (each shard copies its
    /// store's registry into its own cell, before releasing replies —
    /// same publication discipline as `stats`).
    pub telemetry: Vec<Mutex<ShardMetrics>>,
    /// Per-shard volatile observables (queue depth, sheds, WAL lag).
    pub volatile: Vec<Mutex<VolatileMetrics>>,
    /// Wall-clock span log, when tracing is on.
    pub trace: Option<Arc<TraceLog>>,
    /// Drain flag: set by `(shutdown)` or the server handle.
    pub stop: AtomicBool,
    /// Shards that have permanently stopped decoding (barrier 1).
    pub decode_done: AtomicUsize,
    /// Shards whose run queue has fully drained (barrier 2).
    pub queues_done: AtomicUsize,
    /// Global session-id allocator (decode-order dense).
    pub next_id: AtomicU64,
    /// Idempotency-token → session-id routes ([`TokenRoutes`]): the
    /// owning store performs the authoritative dedup; this map only
    /// guarantees a retried `(open <token>)` pins to the same shard.
    pub open_tokens: Mutex<TokenRoutes>,
    /// The replication log, when the server runs as a primary.
    pub wal: Option<Mutex<Wal>>,
    /// The listen address (shards self-connect to unblock the
    /// acceptor when a client-initiated shutdown sets `stop`).
    pub addr: SocketAddr,
}

impl SharedState {
    /// Shard count.
    pub fn nshards(&self) -> usize {
        self.queues.len()
    }

    /// The shard session `id` is pinned to.
    pub fn home(&self, id: u64) -> usize {
        (id % self.nshards() as u64) as usize
    }

    /// Begin drain (idempotent) and unblock the acceptor.
    pub fn begin_stop(&self) {
        if !self.stop.swap(true, Ordering::SeqCst) {
            // Fire-and-forget self-connect; the acceptor wakes, sees
            // `stop`, and exits. Failure is harmless (listener gone).
            let _ = TcpStream::connect(self.addr);
        }
    }

    /// Sum every shard's published stats cell.
    pub fn stats_reply(&self) -> Reply {
        let mut body = StatsBody {
            sessions: 0,
            evictions: 0,
            resumes: 0,
            requests: 0,
            counts: [0u64; 22],
        };
        for cell in &self.stats {
            let c = cell.lock().unwrap_or_else(|e| e.into_inner());
            body.sessions += c.sessions;
            body.evictions += c.evictions;
            body.resumes += c.resumes;
            body.requests += c.requests;
            for (total, v) in body.counts.iter_mut().zip(c.counts.iter()) {
                *total += v;
            }
        }
        Reply::Stats(Box::new(body))
    }

    /// Merge every shard's published telemetry cells into one snapshot.
    /// Histogram merging is order-independent, so the deterministic
    /// section depends only on the multiset of served requests — not on
    /// which shard served what or when the cells are read.
    pub fn merged_telemetry(&self) -> (ShardMetrics, VolatileMetrics) {
        let mut reqs = ShardMetrics::default();
        for cell in &self.telemetry {
            reqs.merge(&cell.lock().unwrap_or_else(|e| e.into_inner()));
        }
        let mut vol = VolatileMetrics::default();
        for cell in &self.volatile {
            vol.merge(&cell.lock().unwrap_or_else(|e| e.into_inner()));
        }
        (reqs, vol)
    }

    /// The `(ok metrics …)` reply: both JSON sections from the merged
    /// snapshot.
    pub fn metrics_reply(&self) -> Reply {
        let (reqs, vol) = self.merged_telemetry();
        Reply::Metrics {
            deterministic: reqs.deterministic_json(),
            volatile: vol.json(&reqs),
        }
    }
}

/// Execute one routed action against the shard's store. The second
/// element is the journal-this flag: `true` when a mutating action
/// actually executed (sequenced retries answered from the dedup caches
/// return `false` and must *not* re-enter the WAL — the standby
/// already replayed the original).
fn execute(store: &mut SessionStore, action: &Action) -> (Reply, bool) {
    match action {
        Action::Open { id, token: None } => (store.open_with_id(*id), true),
        Action::Open { id, token: Some(t) } => store.open_with_token(*id, *t),
        Action::Eval { id, seq: None, src } => (store.eval(*id, src), true),
        Action::Eval {
            id,
            seq: Some(s),
            src,
        } => store.eval_seq(*id, *s, src),
        Action::Ledger { id } => (store.ledger(*id), false),
        Action::Digest { id } => (store.digest(*id), false),
        Action::Close { id, seq: None } => (store.close(*id), true),
        Action::Close { id, seq: Some(s) } => store.close_seq(*id, *s),
    }
}

/// Run the jobs currently in this shard's queue; returns how many ran.
///
/// WAL appends happen *before* the reply is completed into its outbox:
/// by the time a client can observe an acknowledgement, the record is
/// pullable. Mutating error replies (`no-such-session`, even a
/// contained panic) are logged too, so a standby replays the exact
/// request stream and the digest check keeps both sides honest.
fn run_queue_jobs(me: usize, store: &mut SessionStore, shared: &SharedState) -> usize {
    let jobs = shared.queues[me].drain_all();
    if jobs.is_empty() {
        return 0;
    }
    let tid = me as u32 + 1;
    let mut wal_appends = 0u64;
    // Sample run-queue occupancy at every non-empty drain (volatile:
    // depends on arrival timing).
    shared.volatile[me]
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .queue_depth
        .record(jobs.len() as u64);
    let mut completions: Vec<(Arc<Outbox>, u64, Reply)> = Vec::with_capacity(jobs.len());
    for job in jobs {
        let span = shared.trace.as_ref().map(|log| {
            let name = match &job.action {
                Action::Open { .. } => "run:open",
                Action::Eval { .. } => "run:eval",
                Action::Ledger { .. } => "run:ledger",
                Action::Digest { .. } => "run:digest",
                Action::Close { .. } => "run:close",
            };
            log.span(tid, name)
        });
        let (reply, applied) = catch_unwind(AssertUnwindSafe(|| execute(store, &job.action)))
            .unwrap_or_else(|_| (err("session", "panicked"), true));
        drop(span);
        if let Some(wal) = &shared.wal {
            let op = match &job.action {
                _ if !applied => None,
                Action::Open { token, .. } => Some(WalOp::Open { token: *token }),
                Action::Eval { seq, src, .. } => Some(WalOp::Eval {
                    seq: *seq,
                    src: src.clone(),
                }),
                Action::Close { seq, .. } => Some(WalOp::Close { seq: *seq }),
                Action::Ledger { .. } | Action::Digest { .. } => None,
            };
            if let Some(op) = op {
                wal.lock().unwrap_or_else(|e| e.into_inner()).append(
                    job.action.session(),
                    op,
                    reply_digest(&reply),
                );
                wal_appends += 1;
            }
        }
        if matches!(job.action, Action::Close { .. }) && matches!(reply, Reply::Closed { .. }) {
            // The session is gone: retire its token route so the
            // decode-time map stays bounded (duplicate retries stay
            // answerable for TOKEN_RETENTION closes).
            shared
                .open_tokens
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .note_close(job.action.session());
        }
        completions.push((job.outbox, job.seq, reply));
    }
    let ran = completions.len();
    // Publish this shard's stats and telemetry before releasing any
    // reply: a client that sees an acknowledgement and immediately asks
    // `(stats)` or `(metrics)` on another shard gets counters that
    // already include its request.
    *shared.stats[me].lock().unwrap_or_else(|e| e.into_inner()) = store.stats_body();
    *shared.telemetry[me]
        .lock()
        .unwrap_or_else(|e| e.into_inner()) = store.telemetry().clone();
    if wal_appends > 0 {
        shared.volatile[me]
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .wal_appended
            .add(wal_appends);
    }
    for (outbox, seq, reply) in completions {
        outbox.complete(seq, &reply);
    }
    ran
}

/// Decode-time handling of one decoded frame: answer connection-scoped
/// requests immediately, route session-scoped ones to their home
/// shard's bounded queue. `decoded` is [`Conn::next_request`]'s output
/// — the typed request, or the typed error reply a malformed frame
/// earned.
fn handle_request(
    me: usize,
    decoded: Result<Request, Reply>,
    conn: &mut Conn,
    shared: &SharedState,
) {
    let seq = conn.outbox.alloc();
    let req = match decoded {
        Ok(r) => r,
        Err(reply) => {
            conn.outbox.complete(seq, &reply);
            return;
        }
    };
    let route = |action: Action, conn: &Conn| {
        let target = shared.home(action.session());
        let job = Job {
            seq,
            outbox: Arc::clone(&conn.outbox),
            action,
        };
        if shared.queues[target].try_push(job).is_err() {
            // Shed at decode time: typed, ordered, connection intact.
            // The shed is charged to the shard whose queue was full.
            shared.volatile[target]
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .busy_sheds
                .inc();
            conn.outbox.complete(seq, &busy_reply(target));
        }
    };
    match req {
        Request::Hello { version, role } => {
            if version == PROTO_VERSION {
                conn.role = Some(role);
                conn.outbox.complete(
                    seq,
                    &Reply::Hello {
                        version: PROTO_VERSION,
                        node: NodeRole::Primary,
                    },
                );
            } else {
                conn.outbox
                    .complete(seq, &crate::protocol::unsupported_version_reply(version));
                conn.close_after_flush = true;
            }
        }
        Request::Stats => conn.outbox.complete(seq, &shared.stats_reply()),
        Request::Metrics => conn.outbox.complete(seq, &shared.metrics_reply()),
        Request::Ping => {
            // Answered at decode time so heartbeats stay cheap and
            // cannot be shed by a full run queue.
            let lsn = shared
                .wal
                .as_ref()
                .map(|w| w.lock().unwrap_or_else(|e| e.into_inner()).next_lsn())
                .unwrap_or(0);
            conn.outbox.complete(
                seq,
                &Reply::Pong {
                    lsn,
                    node: NodeRole::Primary,
                },
            );
        }
        Request::Shutdown => {
            conn.outbox.complete(seq, &Reply::Draining);
            shared.begin_stop();
        }
        Request::Pull { from } => {
            let reply = match (&conn.role, &shared.wal) {
                (Some(Role::Replica), Some(wal)) => {
                    let span = shared
                        .trace
                        .as_ref()
                        .map(|log| log.span(me as u32 + 1, "wal_ship"));
                    let wal = wal.lock().unwrap_or_else(|e| e.into_inner());
                    let (bytes, next) = wal.frames_from(from, PULL_BATCH_BYTES);
                    drop(span);
                    let mut vol = shared.volatile[me]
                        .lock()
                        .unwrap_or_else(|e| e.into_inner());
                    vol.wal_pull_batches.inc();
                    vol.wal_shipped.add(next.saturating_sub(from));
                    // `(pull <from>)` is the replica's applied-LSN
                    // confession: everything below `from` has been
                    // replayed on its side.
                    vol.note_wal_applied(from);
                    Reply::Frames { next, bytes }
                }
                (_, None) => err("repl", "disabled"),
                _ => err("proto", "not-a-replica"),
            };
            conn.outbox.complete(seq, &reply);
        }
        Request::Open { token: None } => {
            let id = shared.next_id.fetch_add(1, Ordering::SeqCst);
            route(Action::Open { id, token: None }, conn);
        }
        Request::Open { token: Some(t) } => {
            // Resolve the token to a stable id *before* pinning, so a
            // retried open routes to the same home shard as the
            // original and the store-level dedup can see it.
            let id = shared
                .open_tokens
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .resolve_or_insert(t, || shared.next_id.fetch_add(1, Ordering::SeqCst));
            route(Action::Open { id, token: Some(t) }, conn);
        }
        Request::Eval { id, seq, src } => route(Action::Eval { id, seq, src }, conn),
        Request::Ledger { id } => route(Action::Ledger { id }, conn),
        Request::Digest { id } => route(Action::Digest { id }, conn),
        Request::Close { id, seq } => route(Action::Close { id, seq }, conn),
    }
}

/// The shard event loop. Returns the shard's store once drained, so
/// the joiner can audit suspended blobs and aggregate final state.
pub fn shard_loop(
    me: usize,
    mut store: SessionStore,
    shared: Arc<SharedState>,
    max_conns: usize,
) -> SessionStore {
    let mut conns: Vec<Conn> = Vec::new();
    let mut decode_acked = false;
    let mut queue_acked = false;
    let nshards = shared.nshards();
    loop {
        let mut worked = 0usize;

        if !decode_acked {
            if shared.stop.load(Ordering::SeqCst) {
                // Barrier 1: this shard will never adopt, read, or
                // route again.
                decode_acked = true;
                shared.decode_done.fetch_add(1, Ordering::SeqCst);
            } else {
                // Adopt newly accepted connections, shedding over the
                // cap with a typed reply (never a silent close).
                let incoming: Vec<TcpStream> = shared.inboxes[me]
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .drain(..)
                    .collect();
                let accept_span = (!incoming.is_empty())
                    .then(|| shared.trace.as_ref())
                    .flatten()
                    .map(|log| log.span(me as u32 + 1, "accept"));
                for stream in incoming {
                    worked += 1;
                    if conns.len() >= max_conns {
                        let mut stream = stream;
                        let reject = err_with("busy", "too-many-connections", &[&me.to_string()]);
                        let _ = crate::protocol::write_frame(&mut stream, &reject.encode());
                        shared.volatile[me]
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .conn_sheds
                            .inc();
                        continue; // dropped: peer got the typed reply first
                    }
                    if let Ok(conn) = Conn::adopt(stream) {
                        conns.push(conn);
                    }
                }
                drop(accept_span);
                // Decode and route everything readable. Frames are
                // decoded borrowed straight out of the receive buffer
                // ([`Conn::next_request`]) — no per-frame text
                // allocation on this path.
                for conn in conns.iter_mut() {
                    conn.fill();
                    let mut decode_span = None;
                    while let Some(decoded) = conn.next_request() {
                        if decode_span.is_none() {
                            decode_span = shared
                                .trace
                                .as_ref()
                                .map(|log| log.span(me as u32 + 1, "decode"));
                        }
                        worked += 1;
                        handle_request(me, decoded, conn, &shared);
                    }
                    drop(decode_span);
                }
            }
        }

        // Execute whatever reached this shard's queue.
        worked += run_queue_jobs(me, &mut store, &shared);

        // Flush replies; retire finished connections. The span is only
        // recorded when some outbox actually had bytes in flight.
        let flush_t0 = shared.trace.as_ref().map(|log| log.now_us());
        let mut flushed_any = false;
        for conn in &mut conns {
            flushed_any |= conn.flush();
        }
        if flushed_any {
            if let (Some(log), Some(t0)) = (shared.trace.as_ref(), flush_t0) {
                log.record(me as u32 + 1, "flush", t0);
            }
        }
        conns.retain(|c| !c.finished());

        if decode_acked && shared.decode_done.load(Ordering::SeqCst) == nshards {
            // No producer remains anywhere. Drain to empty (each pass
            // may trigger synchronous LRU suspends — they complete
            // inside `run_queue_jobs`, so barrier 2 implies every
            // checkpoint blob is fully written).
            while !shared.queues[me].is_empty() {
                run_queue_jobs(me, &mut store, &shared);
            }
            if !queue_acked {
                queue_acked = true;
                shared.queues_done.fetch_add(1, Ordering::SeqCst);
            }
            if shared.queues_done.load(Ordering::SeqCst) == nshards {
                // Every reply in the system is completed; push the
                // remaining bytes out and go home.
                let deadline = Instant::now() + DRAIN_FLUSH_DEADLINE;
                loop {
                    let mut pending = false;
                    for conn in &mut conns {
                        pending |= conn.flush();
                    }
                    conns.retain(|c| !c.finished());
                    if !pending || Instant::now() >= deadline {
                        break;
                    }
                    std::thread::sleep(IDLE_SLEEP);
                }
                *shared.stats[me].lock().unwrap_or_else(|e| e.into_inner()) = store.stats_body();
                *shared.telemetry[me]
                    .lock()
                    .unwrap_or_else(|e| e.into_inner()) = store.telemetry().clone();
                return store;
            }
        }

        if worked == 0 {
            std::thread::sleep(IDLE_SLEEP);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job(seq: u64) -> Job {
        Job {
            seq,
            outbox: Outbox::new(),
            action: Action::Open {
                id: seq,
                token: None,
            },
        }
    }

    #[test]
    fn bounded_queue_sheds_deterministically() {
        let q = RunQueue::new(1);
        assert!(q.try_push(job(0)).is_ok());
        // Queue of one: the second push is always rejected, the
        // rejected job comes back intact for its busy reply.
        let back = q.try_push(job(1)).unwrap_err();
        assert_eq!(back.seq, 1);
        let drained = q.drain_all();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].seq, 0);
        assert!(q.is_empty());
        // Space freed: pushes succeed again.
        assert!(q.try_push(job(2)).is_ok());
    }

    #[test]
    fn token_routes_stay_bounded_but_pin_live_sessions() {
        let mut routes = TokenRoutes::new();
        let next = std::cell::Cell::new(0u64);
        let alloc = || {
            let id = next.get();
            next.set(id + 1);
            id
        };
        // A live session's route is pinned no matter how much churn
        // follows.
        let live = routes.resolve_or_insert(9999, alloc);
        for k in 0..(2 * TOKEN_RETENTION as u64) {
            let id = routes.resolve_or_insert(k, alloc);
            routes.note_close(id);
        }
        assert_eq!(routes.len(), TOKEN_RETENTION + 1);
        assert_eq!(routes.resolve_or_insert(9999, alloc), live);
        // A recently closed token still resolves to its original id…
        let recent = 2 * TOKEN_RETENTION as u64 - 1;
        let before = next.get();
        assert_eq!(routes.resolve_or_insert(recent, alloc), recent + 1);
        assert_eq!(next.get(), before, "recent retry must not allocate");
        // …while one evicted from the ring allocates fresh.
        assert_eq!(routes.resolve_or_insert(0, alloc), before);
        // Closing an untokenized session is a no-op.
        routes.note_close(u64::MAX);
    }

    #[test]
    fn actions_pin_to_their_session() {
        let a = Action::Eval {
            id: 7,
            seq: None,
            src: "(add 1 2)".to_string(),
        };
        assert_eq!(a.session(), 7);
        assert_eq!(Action::Close { id: 3, seq: None }.session(), 3);
    }
}
