//! The typed wire protocol: framing, grammar, and the public
//! [`Request`]/[`Reply`] API.
//!
//! This module is the **single home of the wire format**. No other
//! module (and no test) assembles or parses raw protocol text; they
//! construct [`Request`] values, encode them here, and decode the peer's
//! bytes back into [`Reply`] values. The blocking client in
//! [`crate::client`] and the nonblocking server connections in
//! [`crate::reactor`] both call into this module for every byte that
//! crosses the wire.
//!
//! # Wire grammar (protocol version [`PROTO_VERSION`])
//!
//! Every message — request or reply — is one *frame*: a 4-byte
//! little-endian payload length followed by that many bytes of UTF-8
//! s-expression text (one expression per frame, at most [`MAX_FRAME`]
//! bytes).
//!
//! ```text
//! request = (hello <version:int> <role>)     role = client | replica
//!         | (open)
//!         | (open <token:int>)               idempotent open
//!         | (eval <id:int> <form>...)
//!         | (seval <id:int> <seq:int> <form>...)   sequenced eval
//!         | (ledger <id:int>)
//!         | (digest <id:int>)
//!         | (stats)
//!         | (metrics)
//!         | (close <id:int>)
//!         | (close <id:int> <seq:int>)       sequenced close
//!         | (ping)
//!         | (shutdown)
//!         | (pull <lsn:int>)                 replica connections only
//!
//! reply   = (ok hello <version:int> <node>)   node = primary | standby
//!         | (ok opened <id:int>)
//!         | (ok value <form>)
//!         | (ok ledger (<field:sym> <n:int>)*20)
//!         | (ok digest d<hex16>)
//!         | (ok stats (sessions <n>) (evictions <n>) (resumes <n>)
//!                     (requests <n>) (<counter:sym> <n:int>)*22)
//!         | (ok metrics <det-json:h-hex> <vol-json:h-hex>)
//!         | (ok closed <occupancy:int>)
//!         | (ok pong <lsn:int> <node>)
//!         | (ok draining)
//!         | (ok frames <next-lsn:int> <h-hex:sym>)
//!         | (err <class:sym> <code:sym> <atom>...)
//! ```
//!
//! `d<hex16>` is a symbol: `d` followed by 16 lowercase hex digits (the
//! reader has no token for a full 64-bit unsigned integer). `<h-hex>`
//! is a symbol `h` followed by an even number of lowercase hex digits
//! carrying a binary payload (possibly zero digits — an empty one):
//! concatenated WAL frames in `(ok frames …)`, UTF-8 JSON snapshot text
//! in `(ok metrics …)`. The metrics reply carries two payloads — the
//! *deterministic* snapshot (virtual-cycle latency histograms; byte-
//! identical across same-seed runs) and the *volatile* one (wall-clock
//! histograms, queue depth, shed counters, WAL lag).
//!
//! The first request on a connection should be the versioned
//! handshake. A `hello` whose version is not [`PROTO_VERSION`] is
//! rejected with `(err proto unsupported-version <got> <want>)` and the
//! connection is closed; a `(pull …)` on a connection that did not
//! hand-shake as `replica` is rejected with `(err proto not-a-replica)`.
//! Requests other than `hello` are accepted without a handshake so
//! hand-rolled probes stay possible, but every in-tree client
//! hand-shakes first.
//!
//! Error replies carry a *class* naming the failing layer (`proto`,
//! `busy`, `session`, `compile`, `vm`, `heap`, `lp`, `persist`, `repl`)
//! and a kebab-case *code* naming the typed error variant — the full
//! `VmError`/`LpError`/`PersistError` surface maps to a reply; nothing
//! panics across the wire. `(err busy queue-full <shard>)` is the
//! back-pressure reply: the target shard's bounded run queue was full
//! and the request was shed (the connection stays open).
//!
//! # Exactly-once retries (version 3)
//!
//! Version 3 adds the optional *idempotency* surface a retrying client
//! uses after a connection reset: `(open <token>)` re-routes a retried
//! open to the session the token already created and returns the same
//! `(ok opened <id>)`; `(seval <id> <seq> <form>...)` and
//! `(close <id> <seq>)` carry a dense per-session sequence number so a
//! retried mutating request is answered from the server's dedup window
//! instead of re-executing. A seq ahead of the session's cursor is
//! `(err session seq-gap <expected> <got>)`; one that has fallen out of
//! the window is `(err session seq-too-old <seq>)`. Seq-less requests
//! keep the version-2 at-most-once semantics unchanged. `(ping)` →
//! `(ok pong <lsn> <node>)` is the liveness heartbeat the standby's
//! primary lease counts; `lsn` is the primary's next WAL sequence
//! number (0 when replication is off).
//!
//! # Cluster role discovery (version 4)
//!
//! Version 4 adds a [`NodeRole`] atom to the two discovery replies:
//! `(ok hello <version> <node>)` and `(ok pong <lsn> <node>)`, where
//! `<node>` is `primary` or `standby`. A cluster-aware client redials
//! an ordered endpoint list after a reset and picks the first endpoint
//! whose handshake answers `primary`, so failover needs no extra
//! round-trips; a standby relay answers `standby` and refuses session
//! traffic with `(err repl not-primary)` while still serving
//! `(pull …)`, `(ping)`, and `(metrics)` to its own downstream chain.
//! Neither reply ever enters the byte-compared transcripts, so v3
//! transcripts stay byte-identical under v4.

use small_core::{LpError, LptStats};
use small_lisp::compiler::CompileError;
use small_lisp::vm::{BackendError, VmError};
use small_metrics::EventCounts;
use small_persist::PersistError;
use small_sexpr::{parse, print, print_into, Interner, ParseError, SExpr};
use std::borrow::Cow;
use std::io::{self, Read, Write};

/// Current protocol version, announced in the `(hello …)` handshake.
/// Version 2 added the `(metrics)` request and the `(requests <n>)`
/// field in `(ok stats …)`. Version 3 added `(ping)` heartbeats and
/// the optional idempotency fields: `(open <token>)`,
/// `(seval <id> <seq> …)`, `(close <id> <seq>)`. Version 4 added the
/// [`NodeRole`] atom to `(ok hello …)` and `(ok pong …)` for cluster
/// role discovery.
pub const PROTO_VERSION: u32 = 4;

/// Upper bound on a frame payload; a peer announcing more is corrupt
/// (or hostile) and the connection is dropped.
pub const MAX_FRAME: usize = 1 << 20;

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

/// Write one frame: 4-byte LE length, then the payload.
pub fn write_frame(w: &mut impl Write, text: &str) -> io::Result<()> {
    let len = u32::try_from(text.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    if text.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame too large",
        ));
    }
    w.write_all(&len.to_le_bytes())?;
    w.write_all(text.as_bytes())?;
    w.flush()
}

/// Read one frame. `Ok(None)` is a clean end-of-stream *at a frame
/// boundary*; EOF mid-frame, an oversized announcement, or non-UTF-8
/// payload are errors.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<String>> {
    let mut len_bytes = [0u8; 4];
    match r.read_exact(&mut len_bytes) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame exceeds MAX_FRAME",
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))
}

/// Incremental frame decoder for nonblocking reads: bytes go in as they
/// arrive, complete frames come out. Used by the server's event-loop
/// connections, which cannot block in [`read_frame`].
#[derive(Debug, Default)]
pub struct FrameBuf {
    buf: Vec<u8>,
    at: usize,
}

impl FrameBuf {
    /// An empty buffer.
    pub fn new() -> FrameBuf {
        FrameBuf::default()
    }

    /// Append freshly read bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Pop the next complete frame, if one is buffered, as an owned
    /// `String`. An oversized length announcement or non-UTF-8 payload
    /// is a protocol error — the connection should be dropped.
    pub fn pop(&mut self) -> io::Result<Option<String>> {
        Ok(self.pop_ref()?.map(str::to_string))
    }

    /// Pop the next complete frame *borrowed straight from the receive
    /// buffer* — the zero-copy variant of [`FrameBuf::pop`]. The text
    /// stays valid until the next call that touches the buffer; decode
    /// it (or copy it out) before feeding more bytes. Error conditions
    /// are identical to [`FrameBuf::pop`].
    pub fn pop_ref(&mut self) -> io::Result<Option<&str>> {
        if self.buf.len() - self.at < 4 {
            self.compact();
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[self.at..self.at + 4].try_into().unwrap()) as usize;
        if len > MAX_FRAME {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "frame exceeds MAX_FRAME",
            ));
        }
        if self.buf.len() - self.at < 4 + len {
            self.compact();
            return Ok(None);
        }
        let start = self.at + 4;
        let text = std::str::from_utf8(&self.buf[start..start + len])
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))?;
        self.at = start + len;
        Ok(Some(text))
    }

    /// True if a partial frame is buffered (EOF now would be torn).
    pub fn has_partial(&self) -> bool {
        self.at < self.buf.len()
    }

    fn compact(&mut self) {
        if self.at > 0 {
            self.buf.drain(..self.at);
            self.at = 0;
        }
    }
}

// ---------------------------------------------------------------------
// Hex-symbol codec (binary payloads inside the symbolic reader)
// ---------------------------------------------------------------------

/// Encode bytes as the `h<hex>` symbol used by `(ok frames …)`.
/// Payloads run up to [`MAX_FRAME`], so the digits are pushed directly
/// rather than through a per-byte `format!`.
pub fn hex_sym(bytes: &[u8]) -> String {
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    let mut s = String::with_capacity(1 + bytes.len() * 2);
    s.push('h');
    for &b in bytes {
        s.push(DIGITS[(b >> 4) as usize] as char);
        s.push(DIGITS[(b & 0xf) as usize] as char);
    }
    s
}

/// Decode an `h<hex>` symbol back to bytes.
pub fn parse_hex_sym(sym: &str) -> Option<Vec<u8>> {
    let hex = sym.strip_prefix('h')?;
    if hex.len() % 2 != 0 {
        return None;
    }
    let mut out = Vec::with_capacity(hex.len() / 2);
    let b = hex.as_bytes();
    for pair in b.chunks(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        if pair[0].is_ascii_uppercase() || pair[1].is_ascii_uppercase() {
            return None; // canonical form is lowercase
        }
        out.push((hi * 16 + lo) as u8);
    }
    Some(out)
}

// ---------------------------------------------------------------------
// Typed requests
// ---------------------------------------------------------------------

/// Connection role declared in the `(hello …)` handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// An ordinary session client.
    Client,
    /// A warm-standby replica pulling WAL frames.
    Replica,
}

impl Role {
    fn name(self) -> &'static str {
        match self {
            Role::Client => "client",
            Role::Replica => "replica",
        }
    }
}

/// Cluster role a node announces in its `(ok hello …)` and
/// `(ok pong …)` replies (version 4). A cluster-aware client scans its
/// endpoint list for the node answering [`NodeRole::Primary`]; a
/// standby relay answers [`NodeRole::Standby`] and refuses session
/// traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeRole {
    /// The node executing sessions and appending to the WAL.
    Primary,
    /// A warm standby replaying the primary's WAL (possibly relaying
    /// it further down the chain).
    Standby,
}

impl NodeRole {
    /// The wire atom for this role.
    pub fn name(self) -> &'static str {
        match self {
            NodeRole::Primary => "primary",
            NodeRole::Standby => "standby",
        }
    }

    fn parse(text: &str) -> Option<NodeRole> {
        match text {
            "primary" => Some(NodeRole::Primary),
            "standby" => Some(NodeRole::Standby),
            _ => None,
        }
    }
}

/// A client→server request, one per frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// `(hello <version> <role>)` — the versioned handshake.
    Hello {
        /// Protocol version the peer speaks.
        version: u32,
        /// Declared connection role.
        role: Role,
    },
    /// `(open)` / `(open <token>)` — create a session. A token makes
    /// the open idempotent: retrying the same token returns the same
    /// `(ok opened <id>)` instead of creating a second session.
    Open {
        /// Optional idempotency token (client-chosen, globally unique).
        token: Option<u64>,
    },
    /// `(eval <id> <form>...)` / `(seval <id> <seq> <form>...)` — run
    /// forms on the session's machine. `src` is the canonical printed
    /// text of the forms, space-joined.
    Eval {
        /// Target session.
        id: u64,
        /// Optional per-session sequence number (dense from 0). A
        /// sequenced request is executed at most once; retries are
        /// answered from the dedup window.
        seq: Option<u64>,
        /// Canonical program text.
        src: String,
    },
    /// `(ledger <id>)` — the session's `LptStats` ledger.
    Ledger {
        /// Target session.
        id: u64,
    },
    /// `(digest <id>)` — the session's running transcript digest.
    Digest {
        /// Target session.
        id: u64,
    },
    /// `(stats)` — server-wide aggregate counters.
    Stats,
    /// `(metrics)` — the server-wide telemetry snapshot (deterministic
    /// and volatile JSON sections as hex-symbol payloads).
    Metrics,
    /// `(close <id>)` / `(close <id> <seq>)` — shut the session's
    /// machine down.
    Close {
        /// Target session.
        id: u64,
        /// Optional per-session sequence number (same space as
        /// sequenced evals).
        seq: Option<u64>,
    },
    /// `(ping)` — liveness heartbeat; answered at decode time.
    Ping,
    /// `(shutdown)` — begin graceful server drain.
    Shutdown,
    /// `(pull <lsn>)` — fetch WAL frames starting at `from` (replica
    /// connections only).
    Pull {
        /// First log sequence number wanted.
        from: u64,
    },
}

/// Re-print payload forms, space-joined, into one buffer — the
/// session compiles canonical text with its own interner. One
/// allocation regardless of form count.
fn join_forms(forms: &[&SExpr], interner: &Interner) -> String {
    let mut src = String::new();
    for (k, f) in forms.iter().enumerate() {
        if k > 0 {
            src.push(' ');
        }
        print_into(&mut src, f, interner);
    }
    src
}

impl Request {
    /// Canonical wire text of the request.
    pub fn encode(&self) -> String {
        match self {
            Request::Hello { version, role } => {
                format!("(hello {version} {})", role.name())
            }
            Request::Open { token: None } => "(open)".to_string(),
            Request::Open { token: Some(t) } => format!("(open {t})"),
            Request::Eval { id, seq: None, src } => format!("(eval {id} {src})"),
            Request::Eval {
                id,
                seq: Some(s),
                src,
            } => format!("(seval {id} {s} {src})"),
            Request::Ledger { id } => format!("(ledger {id})"),
            Request::Digest { id } => format!("(digest {id})"),
            Request::Stats => "(stats)".to_string(),
            Request::Metrics => "(metrics)".to_string(),
            Request::Close { id, seq: None } => format!("(close {id})"),
            Request::Close { id, seq: Some(s) } => format!("(close {id} {s})"),
            Request::Ping => "(ping)".to_string(),
            Request::Shutdown => "(shutdown)".to_string(),
            Request::Pull { from } => format!("(pull {from})"),
        }
    }

    /// Decode one request frame. On failure the caller gets the typed
    /// error [`Reply`] to send back (`proto` class: parse error or
    /// `bad-request`).
    pub fn decode(text: &str) -> Result<Request, Reply> {
        let mut scratch = Interner::new();
        let expr = match parse(text, &mut scratch) {
            Ok(e) => e,
            Err(e) => return Err(parse_error_reply(&e)),
        };
        let bad = || Err(err("proto", "bad-request"));
        let items: Vec<&SExpr> = expr.iter().collect();
        let Some(head) = items.first().and_then(|h| h.as_sym()) else {
            return bad();
        };
        let uint = |k: usize| -> Option<u64> {
            items
                .get(k)
                .and_then(|e| e.as_int())
                .and_then(|i| u64::try_from(i).ok())
        };
        match scratch.name(head) {
            "hello" if items.len() == 3 => {
                let Some(version) = uint(1).and_then(|v| u32::try_from(v).ok()) else {
                    return bad();
                };
                let role = match items[2].as_sym().map(|s| scratch.name(s)) {
                    Some("client") => Role::Client,
                    Some("replica") => Role::Replica,
                    _ => return bad(),
                };
                Ok(Request::Hello { version, role })
            }
            "open" if items.len() == 1 => Ok(Request::Open { token: None }),
            "open" if items.len() == 2 => match uint(1) {
                Some(t) => Ok(Request::Open { token: Some(t) }),
                None => bad(),
            },
            "eval" if items.len() >= 3 => {
                let Some(id) = uint(1) else { return bad() };
                Ok(Request::Eval {
                    id,
                    seq: None,
                    src: join_forms(&items[2..], &scratch),
                })
            }
            "seval" if items.len() >= 4 => {
                let (Some(id), Some(seq)) = (uint(1), uint(2)) else {
                    return bad();
                };
                Ok(Request::Eval {
                    id,
                    seq: Some(seq),
                    src: join_forms(&items[3..], &scratch),
                })
            }
            "ledger" if items.len() == 2 => match uint(1) {
                Some(id) => Ok(Request::Ledger { id }),
                None => bad(),
            },
            "digest" if items.len() == 2 => match uint(1) {
                Some(id) => Ok(Request::Digest { id }),
                None => bad(),
            },
            "stats" if items.len() == 1 => Ok(Request::Stats),
            "metrics" if items.len() == 1 => Ok(Request::Metrics),
            "close" if items.len() == 2 => match uint(1) {
                Some(id) => Ok(Request::Close { id, seq: None }),
                None => bad(),
            },
            "close" if items.len() == 3 => match (uint(1), uint(2)) {
                (Some(id), Some(seq)) => Ok(Request::Close { id, seq: Some(seq) }),
                _ => bad(),
            },
            "ping" if items.len() == 1 => Ok(Request::Ping),
            "shutdown" if items.len() == 1 => Ok(Request::Shutdown),
            "pull" if items.len() == 2 => match uint(1) {
                Some(from) => Ok(Request::Pull { from }),
                None => bad(),
            },
            _ => bad(),
        }
    }
}

// ---------------------------------------------------------------------
// Typed replies
// ---------------------------------------------------------------------

/// The `(ok stats …)` body: manager-level counters plus the 22
/// aggregated event-count words (in [`EventCounts::WORD_NAMES`] order).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsBody {
    /// Live sessions (any state).
    pub sessions: u64,
    /// Lifetime LRU evictions.
    pub evictions: u64,
    /// Lifetime resume-on-touch events.
    pub resumes: u64,
    /// Session-targeting requests served (all kinds).
    pub requests: u64,
    /// Aggregated [`EventCounts`] words.
    pub counts: [u64; 22],
}

/// A server→client reply, one per frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    /// `(ok hello <version> <node>)` — handshake accepted.
    Hello {
        /// Version the server speaks (always [`PROTO_VERSION`]).
        version: u32,
        /// Cluster role of the answering node.
        node: NodeRole,
    },
    /// `(ok opened <id>)`.
    Opened {
        /// The new session's id.
        id: u64,
    },
    /// `(ok value <form>)` — an evaluation result, canonically printed.
    Value {
        /// Canonical printed text of the value.
        text: String,
    },
    /// `(ok ledger …)` — the session's full `LptStats`.
    Ledger(Box<LptStats>),
    /// `(ok digest d<hex16>)`.
    Digest {
        /// The session's running transcript digest.
        digest: u64,
    },
    /// `(ok stats …)`.
    Stats(Box<StatsBody>),
    /// `(ok metrics <h-hex> <h-hex>)` — the telemetry snapshot's
    /// deterministic and volatile JSON sections, hex-encoded so
    /// harnesses can byte-compare the deterministic payload without
    /// parsing JSON.
    Metrics {
        /// Fixed-key-order JSON: virtual-cycle latency histograms and
        /// per-kind request counts. Byte-identical across same-seed
        /// runs.
        deterministic: String,
        /// Fixed-key-order JSON: wall-clock histograms, queue depth,
        /// shed counters, WAL-replication lag. Never byte-compared.
        volatile: String,
    },
    /// `(ok closed <occupancy>)`.
    Closed {
        /// Residual LPT occupancy the closed session left behind.
        occupancy: u64,
    },
    /// `(ok pong <lsn> <node>)` — heartbeat answer carrying the
    /// answering node's next WAL sequence number (a standby answers
    /// its applied LSN; 0 when replication is off).
    Pong {
        /// Next WAL LSN on the answering server.
        lsn: u64,
        /// Cluster role of the answering node.
        node: NodeRole,
    },
    /// `(ok draining)` — shutdown acknowledged.
    Draining,
    /// `(ok frames <next-lsn> <h-hex>)` — a batch of WAL frames.
    Frames {
        /// LSN to pull from next.
        next: u64,
        /// Concatenated encoded WAL frames (possibly empty).
        bytes: Vec<u8>,
    },
    /// `(err <class> <code> <atom>...)`.
    ///
    /// Class and code are `Cow`s: the typed error constructors below
    /// borrow their `'static` vocabulary (no allocation on the error
    /// path), while [`Reply::decode`] owns what it read off the wire.
    /// `Cow`'s `PartialEq` compares contents, so the two origins are
    /// interchangeable.
    Err {
        /// Failing layer (`proto`, `busy`, `vm`, …).
        class: Cow<'static, str>,
        /// Kebab-case variant code.
        code: Cow<'static, str>,
        /// Extra atoms (each printed as one token).
        detail: Vec<String>,
    },
}

/// The ledger field names, in `LptStats` declaration order — shared by
/// the encoder, the decoder, and anything formatting ledgers.
pub const LEDGER_FIELDS: [&str; 20] = [
    "refops",
    "ep-refops",
    "gets",
    "frees",
    "hits",
    "misses",
    "pseudo-overflows",
    "compressed",
    "cycle-collections",
    "cycles-reclaimed",
    "max-occupancy",
    "occupancy-sum",
    "occupancy-samples",
    "max-refcount",
    "max-ep-refcount",
    "faults-detected",
    "faults-recovered",
    "overflow-entries",
    "overflow-exits",
    "heap-direct-ops",
];

fn ledger_words(s: &LptStats) -> [u64; 20] {
    [
        s.refops,
        s.ep_refops,
        s.gets,
        s.frees,
        s.hits,
        s.misses,
        s.pseudo_overflows,
        s.compressed,
        s.cycle_collections,
        s.cycles_reclaimed,
        s.max_occupancy as u64,
        s.occupancy_sum,
        s.occupancy_samples,
        u64::from(s.max_refcount),
        u64::from(s.max_ep_refcount),
        s.faults_detected,
        s.faults_recovered,
        s.overflow_entries,
        s.overflow_exits,
        s.heap_direct_ops,
    ]
}

fn ledger_from_words(w: &[u64; 20]) -> Option<LptStats> {
    Some(LptStats {
        refops: w[0],
        ep_refops: w[1],
        gets: w[2],
        frees: w[3],
        hits: w[4],
        misses: w[5],
        pseudo_overflows: w[6],
        compressed: w[7],
        cycle_collections: w[8],
        cycles_reclaimed: w[9],
        max_occupancy: usize::try_from(w[10]).ok()?,
        occupancy_sum: w[11],
        occupancy_samples: w[12],
        max_refcount: u32::try_from(w[13]).ok()?,
        max_ep_refcount: u32::try_from(w[14]).ok()?,
        faults_detected: w[15],
        faults_recovered: w[16],
        overflow_entries: w[17],
        overflow_exits: w[18],
        heap_direct_ops: w[19],
    })
}

impl Reply {
    /// Canonical wire text of the reply.
    pub fn encode(&self) -> String {
        match self {
            Reply::Hello { version, node } => {
                format!("(ok hello {version} {})", node.name())
            }
            Reply::Opened { id } => format!("(ok opened {id})"),
            Reply::Value { text } => format!("(ok value {text})"),
            Reply::Ledger(stats) => {
                let words = ledger_words(stats);
                let mut out = String::from("(ok ledger");
                for (name, v) in LEDGER_FIELDS.iter().zip(words.iter()) {
                    out.push_str(&format!(" ({name} {v})"));
                }
                out.push(')');
                out
            }
            Reply::Digest { digest } => format!("(ok digest d{digest:016x})"),
            Reply::Stats(body) => {
                let mut out = format!(
                    "(ok stats (sessions {}) (evictions {}) (resumes {}) (requests {})",
                    body.sessions, body.evictions, body.resumes, body.requests
                );
                for (name, v) in EventCounts::WORD_NAMES.iter().zip(body.counts.iter()) {
                    out.push_str(&format!(" ({} {v})", name.replace('_', "-")));
                }
                out.push(')');
                out
            }
            Reply::Metrics {
                deterministic,
                volatile,
            } => format!(
                "(ok metrics {} {})",
                hex_sym(deterministic.as_bytes()),
                hex_sym(volatile.as_bytes())
            ),
            Reply::Closed { occupancy } => format!("(ok closed {occupancy})"),
            Reply::Pong { lsn, node } => format!("(ok pong {lsn} {})", node.name()),
            Reply::Draining => "(ok draining)".to_string(),
            Reply::Frames { next, bytes } => {
                format!("(ok frames {next} {})", hex_sym(bytes))
            }
            Reply::Err {
                class,
                code,
                detail,
            } => {
                let mut out = format!("(err {class} {code}");
                for d in detail {
                    out.push(' ');
                    out.push_str(d);
                }
                out.push(')');
                out
            }
        }
    }

    /// Decode one reply frame. `None` means the text is not a
    /// well-formed reply of this protocol version.
    pub fn decode(text: &str) -> Option<Reply> {
        let mut scratch = Interner::new();
        let expr = parse(text, &mut scratch).ok()?;
        let items: Vec<&SExpr> = expr.iter().collect();
        let head = scratch.name(items.first()?.as_sym()?).to_string();
        match head.as_str() {
            "ok" => {
                let tag = scratch.name(items.get(1)?.as_sym()?).to_string();
                match tag.as_str() {
                    "hello" if items.len() == 4 => Some(Reply::Hello {
                        version: u32::try_from(items[2].as_int()?).ok()?,
                        node: NodeRole::parse(scratch.name(items[3].as_sym()?))?,
                    }),
                    "opened" if items.len() == 3 => Some(Reply::Opened {
                        id: u64::try_from(items[2].as_int()?).ok()?,
                    }),
                    "value" if items.len() == 3 => Some(Reply::Value {
                        text: print(items[2], &scratch),
                    }),
                    "ledger" if items.len() == 2 + LEDGER_FIELDS.len() => {
                        let mut words = [0u64; 20];
                        for (k, slot) in words.iter_mut().enumerate() {
                            let pair: Vec<&SExpr> = items[2 + k].iter().collect();
                            if pair.len() != 2 {
                                return None;
                            }
                            let name = scratch.name(pair[0].as_sym()?);
                            if name != LEDGER_FIELDS[k] {
                                return None;
                            }
                            *slot = u64::try_from(pair[1].as_int()?).ok()?;
                        }
                        Some(Reply::Ledger(Box::new(ledger_from_words(&words)?)))
                    }
                    "digest" if items.len() == 3 => {
                        let sym = scratch.name(items[2].as_sym()?);
                        let hex = sym.strip_prefix('d')?;
                        if hex.len() != 16 {
                            return None;
                        }
                        Some(Reply::Digest {
                            digest: u64::from_str_radix(hex, 16).ok()?,
                        })
                    }
                    "stats" if items.len() == 6 + EventCounts::WORD_NAMES.len() => {
                        let pair = |k: usize, want: &str| -> Option<u64> {
                            let p: Vec<&SExpr> = items[k].iter().collect();
                            if p.len() != 2 || scratch.name(p[0].as_sym()?) != want {
                                return None;
                            }
                            u64::try_from(p[1].as_int()?).ok()
                        };
                        let sessions = pair(2, "sessions")?;
                        let evictions = pair(3, "evictions")?;
                        let resumes = pair(4, "resumes")?;
                        let requests = pair(5, "requests")?;
                        let mut counts = [0u64; 22];
                        for (k, slot) in counts.iter_mut().enumerate() {
                            let want = EventCounts::WORD_NAMES[k].replace('_', "-");
                            *slot = pair(6 + k, &want)?;
                        }
                        Some(Reply::Stats(Box::new(StatsBody {
                            sessions,
                            evictions,
                            resumes,
                            requests,
                            counts,
                        })))
                    }
                    "metrics" if items.len() == 4 => {
                        let det = parse_hex_sym(scratch.name(items[2].as_sym()?))?;
                        let vol = parse_hex_sym(scratch.name(items[3].as_sym()?))?;
                        Some(Reply::Metrics {
                            deterministic: String::from_utf8(det).ok()?,
                            volatile: String::from_utf8(vol).ok()?,
                        })
                    }
                    "closed" if items.len() == 3 => Some(Reply::Closed {
                        occupancy: u64::try_from(items[2].as_int()?).ok()?,
                    }),
                    "pong" if items.len() == 4 => Some(Reply::Pong {
                        lsn: u64::try_from(items[2].as_int()?).ok()?,
                        node: NodeRole::parse(scratch.name(items[3].as_sym()?))?,
                    }),
                    "draining" if items.len() == 2 => Some(Reply::Draining),
                    "frames" if items.len() == 4 => {
                        let next = u64::try_from(items[2].as_int()?).ok()?;
                        let bytes = parse_hex_sym(scratch.name(items[3].as_sym()?))?;
                        Some(Reply::Frames { next, bytes })
                    }
                    _ => None,
                }
            }
            "err" if items.len() >= 3 => {
                let class = Cow::Owned(scratch.name(items[1].as_sym()?).to_string());
                let code = Cow::Owned(scratch.name(items[2].as_sym()?).to_string());
                let detail = items[3..]
                    .iter()
                    .map(|e| print(e, &scratch))
                    .collect::<Vec<_>>();
                Some(Reply::Err {
                    class,
                    code,
                    detail,
                })
            }
            _ => None,
        }
    }

    /// True for `(err …)` replies.
    pub fn is_err(&self) -> bool {
        matches!(self, Reply::Err { .. })
    }
}

// ---------------------------------------------------------------------
// Typed error-reply constructors
// ---------------------------------------------------------------------

/// Build an `(err <class> <code>)` reply. The class/code vocabulary is
/// `'static`, so no allocation happens until the reply is encoded.
pub fn err(class: &'static str, code: &'static str) -> Reply {
    Reply::Err {
        class: Cow::Borrowed(class),
        code: Cow::Borrowed(code),
        detail: Vec::new(),
    }
}

/// An `(err <class> <code> <detail>...)` reply with extra atoms.
pub fn err_with(class: &'static str, code: &'static str, detail: &[&str]) -> Reply {
    Reply::Err {
        class: Cow::Borrowed(class),
        code: Cow::Borrowed(code),
        detail: detail.iter().map(|d| d.to_string()).collect(),
    }
}

/// The back-pressure reply: `shard`'s bounded run queue was full.
pub fn busy_reply(shard: usize) -> Reply {
    err_with("busy", "queue-full", &[&shard.to_string()])
}

/// The dedup-window reply for a sequence number ahead of the session's
/// cursor: the client skipped a request.
pub fn seq_gap_reply(expected: u64, got: u64) -> Reply {
    err_with(
        "session",
        "seq-gap",
        &[&expected.to_string(), &got.to_string()],
    )
}

/// The dedup-window reply for a sequence number that has fallen out of
/// the replay window — the retry arrived too late to be answered from
/// cache.
pub fn seq_too_old_reply(seq: u64) -> Reply {
    err_with("session", "seq-too-old", &[&seq.to_string()])
}

/// The handshake-rejection reply for a version the server does not
/// speak.
pub fn unsupported_version_reply(got: u32) -> Reply {
    err_with(
        "proto",
        "unsupported-version",
        &[&got.to_string(), &PROTO_VERSION.to_string()],
    )
}

fn heap_code(e: small_heap::controller::HeapError) -> &'static str {
    use small_heap::controller::HeapError;
    match e {
        HeapError::Exhausted => "exhausted",
        HeapError::NotAnObject => "not-an-object",
        HeapError::BadAddress => "bad-address",
        HeapError::Transient => "transient",
    }
}

/// Typed reply for a parse failure of the client's payload.
pub fn parse_error_reply(e: &ParseError) -> Reply {
    let code = match e {
        ParseError::UnexpectedEof => "unexpected-eof",
        ParseError::UnbalancedClose(_) => "unbalanced-close",
        ParseError::BadDot(_) => "bad-dot",
        ParseError::TrailingInput(_) => "trailing-input",
    };
    err("proto", code)
}

/// Typed reply for a compile failure of the client's program.
pub fn compile_error_reply(e: &CompileError) -> Reply {
    let code = match e {
        CompileError::BadForm(_) => "bad-form",
        CompileError::NoSuchLabel(_) => "no-such-label",
        CompileError::BadCallHead => "bad-call-head",
        CompileError::NestedDef => "nested-def",
    };
    err("compile", code)
}

/// Typed reply for an LP failure (cyclic write-out, degraded-mode
/// refusal, …) surfaced outside the VM's error chain.
pub fn lp_error_reply(e: &LpError) -> Reply {
    match e {
        LpError::TrueOverflow => err("lp", "true-overflow"),
        LpError::Heap(h) => err_with("lp", "heap", &[heap_code(*h)]),
        LpError::NotAList => err("lp", "not-a-list"),
        LpError::UnexpectedTag(_) => err("lp", "unexpected-tag"),
        LpError::Degraded(_) => err("lp", "degraded"),
        LpError::Cyclic => err("lp", "cyclic"),
    }
}

/// Typed reply for every VM runtime failure, including the backend
/// chain (`VmError::Backend(BackendError::…)`).
pub fn vm_error_reply(e: &VmError) -> Reply {
    match e {
        VmError::Unbound(_) => err("vm", "unbound"),
        VmError::NoSuchFunction(_) => err("vm", "no-such-function"),
        VmError::TypeError(op) => err_with("vm", "type-error", &[op]),
        VmError::DivideByZero => err("vm", "divide-by-zero"),
        VmError::StackUnderflow => err("vm", "stack-underflow"),
        VmError::ReadEof => err("vm", "read-eof"),
        VmError::StepBudget => err("vm", "step-budget"),
        VmError::Backend(b) => match b {
            BackendError::TrueOverflow => err("lp", "true-overflow"),
            BackendError::Heap(h) => err_with("heap", "fault", &[heap_code(*h)]),
            BackendError::NotAList => err("lp", "not-a-list"),
            BackendError::UnexpectedTag(_) => err("lp", "unexpected-tag"),
            BackendError::Degraded(_) => err("lp", "degraded"),
        },
    }
}

/// Typed reply for a persistence failure while suspending or resuming
/// a session (a corrupt checkpoint blob fails closed as an error reply
/// on the session that touched it, never a panic).
pub fn persist_error_reply(e: &PersistError) -> Reply {
    let code = match e {
        PersistError::NoCheckpoint => "no-checkpoint",
        PersistError::CorruptCheckpoint(_) => "corrupt-checkpoint",
        PersistError::UnsupportedVersion(_) => "unsupported-version",
        PersistError::CorruptJournal { .. } => "corrupt-journal",
        PersistError::ReplayDivergence { .. } => "replay-divergence",
        PersistError::MalformedImage(_) => "malformed-image",
        PersistError::Crash { .. } => "crash",
    };
    err("persist", code)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "(open)").unwrap();
        write_frame(&mut buf, "(eval 0 (add 1 2))").unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("(open)"));
        assert_eq!(
            read_frame(&mut r).unwrap().as_deref(),
            Some("(eval 0 (add 1 2))")
        );
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn torn_frame_is_an_error_not_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "(open)").unwrap();
        buf.truncate(buf.len() - 2);
        let mut r = buf.as_slice();
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn oversized_frame_refused() {
        let mut buf = ((MAX_FRAME + 1) as u32).to_le_bytes().to_vec();
        buf.extend_from_slice(b"xx");
        assert!(read_frame(&mut buf.as_slice()).is_err());
        let mut fb = FrameBuf::new();
        fb.extend(&buf);
        assert!(fb.pop().is_err());
    }

    #[test]
    fn frame_buf_reassembles_split_frames() {
        let mut wire = Vec::new();
        write_frame(&mut wire, "(open)").unwrap();
        write_frame(&mut wire, "(stats)").unwrap();
        // Feed the bytes one at a time; frames pop exactly at their
        // boundaries.
        let mut fb = FrameBuf::new();
        let mut seen = Vec::new();
        for &b in &wire {
            fb.extend(&[b]);
            while let Some(f) = fb.pop().unwrap() {
                seen.push(f);
            }
        }
        assert_eq!(seen, vec!["(open)".to_string(), "(stats)".to_string()]);
        assert!(!fb.has_partial());
    }

    #[test]
    fn hex_sym_round_trips() {
        for bytes in [&b""[..], &b"\x00\xff\x10"[..], &b"hello"[..]] {
            let sym = hex_sym(bytes);
            assert_eq!(parse_hex_sym(&sym).as_deref(), Some(bytes));
        }
        assert_eq!(parse_hex_sym("habc"), None, "odd digit count");
        assert_eq!(parse_hex_sym("xff"), None, "bad prefix");
        assert_eq!(parse_hex_sym("hAB"), None, "uppercase is non-canonical");
    }

    #[test]
    fn borrowed_pop_at_every_split_boundary() {
        // One frame with a binary hex-armored payload, torn at every
        // possible byte boundary (through the length prefix and
        // through the payload): the borrowed pop never yields early,
        // never yields torn text, and the completed frame decodes to
        // the original reply.
        let reply = Reply::Frames {
            next: 7,
            bytes: (0u8..=63).collect(),
        };
        let mut wire = Vec::new();
        write_frame(&mut wire, &reply.encode()).unwrap();
        for cut in 0..=wire.len() {
            let mut fb = FrameBuf::new();
            fb.extend(&wire[..cut]);
            let early = fb.pop_ref().unwrap().map(str::to_string);
            assert_eq!(
                early.is_some(),
                cut == wire.len(),
                "pop at cut {cut}/{}",
                wire.len()
            );
            if cut < wire.len() {
                assert_eq!(fb.has_partial(), cut > 0, "partial at cut {cut}");
                fb.extend(&wire[cut..]);
            }
            let text = match early {
                Some(t) => t,
                None => fb.pop_ref().unwrap().expect("frame complete").to_string(),
            };
            assert_eq!(Reply::decode(&text).as_ref(), Some(&reply));
            assert!(!fb.has_partial());
            assert_eq!(fb.pop_ref().unwrap(), None);
        }
    }

    #[test]
    fn request_decode_matches_grammar() {
        assert_eq!(Request::decode("(open)"), Ok(Request::Open { token: None }));
        assert_eq!(
            Request::decode("(open 99)"),
            Ok(Request::Open { token: Some(99) })
        );
        assert_eq!(
            Request::decode("(hello 1 replica)"),
            Ok(Request::Hello {
                version: 1,
                role: Role::Replica
            })
        );
        assert_eq!(
            Request::decode("(eval 3 (add 1 2) (car x))"),
            Ok(Request::Eval {
                id: 3,
                seq: None,
                src: "(add 1 2) (car x)".to_string()
            })
        );
        assert_eq!(
            Request::decode("(seval 3 7 (add 1 2))"),
            Ok(Request::Eval {
                id: 3,
                seq: Some(7),
                src: "(add 1 2)".to_string()
            })
        );
        assert_eq!(
            Request::decode("(close 4 2)"),
            Ok(Request::Close {
                id: 4,
                seq: Some(2)
            })
        );
        assert_eq!(Request::decode("(ping)"), Ok(Request::Ping));
        assert_eq!(Request::decode("(pull 17)"), Ok(Request::Pull { from: 17 }));
        assert_eq!(Request::decode("(metrics)"), Ok(Request::Metrics));
        // Arity matters: `(metrics 1)` is not a request.
        assert_eq!(
            Request::decode("(metrics 1)"),
            Err(err("proto", "bad-request"))
        );
        // Malformed requests come back as typed proto errors.
        assert_eq!(
            Request::decode("(nonsense)"),
            Err(err("proto", "bad-request"))
        );
        assert_eq!(
            Request::decode("(open"),
            Err(err("proto", "unexpected-eof"))
        );
        assert_eq!(
            Request::decode("(eval x 1)"),
            Err(err("proto", "bad-request"))
        );
    }

    #[test]
    fn every_error_reply_parses_as_a_symbol_only_sexpr() {
        use small_sexpr::parse;
        let replies = [
            vm_error_reply(&VmError::TypeError("car")),
            vm_error_reply(&VmError::Backend(BackendError::Heap(
                small_heap::controller::HeapError::Exhausted,
            ))),
            lp_error_reply(&LpError::Cyclic),
            persist_error_reply(&PersistError::NoCheckpoint),
            compile_error_reply(&CompileError::BadCallHead),
            parse_error_reply(&ParseError::UnexpectedEof),
            busy_reply(3),
            unsupported_version_reply(9),
            seq_gap_reply(4, 7),
            seq_too_old_reply(1),
        ];
        for r in replies {
            let text = r.encode();
            let mut i = Interner::new();
            parse(&text, &mut i).unwrap_or_else(|e| panic!("{text}: {e}"));
            assert!(text.starts_with("(err "), "{text}");
            assert_eq!(Reply::decode(&text).as_ref(), Some(&r), "{text}");
        }
    }

    #[test]
    fn metrics_reply_round_trips_json_payloads() {
        let reply = Reply::Metrics {
            deterministic: "{\"schema\":\"small-metrics-snapshot/1\",\"requests\":2}".to_string(),
            volatile: "{\"busy_sheds\":0,\"wal\":{\"lag\":3}}".to_string(),
        };
        let text = reply.encode();
        // The payloads ride as hex symbols — braces and quotes never
        // touch the s-expression reader.
        assert!(text.starts_with("(ok metrics h"), "{text}");
        assert!(!text.contains('{'), "{text}");
        assert_eq!(Reply::decode(&text).as_ref(), Some(&reply));
    }

    fn arb_request() -> impl Strategy<Value = Request> {
        let id = 0u64..1_000_000;
        let seq = prop_oneof![Just(None), (0u64..1_000).prop_map(Some)].boxed();
        prop_oneof![
            Just(Request::Stats),
            Just(Request::Metrics),
            Just(Request::Ping),
            Just(Request::Shutdown),
            prop_oneof![Just(None), (0u64..1_000_000).prop_map(Some)]
                .prop_map(|token| Request::Open { token }),
            (
                0u32..10,
                prop_oneof![Just(Role::Client), Just(Role::Replica)]
            )
                .prop_map(|(version, role)| Request::Hello { version, role }),
            id.clone().prop_map(|id| Request::Ledger { id }),
            id.clone().prop_map(|id| Request::Digest { id }),
            (id.clone(), seq.clone()).prop_map(|(id, seq)| Request::Close { id, seq }),
            (0u64..1_000_000).prop_map(|from| Request::Pull { from }),
            (
                id,
                seq,
                prop_oneof![
                    Just("(add 1 2)".to_string()),
                    Just("(setq acc (cons 1 acc))".to_string()),
                    Just("nil".to_string()),
                    Just("(prog (x) (setq x (cons 1 nil)) (return x)) (car acc)".to_string()),
                ]
            )
                .prop_map(|(id, seq, src)| Request::Eval { id, seq, src }),
        ]
    }

    fn arb_reply() -> impl Strategy<Value = Reply> {
        prop_oneof![
            Just(Reply::Draining),
            (
                0u32..10,
                prop_oneof![Just(NodeRole::Primary), Just(NodeRole::Standby)]
            )
                .prop_map(|(version, node)| Reply::Hello { version, node }),
            (0u64..1_000_000).prop_map(|id| Reply::Opened { id }),
            (0u64..100).prop_map(|occupancy| Reply::Closed { occupancy }),
            (
                0u64..1_000_000,
                prop_oneof![Just(NodeRole::Primary), Just(NodeRole::Standby)]
            )
                .prop_map(|(lsn, node)| Reply::Pong { lsn, node }),
            any::<u64>().prop_map(|digest| Reply::Digest { digest }),
            prop_oneof![
                Just("42".to_string()),
                Just("(1 2 3)".to_string()),
                Just("nil".to_string()),
                Just("(a (b . 7) c)".to_string()),
            ]
            .prop_map(|text| Reply::Value { text }),
            prop::collection::vec(0u64..1_000_000, 20).prop_map(|v| {
                let mut w = [0u64; 20];
                w.copy_from_slice(&v);
                Reply::Ledger(Box::new(ledger_from_words(&w).unwrap()))
            }),
            (
                0u64..100,
                0u64..100,
                0u64..100,
                0u64..10_000,
                prop::collection::vec(0u64..1_000_000, 22)
            )
                .prop_map(|(sessions, evictions, resumes, requests, v)| {
                    let mut counts = [0u64; 22];
                    counts.copy_from_slice(&v);
                    Reply::Stats(Box::new(StatsBody {
                        sessions,
                        evictions,
                        resumes,
                        requests,
                        counts,
                    }))
                }),
            (
                prop_oneof![
                    Just("{\"requests\":0}".to_string()),
                    Just("{\"kinds\":{\"eval\":{\"count\":3}}}".to_string()),
                    Just(String::new()),
                ],
                prop_oneof![Just("{\"busy_sheds\":1}".to_string()), Just(String::new()),]
            )
                .prop_map(|(deterministic, volatile)| Reply::Metrics {
                    deterministic,
                    volatile
                }),
            (0u64..1_000_000, prop::collection::vec(any::<u8>(), 0..48))
                .prop_map(|(next, bytes)| Reply::Frames { next, bytes }),
            (
                prop_oneof![Just("vm"), Just("lp"), Just("busy"), Just("proto")],
                prop_oneof![Just("type-error"), Just("queue-full"), Just("cyclic")],
                prop::collection::vec(
                    prop_oneof![Just("car".to_string()), Just("7".to_string())],
                    0..3
                )
            )
                .prop_map(|(class, code, detail)| Reply::Err {
                    class: Cow::Borrowed(class),
                    code: Cow::Borrowed(code),
                    detail,
                }),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn request_encode_decode_round_trips(req in arb_request()) {
            let text = req.encode();
            prop_assert_eq!(Request::decode(&text), Ok(req));
        }

        #[test]
        fn reply_encode_decode_round_trips(reply in arb_reply()) {
            let text = reply.encode();
            let back = Reply::decode(&text);
            prop_assert_eq!(back.as_ref(), Some(&reply), "{}", text);
            // Re-encoding the decoded value is byte-identical: the
            // encoding is canonical.
            prop_assert_eq!(back.unwrap().encode(), text);
        }

        /// Any chunking of a valid frame stream — down to 1-byte reads
        /// that tear every length prefix — decodes through [`FrameBuf`]
        /// to exactly the frames a one-shot [`read_frame`] loop sees.
        #[test]
        fn frame_buf_chunking_equals_one_shot(
            reqs in prop::collection::vec(arb_request(), 1..8),
            splits in prop::collection::vec(1usize..9, 1..64),
        ) {
            let mut wire = Vec::new();
            for r in &reqs {
                write_frame(&mut wire, &r.encode()).unwrap();
            }
            let mut expected = Vec::new();
            let mut rd = wire.as_slice();
            while let Some(f) = read_frame(&mut rd).unwrap() {
                expected.push(f);
            }
            let mut fb = FrameBuf::new();
            let mut seen = Vec::new();
            let mut at = 0;
            let mut turn = 0;
            while at < wire.len() {
                let end = (at + splits[turn % splits.len()]).min(wire.len());
                turn += 1;
                fb.extend(&wire[at..end]);
                at = end;
                while let Some(f) = fb.pop().unwrap() {
                    seen.push(f);
                }
            }
            prop_assert_eq!(seen, expected);
            prop_assert!(!fb.has_partial());
        }

        /// The borrowed pop ([`FrameBuf::pop_ref`]) yields exactly the
        /// frames the owned pop does under any chunking, over the full
        /// reply grammar — including the hex-armored metrics and WAL
        /// payloads — and each borrowed frame decodes back to the
        /// reply that produced it.
        #[test]
        fn borrowed_pop_equals_owned_pop(
            replies in prop::collection::vec(arb_reply(), 1..6),
            splits in prop::collection::vec(1usize..17, 1..64),
        ) {
            let mut wire = Vec::new();
            for r in &replies {
                write_frame(&mut wire, &r.encode()).unwrap();
            }
            let mut owned = FrameBuf::new();
            let mut borrowed = FrameBuf::new();
            let mut seen_owned = Vec::new();
            let mut seen_borrowed = Vec::new();
            let mut at = 0;
            let mut turn = 0;
            while at < wire.len() {
                let end = (at + splits[turn % splits.len()]).min(wire.len());
                turn += 1;
                owned.extend(&wire[at..end]);
                borrowed.extend(&wire[at..end]);
                at = end;
                while let Some(f) = owned.pop().unwrap() {
                    seen_owned.push(f);
                }
                while let Some(f) = borrowed.pop_ref().unwrap() {
                    seen_borrowed.push(f.to_string());
                }
            }
            prop_assert_eq!(&seen_owned, &seen_borrowed);
            prop_assert!(!borrowed.has_partial());
            prop_assert_eq!(seen_borrowed.len(), replies.len());
            for (f, r) in seen_borrowed.iter().zip(replies.iter()) {
                prop_assert_eq!(Reply::decode(f).as_ref(), Some(r), "{}", f);
            }
        }

        /// An oversized length prefix is refused the moment the 4
        /// header bytes are in — before any payload is buffered.
        #[test]
        fn oversized_prefix_rejects_before_buffering(
            announced in (MAX_FRAME as u32 + 1)..u32::MAX,
        ) {
            let hdr = announced.to_le_bytes();
            let mut fb = FrameBuf::new();
            // Feed the header one byte at a time; while it is torn the
            // buffer just waits.
            for &b in &hdr[..3] {
                fb.extend(&[b]);
                prop_assert!(fb.pop().unwrap().is_none());
            }
            fb.extend(&hdr[3..]);
            prop_assert!(fb.pop().is_err());
        }
    }
}
