//! Length-framed s-expression wire protocol.
//!
//! Every message — request or reply — is one frame: a 4-byte
//! little-endian payload length followed by that many bytes of UTF-8
//! s-expression text (one expression per frame). The framing layer is
//! symmetric, so the same two functions serve client and server.
//!
//! Requests (the client→server vocabulary):
//!
//! | form                     | meaning                                   |
//! |--------------------------|-------------------------------------------|
//! | `(open)`                 | create a session, reply `(ok <id>)`       |
//! | `(eval <id> <form>...)`  | run forms on the session's machine        |
//! | `(ledger <id>)`          | the session's `LptStats` as an alist      |
//! | `(digest <id>)`          | running request/reply digest as a symbol  |
//! | `(stats)`                | aggregated event counts across sessions   |
//! | `(close <id>)`           | shut the machine down, reply occupancy    |
//! | `(shutdown)`             | begin graceful server drain               |
//!
//! Replies are `(ok ...)` or `(err <class> <code> ...)`. The reader has
//! no string syntax, so every error is encoded as symbols: a *class*
//! naming the failing layer (`proto`, `session`, `compile`, `vm`,
//! `heap`, `lp`, `persist`) and a kebab-case *code* naming the typed
//! error variant — the full `VmError`/`LpError`/`PersistError` surface
//! maps to a reply; nothing panics across the wire.

use small_core::LpError;
use small_lisp::compiler::CompileError;
use small_lisp::vm::{BackendError, VmError};
use small_persist::PersistError;
use small_sexpr::ParseError;
use std::io::{self, Read, Write};

/// Upper bound on a frame payload; a peer announcing more is corrupt
/// (or hostile) and the connection is dropped.
pub const MAX_FRAME: usize = 1 << 20;

/// Write one frame: 4-byte LE length, then the payload.
pub fn write_frame(w: &mut impl Write, text: &str) -> io::Result<()> {
    let len = u32::try_from(text.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(text.as_bytes())?;
    w.flush()
}

/// Read one frame. `Ok(None)` is a clean end-of-stream *at a frame
/// boundary*; EOF mid-frame, an oversized announcement, or non-UTF-8
/// payload are errors.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<String>> {
    let mut len_bytes = [0u8; 4];
    match r.read_exact(&mut len_bytes) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_bytes) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame exceeds MAX_FRAME",
        ));
    }
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf)
        .map(Some)
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "frame is not UTF-8"))
}

/// Build an `(err <class> <code>)` reply.
pub fn err_reply(class: &str, code: &str) -> String {
    format!("(err {class} {code})")
}

/// An `(err <class> <code> <detail>)` reply with one extra symbol.
pub fn err_reply_with(class: &str, code: &str, detail: &str) -> String {
    format!("(err {class} {code} {detail})")
}

fn heap_code(e: small_heap::controller::HeapError) -> &'static str {
    use small_heap::controller::HeapError;
    match e {
        HeapError::Exhausted => "exhausted",
        HeapError::NotAnObject => "not-an-object",
        HeapError::BadAddress => "bad-address",
        HeapError::Transient => "transient",
    }
}

/// Typed reply for a parse failure of the client's payload.
pub fn parse_error_reply(e: &ParseError) -> String {
    let code = match e {
        ParseError::UnexpectedEof => "unexpected-eof",
        ParseError::UnbalancedClose(_) => "unbalanced-close",
        ParseError::BadDot(_) => "bad-dot",
        ParseError::TrailingInput(_) => "trailing-input",
    };
    err_reply("proto", code)
}

/// Typed reply for a compile failure of the client's program.
pub fn compile_error_reply(e: &CompileError) -> String {
    let code = match e {
        CompileError::BadForm(_) => "bad-form",
        CompileError::NoSuchLabel(_) => "no-such-label",
        CompileError::BadCallHead => "bad-call-head",
        CompileError::NestedDef => "nested-def",
    };
    err_reply("compile", code)
}

/// Typed reply for an LP failure (cyclic write-out, degraded-mode
/// refusal, …) surfaced outside the VM's error chain.
pub fn lp_error_reply(e: &LpError) -> String {
    match e {
        LpError::TrueOverflow => err_reply("lp", "true-overflow"),
        LpError::Heap(h) => err_reply_with("lp", "heap", heap_code(*h)),
        LpError::NotAList => err_reply("lp", "not-a-list"),
        LpError::UnexpectedTag(_) => err_reply("lp", "unexpected-tag"),
        LpError::Degraded(_) => err_reply("lp", "degraded"),
        LpError::Cyclic => err_reply("lp", "cyclic"),
    }
}

/// Typed reply for every VM runtime failure, including the backend
/// chain (`VmError::Backend(BackendError::…)`).
pub fn vm_error_reply(e: &VmError) -> String {
    match e {
        VmError::Unbound(_) => err_reply("vm", "unbound"),
        VmError::NoSuchFunction(_) => err_reply("vm", "no-such-function"),
        VmError::TypeError(op) => err_reply_with("vm", "type-error", op),
        VmError::DivideByZero => err_reply("vm", "divide-by-zero"),
        VmError::StackUnderflow => err_reply("vm", "stack-underflow"),
        VmError::ReadEof => err_reply("vm", "read-eof"),
        VmError::StepBudget => err_reply("vm", "step-budget"),
        VmError::Backend(b) => match b {
            BackendError::TrueOverflow => err_reply("lp", "true-overflow"),
            BackendError::Heap(h) => err_reply_with("heap", "fault", heap_code(*h)),
            BackendError::NotAList => err_reply("lp", "not-a-list"),
            BackendError::UnexpectedTag(_) => err_reply("lp", "unexpected-tag"),
            BackendError::Degraded(_) => err_reply("lp", "degraded"),
        },
    }
}

/// Typed reply for a persistence failure while suspending or resuming
/// a session (a corrupt checkpoint blob fails closed as an error reply
/// on the session that touched it, never a panic).
pub fn persist_error_reply(e: &PersistError) -> String {
    let code = match e {
        PersistError::NoCheckpoint => "no-checkpoint",
        PersistError::CorruptCheckpoint(_) => "corrupt-checkpoint",
        PersistError::UnsupportedVersion(_) => "unsupported-version",
        PersistError::CorruptJournal { .. } => "corrupt-journal",
        PersistError::ReplayDivergence { .. } => "replay-divergence",
        PersistError::MalformedImage(_) => "malformed-image",
        PersistError::Crash { .. } => "crash",
    };
    err_reply("persist", code)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "(open)").unwrap();
        write_frame(&mut buf, "(eval 0 (add 1 2))").unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r).unwrap().as_deref(), Some("(open)"));
        assert_eq!(
            read_frame(&mut r).unwrap().as_deref(),
            Some("(eval 0 (add 1 2))")
        );
        assert_eq!(read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn torn_frame_is_an_error_not_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "(open)").unwrap();
        buf.truncate(buf.len() - 2);
        let mut r = buf.as_slice();
        assert!(read_frame(&mut r).is_err());
    }

    #[test]
    fn oversized_frame_refused() {
        let mut buf = ((MAX_FRAME + 1) as u32).to_le_bytes().to_vec();
        buf.extend_from_slice(b"xx");
        assert!(read_frame(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn every_error_reply_parses_as_a_symbol_only_sexpr() {
        use small_sexpr::{parse, Interner};
        let replies = [
            vm_error_reply(&VmError::TypeError("car")),
            vm_error_reply(&VmError::Backend(BackendError::Heap(
                small_heap::controller::HeapError::Exhausted,
            ))),
            lp_error_reply(&LpError::Cyclic),
            persist_error_reply(&PersistError::NoCheckpoint),
            compile_error_reply(&CompileError::BadCallHead),
            parse_error_reply(&ParseError::UnexpectedEof),
        ];
        for r in replies {
            let mut i = Interner::new();
            parse(&r, &mut i).unwrap_or_else(|e| panic!("{r}: {e}"));
            assert!(r.starts_with("(err "), "{r}");
        }
    }
}
