//! The sharded server front end: listener, acceptor, lifecycle.
//!
//! [`start`] binds a listener and spawns one acceptor thread plus
//! [`ServerParams::shards`] shard event loops ([`crate::shard`]). The
//! acceptor does nothing but `accept` and deal connections round-robin
//! into per-shard inboxes — admission control (per-shard connection
//! caps, bounded run queues) lives in the shards, where it can always
//! answer with a typed reply instead of silently refusing.
//!
//! Shutdown — client-initiated via `(shutdown)` or caller-initiated
//! via [`ServerHandle::shutdown`] — runs the two-barrier drain
//! documented in [`crate::shard`] and yields a [`DrainOutcome`]: the
//! per-shard session stores, with every suspend-to-checkpoint known
//! complete. Callers that care (the soak and failover harnesses do)
//! call [`DrainOutcome::verify_suspended`] to prove no blob was torn
//! at exit.

use crate::manager::SessionStore;
use crate::protocol::StatsBody;
use crate::repl::Wal;
use crate::session::ServeConfig;
use crate::shard::{shard_loop, RunQueue, SharedState, TokenRoutes};
use crate::telemetry::{prometheus_text, ShardMetrics, TraceLog, VolatileMetrics};
use small_metrics::EventCounts;
use small_persist::PersistError;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

/// Concurrency and admission knobs for one server instance.
#[derive(Debug, Clone, Copy)]
pub struct ServerParams {
    /// Shard event loops; session `id % shards` pins each session.
    pub shards: usize,
    /// Bounded run-queue capacity per shard; overflow is shed with
    /// `(err busy queue-full <shard>)`.
    pub queue_cap: usize,
    /// Connections a single shard will own at once; overflow is shed
    /// with `(err busy too-many-connections <shard>)` before close —
    /// admission is bounded but never silent.
    pub max_conns_per_shard: usize,
    /// Run as a replication primary: append every mutating request to
    /// the WAL and serve `(pull …)` to replica-role connections.
    pub replicate: bool,
    /// Record wall-clock request latency (the volatile half of the
    /// telemetry; same opt-in as the bench harness's `--wall`). The
    /// virtual-cycle histograms are always on — they cost a few adds
    /// per operation and are deterministic.
    pub wall: bool,
    /// Record wall-clock spans (accept → decode → run → flush,
    /// suspend/resume, WAL ship) for Chrome-trace export at drain.
    pub trace: bool,
}

impl Default for ServerParams {
    fn default() -> ServerParams {
        ServerParams {
            shards: 4,
            queue_cap: 64,
            max_conns_per_shard: 64,
            replicate: false,
            wall: false,
            trace: false,
        }
    }
}

/// A running server: address plus the threads to join at shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<SharedState>,
    acceptor: JoinHandle<()>,
    shards: Vec<JoinHandle<SessionStore>>,
}

/// What a drained server leaves behind.
pub struct DrainOutcome {
    /// Each shard's session store, in shard order. Every suspended
    /// session's checkpoint blob in here is fully written — barrier 2
    /// of the drain protocol guarantees it.
    pub stores: Vec<SessionStore>,
    /// Per-shard volatile observables at drain, in shard order.
    pub volatile: Vec<VolatileMetrics>,
    /// The span log, when the server ran with [`ServerParams::trace`].
    pub trace: Option<Arc<TraceLog>>,
}

impl DrainOutcome {
    /// The merged request telemetry across shards (order-independent:
    /// the deterministic section depends only on the multiset of
    /// served requests).
    pub fn telemetry(&self) -> ShardMetrics {
        let mut total = ShardMetrics::default();
        for store in &self.stores {
            total.merge(store.telemetry());
        }
        total
    }

    /// The merged volatile observables across shards.
    pub fn volatile_total(&self) -> VolatileMetrics {
        let mut total = VolatileMetrics::default();
        for v in &self.volatile {
            total.merge(v);
        }
        total
    }

    /// The Prometheus-style text exposition of the final merged
    /// snapshot (the `--metrics-out` dump).
    pub fn prometheus(&self) -> String {
        prometheus_text(&self.telemetry(), &self.volatile_total())
    }

    /// The Chrome Trace Format JSON of the span log, when tracing was
    /// on (open in `chrome://tracing` or Perfetto).
    pub fn chrome_trace(&self) -> Option<String> {
        self.trace
            .as_ref()
            .map(|log| log.chrome_trace_json(self.stores.len()))
    }
    /// Aggregate event counts across every shard (resident, suspended,
    /// and retired sessions included).
    pub fn aggregate_counts(&self) -> EventCounts {
        let mut total = EventCounts::default();
        for store in &self.stores {
            total.merge(&store.aggregate_counts());
        }
        total
    }

    /// Summed lifetime (evictions, resumes) across shards.
    pub fn eviction_counters(&self) -> (u64, u64) {
        self.stores
            .iter()
            .map(|s| s.eviction_counters())
            .fold((0, 0), |(e, r), (se, sr)| (e + se, r + sr))
    }

    /// Ids of every live session across shards, ascending.
    pub fn session_ids(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.stores.iter().flat_map(|s| s.session_ids()).collect();
        ids.sort_unstable();
        ids
    }

    /// Decode every suspended blob across every shard; the count of
    /// verified blobs on success, the first damage found otherwise.
    /// This is the teeth behind "drain waits for suspends": a torn
    /// blob here means the drain protocol failed.
    pub fn verify_suspended(&self) -> Result<usize, PersistError> {
        let mut total = 0;
        for store in &self.stores {
            total += store.verify_suspended()?;
        }
        Ok(total)
    }
}

/// Bind `addr` and start the acceptor and shard threads.
pub fn start(addr: &str, cfg: ServeConfig, params: ServerParams) -> std::io::Result<ServerHandle> {
    assert!(params.shards > 0, "at least one shard");
    let listener = TcpListener::bind(addr)?;
    let stores = (0..params.shards).map(|_| SessionStore::new(cfg)).collect();
    start_on(listener, params, stores, None)
}

/// Start a server on an **already-bound** listener from a promoted
/// standby's replayed state ([`crate::repl::RelayNode::stop`] hands
/// both over). The listener keeps its file descriptor, so clients that
/// redial the standby's advertised address land on the new primary
/// without a rebind race. The retained WAL is installed as-is: its
/// next LSN continues the chain, so a downstream replica's `(pull …)`
/// cursor stays valid across the promotion.
///
/// The replayed store is necessarily single-sharded (a standby applies
/// one serial record stream), so `params.shards` must be 1; dedup
/// windows, the session-id allocator, and the token routes are all
/// seeded from the store, making retried pre-failover requests
/// answerable with their original replies.
pub fn start_promoted(
    listener: TcpListener,
    params: ServerParams,
    store: SessionStore,
    wal: Wal,
) -> std::io::Result<ServerHandle> {
    assert_eq!(params.shards, 1, "a promoted standby is single-sharded");
    assert!(params.replicate, "a promoted primary keeps shipping");
    start_on(listener, params, vec![store], Some(wal))
}

/// Shared tail of [`start`] and [`start_promoted`]: spawn the shard
/// loops over `stores` and the acceptor over `listener`.
fn start_on(
    listener: TcpListener,
    params: ServerParams,
    stores: Vec<SessionStore>,
    retained_wal: Option<Wal>,
) -> std::io::Result<ServerHandle> {
    assert_eq!(stores.len(), params.shards, "one store per shard");
    let local = listener.local_addr()?;
    let trace = params.trace.then(|| Arc::new(TraceLog::new()));
    let next_id = stores
        .iter()
        .map(|s| s.next_session_id())
        .max()
        .unwrap_or(0);
    let mut routes = TokenRoutes::new();
    for store in &stores {
        for (token, id) in store.token_routes() {
            routes.prime(token, id);
        }
    }
    let shared = Arc::new(SharedState {
        queues: (0..params.shards)
            .map(|_| Arc::new(RunQueue::new(params.queue_cap)))
            .collect(),
        inboxes: (0..params.shards).map(|_| Mutex::new(Vec::new())).collect(),
        stats: (0..params.shards)
            .map(|_| {
                Mutex::new(StatsBody {
                    sessions: 0,
                    evictions: 0,
                    resumes: 0,
                    requests: 0,
                    counts: [0u64; 22],
                })
            })
            .collect(),
        telemetry: (0..params.shards)
            .map(|_| Mutex::new(ShardMetrics::default()))
            .collect(),
        volatile: (0..params.shards)
            .map(|_| Mutex::new(VolatileMetrics::default()))
            .collect(),
        trace: trace.clone(),
        stop: AtomicBool::new(false),
        decode_done: AtomicUsize::new(0),
        queues_done: AtomicUsize::new(0),
        next_id: AtomicU64::new(next_id),
        open_tokens: Mutex::new(routes),
        wal: match retained_wal {
            Some(wal) => Some(Mutex::new(wal)),
            None => params.replicate.then(|| Mutex::new(Wal::new())),
        },
        addr: local,
    });

    let shards: Vec<JoinHandle<SessionStore>> = stores
        .into_iter()
        .enumerate()
        .map(|(me, store)| {
            let shared = Arc::clone(&shared);
            let mut store = store.with_wall(params.wall);
            if let Some(log) = &trace {
                store = store.with_trace(Arc::clone(log), me as u32 + 1);
            }
            let max_conns = params.max_conns_per_shard;
            std::thread::Builder::new()
                .name(format!("shard-{me}"))
                .spawn(move || shard_loop(me, store, shared, max_conns))
                .expect("spawn shard")
        })
        .collect();

    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("acceptor".to_string())
            .spawn(move || {
                let mut rr = 0usize;
                for stream in listener.incoming() {
                    if shared.stop.load(Ordering::SeqCst) {
                        break; // the wakeup (or any late) connection is dropped
                    }
                    let Ok(stream) = stream else { continue };
                    shared.inboxes[rr]
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .push(stream);
                    rr = (rr + 1) % shared.nshards();
                }
            })
            .expect("spawn acceptor")
    };

    Ok(ServerHandle {
        addr: local,
        shared,
        acceptor,
        shards,
    })
}

impl ServerHandle {
    /// The bound address (use `"127.0.0.1:0"` to let the OS pick).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Whether drain has begun (a client may have sent `(shutdown)`).
    pub fn draining(&self) -> bool {
        self.shared.stop.load(Ordering::SeqCst)
    }

    /// Records logged so far, when running as a primary (`None`
    /// otherwise). Lets a harness confirm a standby is caught up.
    pub fn wal_next_lsn(&self) -> Option<u64> {
        self.shared
            .wal
            .as_ref()
            .map(|w| w.lock().unwrap_or_else(|e| e.into_inner()).next_lsn())
    }

    /// Begin (idempotently) and complete the drain: joins the acceptor
    /// and every shard, returning their stores. Blocks until barrier 2
    /// has passed on all shards — i.e. until every queued request has
    /// replied and every LRU suspend has fully written its blob.
    pub fn shutdown(self) -> DrainOutcome {
        self.shared.begin_stop();
        self.join()
    }

    /// Wait for a drain someone else starts (a client's `(shutdown)`
    /// request) and collect the stores. The `serve` binary's main
    /// loop is exactly this call.
    pub fn join(self) -> DrainOutcome {
        let _ = self.acceptor.join();
        let stores: Vec<SessionStore> = self
            .shards
            .into_iter()
            .map(|h| h.join().expect("shard thread panicked"))
            .collect();
        let volatile = self
            .shared
            .volatile
            .iter()
            .map(|cell| cell.lock().unwrap_or_else(|e| e.into_inner()).clone())
            .collect();
        DrainOutcome {
            stores,
            volatile,
            trace: self.shared.trace.clone(),
        }
    }
}

/// Connect a raw socket (no client machinery) to an address — for
/// tests that need to speak below the typed client.
pub fn raw_connect(addr: SocketAddr) -> std::io::Result<TcpStream> {
    let s = TcpStream::connect(addr)?;
    s.set_nodelay(true)?;
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;
    use crate::protocol::{Reply, Request, Role, PROTO_VERSION};

    fn small_cfg() -> ServeConfig {
        ServeConfig {
            heap_cells: 1 << 12,
            table_size: 256,
            max_resident: 2,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn serves_typed_requests_across_shards() {
        let handle = start("127.0.0.1:0", small_cfg(), ServerParams::default()).unwrap();
        let mut c = Client::connect(handle.addr(), Role::Client).unwrap();
        // Enough sessions to land on every shard.
        let ids: Vec<u64> = (0..6).map(|_| c.open().unwrap()).collect();
        assert_eq!(ids, (0..6).collect::<Vec<u64>>());
        for &id in &ids {
            assert_eq!(
                c.request(&Request::Eval {
                    id,
                    seq: None,
                    src: format!("(setq acc (cons {id} nil))"),
                })
                .unwrap()
                .encode(),
                format!("(ok value ({id}))")
            );
        }
        // Sessions are isolated even though they share shards.
        for &id in &ids {
            assert_eq!(
                c.request(&Request::Eval {
                    id,
                    seq: None,
                    src: "(car acc)".to_string(),
                })
                .unwrap()
                .encode(),
                format!("(ok value {id})")
            );
        }
        match c.request(&Request::Stats).unwrap() {
            Reply::Stats(body) => assert_eq!(body.sessions, 6),
            other => panic!("want stats, got {}", other.encode()),
        }
        for &id in &ids {
            assert_eq!(
                c.request(&Request::Close { id, seq: None }).unwrap(),
                Reply::Closed { occupancy: 0 }
            );
        }
        assert_eq!(c.request(&Request::Shutdown).unwrap(), Reply::Draining);
        let outcome = handle.shutdown();
        assert_eq!(outcome.session_ids(), Vec::<u64>::new());
    }

    #[test]
    fn handshake_rejects_version_mismatch() {
        let handle = start("127.0.0.1:0", small_cfg(), ServerParams::default()).unwrap();
        let err = Client::connect_with_version(handle.addr(), Role::Client, PROTO_VERSION + 1)
            .expect_err("mismatched hello must be rejected");
        assert!(err.to_string().contains("unsupported-version"), "{err}");
        // A correct handshake still works.
        let mut c = Client::connect(handle.addr(), Role::Client).unwrap();
        assert!(!c.request(&Request::Stats).unwrap().is_err());
        handle.shutdown();
    }

    #[test]
    fn unknown_session_and_bad_frames_get_typed_errors() {
        let handle = start("127.0.0.1:0", small_cfg(), ServerParams::default()).unwrap();
        let mut c = Client::connect(handle.addr(), Role::Client).unwrap();
        assert_eq!(
            c.request(&Request::Eval {
                id: 404,
                seq: None,
                src: "(add 1 2)".to_string(),
            })
            .unwrap()
            .encode(),
            "(err session no-such-session)"
        );
        assert_eq!(
            c.request_text("(nonsense request)").unwrap(),
            "(err proto bad-request)"
        );
        assert_eq!(
            c.request_text("(open").unwrap(),
            "(err proto unexpected-eof)"
        );
        assert_eq!(
            c.request_text("(pull 0)").unwrap(),
            "(err repl disabled)",
            "pull against a non-replicating server"
        );
        handle.shutdown();
    }

    #[test]
    fn drain_leaves_only_verified_suspended_blobs() {
        // Cap 1 per shard and eight sessions: the final requests force
        // suspend-to-checkpoint churn right up to the drain. Barrier 2
        // must wait for those suspends, so every blob verifies.
        let cfg = ServeConfig {
            max_resident: 1,
            ..small_cfg()
        };
        let handle = start("127.0.0.1:0", cfg, ServerParams::default()).unwrap();
        let mut c = Client::connect(handle.addr(), Role::Client).unwrap();
        let ids: Vec<u64> = (0..8).map(|_| c.open().unwrap()).collect();
        for &id in &ids {
            c.request(&Request::Eval {
                id,
                seq: None,
                src: "(setq acc (cons 1 (cons 2 nil)))".to_string(),
            })
            .unwrap();
        }
        drop(c);
        let outcome = handle.shutdown();
        assert_eq!(outcome.session_ids(), ids);
        let verified = outcome.verify_suspended().expect("no torn blob at exit");
        let (evictions, _) = outcome.eviction_counters();
        assert!(evictions > 0, "cap 1 must have evicted");
        assert!(verified > 0, "some sessions must be suspended at exit");
    }
}
