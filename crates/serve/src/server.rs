//! The TCP front end: accept loop, request dispatch, graceful drain.
//!
//! One connection is one pool job running a read-frame → dispatch →
//! write-frame loop until the client disconnects. Dispatch parses each
//! frame with a connection-scratch interner, routes it to the
//! [`SessionManager`], and prints session-bound payloads back to
//! canonical text before the session recompiles them against its own
//! persistent interner — so symbol identity is per-session, never
//! per-connection.
//!
//! Shutdown (`(shutdown)` request or [`ServerHandle::shutdown`]) is a
//! drain: the acceptor stops taking connections (a self-connection
//! unblocks `accept`), in-flight connections run to completion, and
//! the pool joins.

use crate::manager::SessionManager;
use crate::pool::ThreadPool;
use crate::protocol::{err_reply, parse_error_reply, read_frame, write_frame};
use crate::session::ServeConfig;
use small_sexpr::{print, Interner, SExpr};
use std::io::{self, BufReader, BufWriter};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running server: address + drain control.
pub struct ServerHandle {
    addr: SocketAddr,
    manager: Arc<SessionManager>,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (use port 0 to let the OS pick).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared session manager (for harness-side assertions).
    pub fn manager(&self) -> &Arc<SessionManager> {
        &self.manager
    }

    /// Block until a client-initiated `(shutdown)` request drains the
    /// server (the `serve` bin's main loop).
    pub fn shutdown_when_drained(mut self) {
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
    }

    /// Graceful drain: stop accepting, finish in-flight connections,
    /// join the acceptor and the worker pool.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        // Unblock accept() with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
    }
}

/// Bind `addr` and serve with `workers` pool threads.
pub fn start(addr: &str, cfg: ServeConfig, workers: usize) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let manager = Arc::new(SessionManager::new(cfg));
    let stop = Arc::new(AtomicBool::new(false));

    let acceptor = {
        let manager = Arc::clone(&manager);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let pool = ThreadPool::new(workers);
            for conn in listener.incoming() {
                if stop.load(Ordering::Acquire) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let manager = Arc::clone(&manager);
                let stop = Arc::clone(&stop);
                let local = local;
                pool.execute(move || {
                    let _ = serve_connection(stream, &manager, &stop, local);
                });
            }
            // Drain: finish every accepted connection before returning.
            pool.join();
        })
    };

    Ok(ServerHandle {
        addr: local,
        manager,
        stop,
        acceptor: Some(acceptor),
    })
}

fn serve_connection(
    stream: TcpStream,
    manager: &SessionManager,
    stop: &Arc<AtomicBool>,
    local: SocketAddr,
) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    while let Some(text) = read_frame(&mut reader)? {
        let (reply, shutdown) = dispatch(&text, manager);
        write_frame(&mut writer, &reply)?;
        if shutdown {
            stop.store(true, Ordering::Release);
            // Unblock the acceptor so the drain can begin.
            let _ = TcpStream::connect(local);
            break;
        }
    }
    Ok(())
}

/// Route one request frame to a reply. The bool asks the server to
/// begin draining.
pub fn dispatch(text: &str, manager: &SessionManager) -> (String, bool) {
    let mut scratch = Interner::new();
    let expr = match small_sexpr::parse(text, &mut scratch) {
        Ok(e) => e,
        Err(e) => return (parse_error_reply(&e), false),
    };
    let bad = || (err_reply("proto", "bad-request"), false);
    let items: Vec<&SExpr> = expr.iter().collect();
    let Some(head) = items.first().and_then(|h| h.as_sym()) else {
        return bad();
    };
    let session_arg = |k: usize| -> Option<u64> {
        items
            .get(k)
            .and_then(|e| e.as_int())
            .and_then(|i| u64::try_from(i).ok())
    };
    match scratch.name(head) {
        "open" if items.len() == 1 => {
            let id = manager.open();
            (format!("(ok {id})"), false)
        }
        "eval" if items.len() >= 3 => {
            let Some(id) = session_arg(1) else {
                return bad();
            };
            // Re-print the payload forms so the session compiles
            // canonical text with its own interner.
            let src = items[2..]
                .iter()
                .map(|f| print(f, &scratch))
                .collect::<Vec<_>>()
                .join(" ");
            (manager.eval(id, &src), false)
        }
        "ledger" if items.len() == 2 => match session_arg(1) {
            Some(id) => (manager.ledger(id), false),
            None => bad(),
        },
        "digest" if items.len() == 2 => match session_arg(1) {
            Some(id) => (manager.digest(id), false),
            None => bad(),
        },
        "stats" if items.len() == 1 => (manager.stats_reply(), false),
        "close" if items.len() == 2 => match session_arg(1) {
            Some(id) => (manager.close(id), false),
            None => bad(),
        },
        "shutdown" if items.len() == 1 => ("(ok draining)".to_string(), true),
        _ => bad(),
    }
}

/// A minimal blocking client for tests and the load generator.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connect to a server.
    pub fn connect(addr: SocketAddr) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        Ok(Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        })
    }

    /// Send one request frame and read the reply frame.
    pub fn request(&mut self, text: &str) -> io::Result<String> {
        write_frame(&mut self.writer, text)?;
        read_frame(&mut self.reader)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"))
    }

    /// `(open)` and parse the id.
    pub fn open(&mut self) -> io::Result<u64> {
        let reply = self.request("(open)")?;
        reply
            .strip_prefix("(ok ")
            .and_then(|r| r.strip_suffix(')'))
            .and_then(|r| r.parse().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, reply))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> ServeConfig {
        ServeConfig {
            heap_cells: 1 << 12,
            table_size: 256,
            step_budget: 100_000,
            max_resident: 2,
        }
    }

    #[test]
    fn end_to_end_sessions_over_tcp() {
        let handle = start("127.0.0.1:0", tiny_cfg(), 4).unwrap();
        let addr = handle.addr();

        // Two concurrent clients, each with its own session: globals
        // are per-session, errors are typed replies, and the machines
        // stay usable afterwards.
        let threads: Vec<_> = (0..2)
            .map(|k| {
                std::thread::spawn(move || {
                    let mut c = Client::connect(addr).unwrap();
                    let id = c.open().unwrap();
                    let v = 10 + k;
                    assert_eq!(
                        c.request(&format!("(eval {id} (setq g {v}))")).unwrap(),
                        format!("(ok {v})")
                    );
                    assert_eq!(
                        c.request(&format!("(eval {id} (car 5))")).unwrap(),
                        "(err vm type-error car)"
                    );
                    assert_eq!(
                        c.request(&format!("(eval {id} (add g g))")).unwrap(),
                        format!("(ok {})", 2 * v)
                    );
                    assert!(c
                        .request(&format!("(ledger {id})"))
                        .unwrap()
                        .starts_with("(ok (refops "));
                    assert_eq!(
                        c.request(&format!("(close {id})")).unwrap(),
                        "(ok closed 0)"
                    );
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }

        let mut c = Client::connect(addr).unwrap();
        assert_eq!(
            c.request("(eval 99 1)").unwrap(),
            "(err session no-such-session)"
        );
        assert_eq!(c.request("(nonsense)").unwrap(), "(err proto bad-request)");
        assert_eq!(c.request("(open").unwrap(), "(err proto unexpected-eof)");
        assert!(c.request("(stats)").unwrap().starts_with("(ok (sessions "));
        assert_eq!(c.request("(shutdown)").unwrap(), "(ok draining)");
        // Drain waits for in-flight connections; release ours first.
        drop(c);
        handle.shutdown();
    }

    #[test]
    fn lru_eviction_and_resume_over_tcp() {
        let handle = start("127.0.0.1:0", tiny_cfg(), 2).unwrap();
        let mut c = Client::connect(handle.addr()).unwrap();
        // max_resident = 2 and four sessions on one connection: earlier
        // sessions are evicted to bytes and resumed on touch, with
        // their globals intact.
        let ids: Vec<u64> = (0..4).map(|_| c.open().unwrap()).collect();
        for (k, id) in ids.iter().enumerate() {
            assert_eq!(
                c.request(&format!("(eval {id} (setq mine {k}))")).unwrap(),
                format!("(ok {k})")
            );
        }
        for (k, id) in ids.iter().enumerate() {
            assert_eq!(
                c.request(&format!("(eval {id} mine)")).unwrap(),
                format!("(ok {k})")
            );
        }
        let (evictions, resumes) = handle.manager().eviction_counters();
        assert!(evictions >= 2, "expected eviction churn, got {evictions}");
        assert!(resumes >= 2, "expected resume churn, got {resumes}");
        for id in &ids {
            assert_eq!(
                c.request(&format!("(close {id})")).unwrap(),
                "(ok closed 0)"
            );
        }
        // Drain waits for in-flight connections; release ours first.
        drop(c);
        handle.shutdown();
    }
}
