//! One serving session: a complete SMALL machine behind a request API.
//!
//! A [`Session`] owns a `Vm<SmallBackend>` (the EP), its List
//! Processor (the LP), a persistent [`Interner`] so symbols keep their
//! identities across requests, and a [`ServeSink`] recording the
//! session's EP↔LP event traffic while pricing it on the machine's
//! virtual clock. Requests are s-expression program
//! texts; each is compiled against the session interner and run on the
//! same machine, so `setq`-created globals (and the LPT entries they
//! retain) carry over from request to request — exactly the paper's
//! long-lived EP/LP pairing, placed behind a service boundary.
//!
//! Sessions can be *suspended* to a byte blob (a `small-persist`
//! checkpoint embedding the LPT image, the heap-controller image, the
//! interner, the global bindings, and the metrics counters) and later
//! *resumed*. Suspension is **stats-neutral**: the `LptStats` ledger
//! and event counts travel inside the image and no retain/release
//! traffic is issued on either side, so an evicted-and-resumed session
//! is indistinguishable — ledger included — from one that stayed
//! resident. The soak harness turns that property into a gate.

use crate::protocol::{
    compile_error_reply, lp_error_reply, parse_error_reply, persist_error_reply, seq_gap_reply,
    seq_too_old_reply, vm_error_reply, Reply,
};
use crate::telemetry::ServeSink;
use small_core::machine::SmallBackend;
use small_core::{Id, ListProcessor, LpConfig, LptStats};
use small_heap::controller::TwoPointerController;
use small_heap::PersistableController;
use small_lisp::compiler::FrontEnd;
use small_lisp::vm::{ListBackend, Vm, VmValue};
use small_metrics::EventCounts;
use small_persist::{
    decode_checkpoint, digest_bytes, encode_checkpoint, ByteReader, ByteWriter, Checkpoint,
    PersistError, DIGEST_SEED,
};
use small_sexpr::{parse_all, print, Interner, Symbol};

/// Sizing and policy knobs shared by every session a manager creates.
#[derive(Debug, Clone, Copy)]
pub struct ServeConfig {
    /// Backing heap cells per session.
    pub heap_cells: usize,
    /// LPT entries per session.
    pub table_size: usize,
    /// Instruction budget per request (a runaway program gets a typed
    /// `step-budget` reply instead of wedging its worker).
    pub step_budget: u64,
    /// Maximum resident (non-suspended) sessions before LRU eviction.
    pub max_resident: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            heap_cells: 1 << 14,
            table_size: 512,
            step_budget: 2_000_000,
            max_resident: 4,
        }
    }
}

impl ServeConfig {
    /// The LP configuration each session machine runs under.
    pub fn lp_config(&self) -> LpConfig {
        LpConfig {
            table_size: self.table_size,
            ..LpConfig::default()
        }
    }
}

type Backend = SmallBackend<TwoPointerController, ServeSink>;

/// How many recently applied sequenced replies a session keeps for
/// retry deduplication. A retry older than this window gets a typed
/// `seq-too-old` error instead of a cached reply.
pub const DEDUP_WINDOW: usize = 32;

/// A resident session: one full SMALL machine plus request bookkeeping.
pub struct Session {
    /// Manager-assigned identifier (stable across suspend/resume).
    pub id: u64,
    interner: Interner,
    /// Cached compiler name tables (the special-form and primitive
    /// symbols live in `interner` from birth, so rebuilding these per
    /// request would only repeat the same lookups).
    front: FrontEnd,
    vm: Vm<Backend>,
    step_budget: u64,
    /// Requests served so far (evals only).
    pub requests: u64,
    /// Running FNV-1a digest over every request text and reply text, in
    /// order — the session's externally checkable transcript fingerprint.
    pub digest: u64,
    /// Next expected sequence number for sequenced (`seval`) requests.
    next_seq: u64,
    /// The last [`DEDUP_WINDOW`] applied sequenced replies, oldest
    /// first, for exactly-once retry semantics.
    replay: Vec<(u64, Reply)>,
}

fn empty_vm(front: &FrontEnd, interner: &mut Interner, backend: Backend) -> Vm<Backend> {
    let forms = parse_all("nil", interner).expect("the empty program parses");
    let program = front.compile(&forms).expect("the empty program compiles");
    Vm::new(program, backend)
}

impl Session {
    /// A fresh session with an empty machine.
    pub fn new(id: u64, cfg: &ServeConfig) -> Session {
        let mut interner = Interner::new();
        // Intern the compiler's name tables first — the same id prefix
        // the per-call front end fixed here historically.
        let front = FrontEnd::new(&mut interner);
        let backend =
            SmallBackend::with_sink(cfg.heap_cells, cfg.lp_config(), ServeSink::default());
        let vm = empty_vm(&front, &mut interner, backend);
        Session {
            id,
            interner,
            front,
            vm,
            step_budget: cfg.step_budget,
            requests: 0,
            digest: DIGEST_SEED,
            next_seq: 0,
            replay: Vec::new(),
        }
    }

    /// Compile and run one request program; returns the typed reply.
    ///
    /// Every failure mode — parse, compile, VM runtime, LP, cyclic
    /// result — becomes a typed `(err ...)` reply; the machine is
    /// recovered to its global level and stays usable. The deferred
    /// unroot queue is drained at the end of every request, so request
    /// boundaries are also valid suspension boundaries and the ledger
    /// advances deterministically with the request stream alone.
    ///
    /// The transcript digest folds the request text and the *encoded*
    /// reply text, so it is exactly a fingerprint of the wire traffic
    /// this session produced.
    pub fn eval(&mut self, src: &str) -> Reply {
        let reply = self.eval_inner(src);
        self.digest = digest_bytes(self.digest, src.as_bytes());
        self.digest = digest_bytes(self.digest, reply.encode().as_bytes());
        self.requests += 1;
        reply
    }

    /// Run one *sequenced* request: execute exactly once, answer
    /// retries from the replay window.
    ///
    /// Returns the reply plus an `applied` flag: `true` when the
    /// request executed (and must be journaled), `false` when it was a
    /// no-effect answer — a cached reply for a duplicate, or a typed
    /// `seq-gap`/`seq-too-old` rejection that touched no machine state.
    pub fn eval_seq(&mut self, seq: u64, src: &str) -> (Reply, bool) {
        if seq == self.next_seq {
            let reply = self.eval(src);
            self.next_seq += 1;
            if self.replay.len() == DEDUP_WINDOW {
                self.replay.remove(0);
            }
            self.replay.push((seq, reply.clone()));
            (reply, true)
        } else if seq > self.next_seq {
            (seq_gap_reply(self.next_seq, seq), false)
        } else {
            match self.replay.iter().find(|(s, _)| *s == seq) {
                Some((_, cached)) => (cached.clone(), false),
                None => (seq_too_old_reply(seq), false),
            }
        }
    }

    /// Next expected sequence number (the dedup cursor).
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    fn eval_inner(&mut self, src: &str) -> Reply {
        let forms = match parse_all(src, &mut self.interner) {
            Ok(f) => f,
            Err(e) => return parse_error_reply(&e),
        };
        let program = match self.front.compile(&forms) {
            Ok(p) => p,
            Err(e) => return compile_error_reply(&e),
        };
        self.vm.load_program(program);
        self.vm.set_budget(self.step_budget);
        let reply = match self.vm.run() {
            Ok(v) => {
                let reply = match self.vm.backend.try_write_out(&v) {
                    Ok(e) => Reply::Value {
                        text: print(&e, &self.interner),
                    },
                    Err(e) => lp_error_reply(&e),
                };
                if let VmValue::List(id) = v {
                    self.vm.backend.release(&id);
                }
                reply
            }
            Err(e) => {
                self.vm.recover();
                vm_error_reply(&e)
            }
        };
        self.vm.backend.lp.drain_unroots();
        reply
    }

    /// The session's LP ledger.
    pub fn ledger(&self) -> LptStats {
        self.vm.backend.lp.stats()
    }

    /// The ledger as a typed `(ok ledger …)` reply — every `LptStats`
    /// field, in declaration order (see
    /// [`crate::protocol::LEDGER_FIELDS`]).
    pub fn ledger_reply(&self) -> Reply {
        Reply::Ledger(Box::new(self.ledger()))
    }

    /// The transcript digest as a typed `(ok digest d<hex16>)` reply.
    pub fn digest_reply(&self) -> Reply {
        Reply::Digest {
            digest: self.digest,
        }
    }

    /// The session's event counts (a copy).
    pub fn counts(&self) -> EventCounts {
        self.vm.backend.lp.sink().counts
    }

    /// Virtual cycles accrued since the last take, pricing the
    /// operation stream on the machine's timing model (see
    /// [`ServeSink`]); resets the clock. The store calls this once per
    /// request, so the value is a pure function of the request's own
    /// operation stream — schedule- and eviction-independent.
    pub fn take_cycles(&mut self) -> u64 {
        self.vm.backend.lp.sink_mut().take_cycles()
    }

    /// Shut the machine down: release every binding and stack slot,
    /// settle deferred and lazy work, and report the LPT occupancy left
    /// behind — which must be 0 (the §5.3.2 empty-table invariant) for
    /// any session whose programs tore down their cycles.
    pub fn close(mut self) -> (usize, LptStats) {
        self.vm.shutdown();
        self.vm.backend.lp.drain_unroots();
        self.vm.backend.lp.drain_lazy();
        (self.vm.backend.lp.occupancy(), self.vm.backend.lp.stats())
    }

    // -----------------------------------------------------------------
    // Suspend / resume
    // -----------------------------------------------------------------

    /// Suspend the session to a self-contained checkpoint blob.
    ///
    /// Must be called at a request boundary (the manager only evicts
    /// idle sessions). The blob embeds the LPT image, the heap image,
    /// the interner, the global bindings, the metrics counters, and the
    /// request/digest bookkeeping — everything [`Session::resume`]
    /// needs. No release traffic is issued: the outstanding binding
    /// handles' counts ride inside the LPT image and are re-wrapped on
    /// resume, keeping suspension invisible to the ledger.
    pub fn suspend(mut self) -> Vec<u8> {
        self.vm.backend.lp.drain_unroots();
        let mut w = ByteWriter::new();
        w.put_u64(self.requests);
        w.put_u64(self.digest);
        for word in self.vm.backend.lp.sink().counts.to_words() {
            w.put_u64(word);
        }
        w.put_u64(self.interner.len() as u64);
        for k in 0..self.interner.len() {
            w.put_str(self.interner.name(Symbol(k as u32)));
        }
        let globals = self.vm.globals();
        w.put_u64(globals.len() as u64);
        for (sym, v) in globals {
            w.put_u32(sym.0);
            match v {
                VmValue::Nil => w.put_u8(0),
                VmValue::Int(i) => {
                    w.put_u8(1);
                    w.put_u64(*i as u64);
                }
                VmValue::Sym(s) => {
                    w.put_u8(2);
                    w.put_u32(s.0);
                }
                VmValue::List(id) => {
                    w.put_u8(3);
                    w.put_u32(*id);
                }
            }
        }
        // Dedup state rides behind the globals so `peek_counts`'s
        // fixed prefix stays valid.
        w.put_u64(self.next_seq);
        w.put_u64(self.replay.len() as u64);
        for (seq, reply) in &self.replay {
            w.put_u64(*seq);
            w.put_str(&reply.encode());
        }
        encode_checkpoint(&Checkpoint {
            event_index: self.requests,
            journal_seq: 0,
            lp: self.vm.backend.lp.export_image(),
            controller: self.vm.backend.lp.controller.export_image(),
            driver: w.finish(),
        })
        // Dropping `self` here drops the outstanding `Rooted` handles
        // without draining their unroots — the counts they represent
        // were exported live, as resume expects.
    }

    /// Resume a session from a [`Session::suspend`] blob. Fails closed
    /// on any damage (CRC, version, malformed image, short driver).
    pub fn resume(id: u64, cfg: &ServeConfig, bytes: &[u8]) -> Result<Session, PersistError> {
        let corrupt = PersistError::CorruptCheckpoint;
        let ckpt = decode_checkpoint(bytes)?;
        let mut r = ByteReader::new(&ckpt.driver);
        let requests = r.u64().map_err(corrupt)?;
        let digest = r.u64().map_err(corrupt)?;
        let mut words = [0u64; 22];
        for word in &mut words {
            *word = r.u64().map_err(corrupt)?;
        }
        let mut interner = Interner::new();
        let nsyms = r.len().map_err(corrupt)?;
        for _ in 0..nsyms {
            let name = r.str().map_err(corrupt)?;
            interner.intern(name);
        }
        let nglobals = r.len().map_err(corrupt)?;
        let mut globals: Vec<(Symbol, VmValue<Id>)> = Vec::with_capacity(nglobals);
        for _ in 0..nglobals {
            let sym = Symbol(r.u32().map_err(corrupt)?);
            let v = match r.u8().map_err(corrupt)? {
                0 => VmValue::Nil,
                1 => VmValue::Int(r.u64().map_err(corrupt)? as i64),
                2 => VmValue::Sym(Symbol(r.u32().map_err(corrupt)?)),
                3 => VmValue::List(r.u32().map_err(corrupt)?),
                _ => return Err(corrupt("bad global value tag")),
            };
            globals.push((sym, v));
        }
        let next_seq = r.u64().map_err(corrupt)?;
        let nreplay = r.len().map_err(corrupt)?;
        let mut replay = Vec::with_capacity(nreplay.min(DEDUP_WINDOW));
        for _ in 0..nreplay {
            let seq = r.u64().map_err(corrupt)?;
            let text = r.str().map_err(corrupt)?;
            let reply =
                Reply::decode(text).ok_or_else(|| corrupt("bad replay-window reply text"))?;
            replay.push((seq, reply));
        }
        r.expect_end().map_err(corrupt)?;

        let controller = TwoPointerController::import_image(&ckpt.controller)?;
        let sink = ServeSink::with_counts(EventCounts::from_words(&words));
        let lp = ListProcessor::from_image(controller, cfg.lp_config(), &ckpt.lp, sink)?;
        if !lp.audit().is_clean() {
            return Err(corrupt("restored session table fails audit"));
        }
        let mut backend = SmallBackend::from_lp(lp);
        for (_, v) in &globals {
            if let VmValue::List(obj) = v {
                backend.resume_retained(*obj);
            }
        }
        // The name tables were interned at the session's birth, so this
        // re-resolves existing ids without growing the restored interner.
        let front = FrontEnd::new(&mut interner);
        let mut vm = empty_vm(&front, &mut interner, backend);
        vm.restore_globals(globals);
        Ok(Session {
            id,
            interner,
            front,
            vm,
            step_budget: cfg.step_budget,
            requests,
            digest,
            next_seq,
            replay,
        })
    }

    /// Decode only the event counts from a suspended blob (for `/stats`
    /// aggregation without resurrecting the machine).
    pub fn peek_counts(bytes: &[u8]) -> Result<EventCounts, PersistError> {
        let corrupt = PersistError::CorruptCheckpoint;
        let ckpt = decode_checkpoint(bytes)?;
        let mut r = ByteReader::new(&ckpt.driver);
        r.u64().map_err(corrupt)?;
        r.u64().map_err(corrupt)?;
        let mut words = [0u64; 22];
        for word in &mut words {
            *word = r.u64().map_err(corrupt)?;
        }
        Ok(EventCounts::from_words(&words))
    }

    /// A typed error reply for a persist failure on this path (exposed
    /// for the store's resume-on-touch).
    pub fn persist_reply(e: &PersistError) -> Reply {
        persist_error_reply(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ServeConfig {
        ServeConfig {
            heap_cells: 1 << 12,
            table_size: 256,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn globals_persist_across_requests() {
        let mut s = Session::new(0, &cfg());
        assert_eq!(
            s.eval("(setq acc (cons 1 (cons 2 nil)))").encode(),
            "(ok value (1 2))"
        );
        assert_eq!(s.eval("(car acc)").encode(), "(ok value 1)");
        assert_eq!(
            s.eval("(setq acc (cons 0 acc))").encode(),
            "(ok value (0 1 2))"
        );
        assert_eq!(s.eval("(setq acc nil)").encode(), "(ok value nil)");
        let (occ, _) = s.close();
        assert_eq!(occ, 0);
    }

    #[test]
    fn typed_errors_do_not_kill_the_session() {
        let mut s = Session::new(0, &cfg());
        assert_eq!(s.eval("(setq g 7)").encode(), "(ok value 7)");
        assert_eq!(s.eval("(car 5)").encode(), "(err vm type-error car)");
        assert_eq!(s.eval("(quotient 1 0)").encode(), "(err vm divide-by-zero)");
        assert_eq!(s.eval("(cond").encode(), "(err proto unexpected-eof)");
        assert_eq!(
            s.eval("(go nowhere)").encode(),
            "(err compile no-such-label)"
        );
        assert_eq!(s.eval("g").encode(), "(ok value 7)");
        let (occ, _) = s.close();
        assert_eq!(occ, 0);
    }

    #[test]
    fn cyclic_result_is_a_typed_reply_not_a_panic() {
        let mut s = Session::new(0, &cfg());
        let cyc = "(prog (x) (setq x (cons 1 (cons 2 nil))) (rplacd (cdr x) x) (return x))";
        assert_eq!(s.eval(cyc).encode(), "(err lp cyclic)");
        // The cycle is unreachable garbage now; a later request still runs.
        assert_eq!(s.eval("(add 1 2)").encode(), "(ok value 3)");
    }

    #[test]
    fn runaway_program_hits_step_budget() {
        let mut s = Session::new(
            0,
            &ServeConfig {
                step_budget: 10_000,
                ..cfg()
            },
        );
        assert_eq!(
            s.eval("(prog () loop (go loop))").encode(),
            "(err vm step-budget)"
        );
        assert_eq!(s.eval("(add 1 1)").encode(), "(ok value 2)");
    }

    #[test]
    fn suspend_resume_is_transparent_and_stats_neutral() {
        let c = cfg();
        let mut a = Session::new(7, &c);
        let mut b = Session::new(7, &c);
        let warm = [
            "(setq acc (cons 1 (cons 2 (cons 3 nil))))",
            "(setq n 5)",
            "(setq acc (cons n acc))",
        ];
        for req in warm {
            assert_eq!(a.eval(req), b.eval(req));
        }
        let blob = a.suspend();
        let mut a = Session::resume(7, &c, &blob).expect("resume");
        assert_eq!(
            a.ledger(),
            b.ledger(),
            "suspension must not move the ledger"
        );
        assert_eq!(a.counts(), b.counts());
        let cold = ["(car acc)", "(setq acc (cdr acc))", "(setq acc nil)"];
        for req in cold {
            assert_eq!(a.eval(req), b.eval(req));
        }
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.ledger_reply(), b.ledger_reply());
        let (occ_a, _) = a.close();
        let (occ_b, _) = b.close();
        assert_eq!((occ_a, occ_b), (0, 0));
    }

    #[test]
    fn sequenced_retries_replay_without_reexecuting() {
        let mut s = Session::new(0, &cfg());
        let (r0, applied) = s.eval_seq(0, "(setq acc (cons 1 nil))");
        assert!(applied);
        assert_eq!(r0.encode(), "(ok value (1))");
        let (r1, applied) = s.eval_seq(1, "(setq acc (cons 2 acc))");
        assert!(applied);
        assert_eq!(r1.encode(), "(ok value (2 1))");
        let ledger_before = s.ledger();
        let digest_before = s.digest;
        // A retried mutating request comes back from the cache: same
        // bytes, no second application, ledger and digest untouched.
        let (retry, applied) = s.eval_seq(1, "(setq acc (cons 2 acc))");
        assert!(!applied);
        assert_eq!(retry, r1);
        assert_eq!(s.ledger(), ledger_before);
        assert_eq!(s.digest, digest_before);
        // Ahead of the cursor is a typed gap; far behind is too-old.
        let (gap, applied) = s.eval_seq(5, "(add 1 1)");
        assert!(!applied);
        assert_eq!(gap.encode(), "(err session seq-gap 2 5)");
        for k in 2..(2 + DEDUP_WINDOW as u64 + 1) {
            assert!(s.eval_seq(k, "(add 1 1)").1);
        }
        let (old, applied) = s.eval_seq(0, "(setq acc (cons 1 nil))");
        assert!(!applied);
        assert_eq!(old.encode(), "(err session seq-too-old 0)");
    }

    #[test]
    fn dedup_window_survives_suspend_resume() {
        let c = cfg();
        let mut s = Session::new(3, &c);
        let (r0, _) = s.eval_seq(0, "(setq n 7)");
        let (r1, _) = s.eval_seq(1, "(add n 1)");
        let blob = s.suspend();
        let mut s = Session::resume(3, &c, &blob).expect("resume");
        assert_eq!(s.next_seq(), 2);
        assert_eq!(s.eval_seq(0, "(setq n 7)"), (r0, false));
        assert_eq!(s.eval_seq(1, "(add n 1)"), (r1, false));
        let (r2, applied) = s.eval_seq(2, "(add n 2)");
        assert!(applied);
        assert_eq!(r2.encode(), "(ok value 9)");
    }

    #[test]
    fn corrupt_blob_fails_closed() {
        let c = cfg();
        let mut s = Session::new(1, &c);
        s.eval("(setq x (cons 1 nil))");
        let mut blob = s.suspend();
        let mid = blob.len() / 2;
        blob[mid] ^= 0xff;
        assert!(Session::resume(1, &c, &blob).is_err());
        let short = &blob[..blob.len() / 3];
        assert!(Session::resume(1, &c, short).is_err());
    }
}
