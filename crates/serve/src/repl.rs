//! WAL-shipping replication: primary → warm standby.
//!
//! The primary appends one record per *mutating* request (`open`,
//! `eval`, `close`) to an in-memory write-ahead log. Each record is
//! encoded as a `[u32 len][u32 crc32][payload]` frame — the same frame
//! discipline `small-persist` uses for journal batches — and carries
//! the request itself plus the FNV-1a digest of the encoded reply the
//! primary produced. Appending happens **before** the reply is posted
//! to the client, so an acknowledged request is always shipped: the
//! standby can never be missing state a client has seen confirmed.
//!
//! A standby connects with a `(hello <version> replica)` handshake and
//! pulls frames with `(pull <lsn>)`, receiving `(ok frames <next>
//! <h-hex>)` batches. It replays each record through its own
//! [`SessionStore`] — re-executing the request, not patching state —
//! and verifies that the digest of its own reply matches the digest
//! the primary recorded. Any mismatch is a typed
//! [`ReplError::Divergence`] and replication **fails closed**: a
//! standby that cannot prove byte-identical behaviour must not be
//! promoted. Read-only requests (`ledger`, `digest`, `stats`) are not
//! logged; they cannot change state, and the post-failover harness
//! queries them directly against the promoted store.
//!
//! LRU suspend/resume is deliberately invisible here: eviction is
//! stats-neutral, so primary and standby may evict entirely different
//! sessions at different times and still agree byte-for-byte on every
//! reply, ledger, and digest. The failover campaign runs the standby
//! with a *different* residency cap than the primary to keep that
//! honest.

use crate::manager::SessionStore;
use crate::protocol::Reply;
use crate::session::ServeConfig;
use small_persist::{crc32, digest_bytes, ByteReader, ByteWriter, DIGEST_SEED};
use std::fmt;

/// The digest a WAL record stores for a reply: FNV-1a over the
/// canonical encoded reply text.
pub fn reply_digest(reply: &Reply) -> u64 {
    digest_bytes(DIGEST_SEED, reply.encode().as_bytes())
}

/// A mutating operation, as shipped to the standby.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// `(open)` that allocated the record's session id.
    Open,
    /// `(eval <id> …)` with the canonical program text.
    Eval(String),
    /// `(close <id>)`.
    Close,
}

/// One replicated request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Log sequence number (dense, from 0).
    pub lsn: u64,
    /// The session the operation targets (for `Open`: the id assigned).
    pub session: u64,
    /// The operation.
    pub op: WalOp,
    /// FNV-1a digest of the primary's encoded reply.
    pub reply_digest: u64,
}

fn encode_record(rec: &WalRecord) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(rec.lsn);
    w.put_u64(rec.session);
    match &rec.op {
        WalOp::Open => w.put_u8(0),
        WalOp::Eval(src) => {
            w.put_u8(1);
            w.put_str(src);
        }
        WalOp::Close => w.put_u8(2),
    }
    w.put_u64(rec.reply_digest);
    let payload = w.finish();
    let mut frame = Vec::with_capacity(8 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// Replication failures. Transport is TCP (reliable), so unlike the
/// on-disk journal there is no torn-tail tolerance: any damage or gap
/// in a pulled batch fails closed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplError {
    /// A frame failed structural or CRC validation.
    BadFrame {
        /// Byte offset of the bad frame within the batch.
        offset: usize,
        /// What was wrong.
        reason: &'static str,
    },
    /// Records arrived out of sequence.
    Gap {
        /// The LSN the standby expected next.
        expected: u64,
        /// The LSN that actually arrived.
        got: u64,
    },
    /// The standby's replay produced a different reply than the
    /// primary recorded — the standby must not be promoted.
    Divergence {
        /// LSN of the diverging record.
        lsn: u64,
        /// Digest the primary recorded.
        expected: u64,
        /// Digest of the standby's own reply.
        actual: u64,
    },
}

impl fmt::Display for ReplError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplError::BadFrame { offset, reason } => {
                write!(f, "bad WAL frame at byte {offset}: {reason}")
            }
            ReplError::Gap { expected, got } => {
                write!(f, "WAL gap: expected lsn {expected}, got {got}")
            }
            ReplError::Divergence {
                lsn,
                expected,
                actual,
            } => write!(
                f,
                "replay divergence at lsn {lsn}: primary d{expected:016x}, standby d{actual:016x}"
            ),
        }
    }
}

impl std::error::Error for ReplError {}

/// Decode a batch of concatenated WAL frames. Strict: a torn tail,
/// bad CRC, or malformed payload is an error, never a truncation.
pub fn decode_frames(bytes: &[u8]) -> Result<Vec<WalRecord>, ReplError> {
    let mut out = Vec::new();
    let mut at = 0;
    while at < bytes.len() {
        let bad = |reason| ReplError::BadFrame { offset: at, reason };
        if bytes.len() - at < 8 {
            return Err(bad("torn header"));
        }
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().unwrap());
        if bytes.len() - at - 8 < len {
            return Err(bad("torn payload"));
        }
        let payload = &bytes[at + 8..at + 8 + len];
        if crc32(payload) != crc {
            return Err(bad("crc mismatch"));
        }
        let mut r = ByteReader::new(payload);
        let field = |r: &mut ByteReader| r.u64().map_err(|_| bad("short payload"));
        let lsn = field(&mut r)?;
        let session = field(&mut r)?;
        let op = match r.u8().map_err(|_| bad("short payload"))? {
            0 => WalOp::Open,
            1 => WalOp::Eval(r.str().map_err(|_| bad("short payload"))?.to_string()),
            2 => WalOp::Close,
            _ => return Err(bad("bad op tag")),
        };
        let reply_digest = field(&mut r)?;
        r.expect_end().map_err(|_| bad("trailing bytes"))?;
        out.push(WalRecord {
            lsn,
            session,
            op,
            reply_digest,
        });
        at += 8 + len;
    }
    Ok(out)
}

/// The primary's in-memory write-ahead log: encoded frames indexed by
/// LSN. Shards append under a brief mutex held only for the push (the
/// server wraps this in `Arc<Mutex<Wal>>`).
#[derive(Default)]
pub struct Wal {
    frames: Vec<Vec<u8>>,
}

impl Wal {
    /// An empty log.
    pub fn new() -> Wal {
        Wal::default()
    }

    /// Append one record; assigns and returns its LSN.
    pub fn append(&mut self, session: u64, op: WalOp, reply_digest: u64) -> u64 {
        let lsn = self.frames.len() as u64;
        self.frames.push(encode_record(&WalRecord {
            lsn,
            session,
            op,
            reply_digest,
        }));
        lsn
    }

    /// The LSN the next append will get (== records logged so far).
    pub fn next_lsn(&self) -> u64 {
        self.frames.len() as u64
    }

    /// Concatenated frames starting at `from`, bounded by `max_bytes`
    /// (at least one frame if any remain, so pulls always progress).
    /// Returns the batch and the LSN to pull from next.
    pub fn frames_from(&self, from: u64, max_bytes: usize) -> (Vec<u8>, u64) {
        let mut out = Vec::new();
        let mut next = from;
        while (next as usize) < self.frames.len() {
            let frame = &self.frames[next as usize];
            if !out.is_empty() && out.len() + frame.len() > max_bytes {
                break;
            }
            out.extend_from_slice(frame);
            next += 1;
        }
        (out, next)
    }
}

/// A warm standby: replays pulled WAL batches through its own store
/// under digest verification, ready to be promoted.
pub struct Standby {
    store: SessionStore,
    next_lsn: u64,
}

impl Standby {
    /// A cold standby (no state, expecting LSN 0).
    pub fn new(cfg: ServeConfig) -> Standby {
        Standby {
            store: SessionStore::new(cfg),
            next_lsn: 0,
        }
    }

    /// The LSN this standby wants next — the argument for its next
    /// `(pull …)`.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Replay one pulled batch. Returns the number of records applied.
    /// Fails closed on damage, gaps, or divergence; a failed standby
    /// must be discarded, not promoted.
    pub fn apply(&mut self, bytes: &[u8]) -> Result<usize, ReplError> {
        let records = decode_frames(bytes)?;
        for rec in &records {
            if rec.lsn != self.next_lsn {
                return Err(ReplError::Gap {
                    expected: self.next_lsn,
                    got: rec.lsn,
                });
            }
            let reply = match &rec.op {
                WalOp::Open => self.store.open_with_id(rec.session),
                WalOp::Eval(src) => self.store.eval(rec.session, src),
                WalOp::Close => self.store.close(rec.session),
            };
            let actual = reply_digest(&reply);
            if actual != rec.reply_digest {
                return Err(ReplError::Divergence {
                    lsn: rec.lsn,
                    expected: rec.reply_digest,
                    actual,
                });
            }
            self.next_lsn += 1;
        }
        Ok(records.len())
    }

    /// Read-only view of the standby's store (harness assertions).
    pub fn store(&self) -> &SessionStore {
        &self.store
    }

    /// Promote: the standby's store becomes the serving store. After
    /// promotion the caller serves requests against it directly.
    pub fn promote(self) -> SessionStore {
        self.store
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Request;

    fn cfg(max_resident: usize) -> ServeConfig {
        ServeConfig {
            heap_cells: 1 << 12,
            table_size: 256,
            max_resident,
            ..ServeConfig::default()
        }
    }

    /// Drive a primary store + WAL by hand, exactly as a shard does.
    fn primary_step(store: &mut SessionStore, wal: &mut Wal, req: &Request) -> Reply {
        let reply = store.apply(req);
        match req {
            Request::Open => {
                if let Reply::Opened { id } = reply {
                    wal.append(id, WalOp::Open, reply_digest(&reply));
                }
            }
            Request::Eval { id, src } => {
                wal.append(*id, WalOp::Eval(src.clone()), reply_digest(&reply));
            }
            Request::Close { id } => {
                wal.append(*id, WalOp::Close, reply_digest(&reply));
            }
            _ => {}
        }
        reply
    }

    #[test]
    fn standby_replays_to_identical_state() {
        let mut primary = SessionStore::new(cfg(2));
        let mut wal = Wal::new();
        // Standby runs a *different* residency cap: eviction schedule
        // differs, results must not.
        let mut standby = Standby::new(cfg(1));

        let mut reqs = vec![Request::Open, Request::Open, Request::Open];
        for id in 0..3u64 {
            reqs.push(Request::Eval {
                id,
                src: "(setq acc nil)".to_string(),
            });
            for j in 0..4 {
                reqs.push(Request::Eval {
                    id,
                    src: format!("(setq acc (cons {} acc))", id as usize + j),
                });
            }
        }
        reqs.push(Request::Close { id: 1 });
        for req in &reqs {
            let reply = primary_step(&mut primary, &mut wal, req);
            assert!(!reply.is_err(), "{req:?} → {}", reply.encode());
        }

        // Pull in small batches until caught up.
        while standby.next_lsn() < wal.next_lsn() {
            let (batch, next) = wal.frames_from(standby.next_lsn(), 96);
            assert!(next > standby.next_lsn(), "pull must progress");
            standby.apply(&batch).expect("replay");
        }

        // Promoted state is byte-identical: ledgers and digests of all
        // surviving sessions match, as do aggregate counts.
        let mut promoted = standby.promote();
        assert_eq!(promoted.session_ids(), primary.session_ids());
        for id in primary.session_ids() {
            assert_eq!(promoted.ledger(id), primary.ledger(id), "ledger {id}");
            assert_eq!(promoted.digest(id), primary.digest(id), "digest {id}");
        }
        assert_eq!(promoted.aggregate_counts(), primary.aggregate_counts());
        // And the promoted store keeps serving with id continuity.
        assert_eq!(promoted.apply(&Request::Open), Reply::Opened { id: 3 });
    }

    #[test]
    fn corrupt_batch_fails_closed() {
        let mut wal = Wal::new();
        wal.append(0, WalOp::Open, 7);
        wal.append(0, WalOp::Eval("(add 1 2)".to_string()), 9);
        let (mut batch, _) = wal.frames_from(0, usize::MAX);
        // Flip a payload byte: CRC must catch it.
        let last = batch.len() - 1;
        batch[last] ^= 0xff;
        let mut standby = Standby::new(cfg(2));
        assert!(matches!(
            standby.apply(&batch),
            Err(ReplError::BadFrame { .. })
        ));
        // A torn tail is also fatal — TCP delivered it, so it is damage.
        let (whole, _) = wal.frames_from(0, usize::MAX);
        assert!(matches!(
            standby.apply(&whole[..whole.len() - 3]),
            Err(ReplError::BadFrame { .. })
        ));
    }

    #[test]
    fn gap_and_divergence_fail_closed() {
        let mut primary = SessionStore::new(cfg(2));
        let mut wal = Wal::new();
        primary_step(&mut primary, &mut wal, &Request::Open);
        primary_step(
            &mut primary,
            &mut wal,
            &Request::Eval {
                id: 0,
                src: "(add 1 1)".to_string(),
            },
        );
        // Skip the first record: gap.
        let mut standby = Standby::new(cfg(2));
        let (tail, _) = wal.frames_from(1, usize::MAX);
        assert_eq!(
            standby.apply(&tail),
            Err(ReplError::Gap {
                expected: 0,
                got: 1
            })
        );
        // Lie about a reply digest: divergence at that lsn.
        let mut lying = Wal::new();
        lying.append(0, WalOp::Open, 0xdead_beef);
        let (batch, _) = lying.frames_from(0, usize::MAX);
        let mut standby = Standby::new(cfg(2));
        assert!(matches!(
            standby.apply(&batch),
            Err(ReplError::Divergence { lsn: 0, .. })
        ));
    }

    #[test]
    fn frames_round_trip_and_batches_bound_bytes() {
        let mut wal = Wal::new();
        for k in 0..10u64 {
            wal.append(k, WalOp::Eval(format!("(add {k} {k})")), k * 3);
        }
        let (all, next) = wal.frames_from(0, usize::MAX);
        assert_eq!(next, 10);
        let records = decode_frames(&all).expect("decode");
        assert_eq!(records.len(), 10);
        assert_eq!(records[4].op, WalOp::Eval("(add 4 4)".to_string()));
        // Bounded pulls always progress and cover the log exactly.
        let mut at = 0;
        let mut seen = 0;
        while at < wal.next_lsn() {
            let (batch, next) = wal.frames_from(at, 64);
            assert!(next > at);
            seen += decode_frames(&batch).expect("decode").len();
            at = next;
        }
        assert_eq!(seen, 10);
    }
}
