//! WAL-shipping replication: primary → warm standby.
//!
//! The primary appends one record per *mutating* request (`open`,
//! `eval`, `close`) to an in-memory write-ahead log. Each record is
//! encoded as a `[u32 len][u32 crc32][payload]` frame — the same frame
//! discipline `small-persist` uses for journal batches — and carries
//! the request itself plus the FNV-1a digest of the encoded reply the
//! primary produced. Appending happens **before** the reply is posted
//! to the client, so an acknowledged request is always shipped: the
//! standby can never be missing state a client has seen confirmed.
//!
//! A standby connects with a `(hello <version> replica)` handshake and
//! pulls frames with `(pull <lsn>)`, receiving `(ok frames <next>
//! <h-hex>)` batches. It replays each record through its own
//! [`SessionStore`] — re-executing the request, not patching state —
//! and verifies that the digest of its own reply matches the digest
//! the primary recorded. Any mismatch is a typed
//! [`ReplError::Divergence`] and replication **fails closed**: a
//! standby that cannot prove byte-identical behaviour must not be
//! promoted. Read-only requests (`ledger`, `digest`, `stats`) are not
//! logged; they cannot change state, and the post-failover harness
//! queries them directly against the promoted store.
//!
//! LRU suspend/resume is deliberately invisible here: eviction is
//! stats-neutral, so primary and standby may evict entirely different
//! sessions at different times and still agree byte-for-byte on every
//! reply, ledger, and digest. The failover campaign runs the standby
//! with a *different* residency cap than the primary to keep that
//! honest.
//!
//! # Chained shipping (primary → S1 → S2)
//!
//! A [`Standby`] retains every frame it applies in its own [`Wal`]
//! (byte-identical to the primary's — the record encoding is
//! canonical), so it can serve `(pull <lsn>)` to a *downstream*
//! replica: [`RelayNode`] wraps a standby in a TCP listener that
//! answers `(hello …)`/`(ping)` with [`NodeRole::Standby`], ships
//! retained frames to replica connections, publishes per-hop relay lag
//! through `(metrics)`, and refuses session traffic with
//! `(err repl not-primary)`. On promotion the relay hands back its
//! *bound listener* along with the store and retained WAL, so the
//! successor server ([`crate::server::start_promoted`]) serves on the
//! same address with LSN continuity — the downstream replica keeps
//! pulling the same endpoint with its cursor intact, and the chain
//! heals to a fresh primary/standby pair.

use crate::manager::SessionStore;
use crate::protocol::{err, write_frame, FrameBuf, NodeRole, Reply, Request, Role, PROTO_VERSION};
use crate::session::ServeConfig;
use crate::telemetry::VolatileMetrics;
use small_persist::{crc32, digest_bytes, ByteReader, ByteWriter, DIGEST_SEED};
use std::fmt;
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::Duration;

/// The digest a WAL record stores for a reply: FNV-1a over the
/// canonical encoded reply text.
pub fn reply_digest(reply: &Reply) -> u64 {
    digest_bytes(DIGEST_SEED, reply.encode().as_bytes())
}

/// A mutating operation, as shipped to the standby. The optional
/// idempotency fields (open token, request seq) ride in the record so
/// the standby's replay rebuilds the *same dedup state* the primary
/// held — a retry that lands after failover still gets its cached
/// reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalOp {
    /// `(open)` / `(open <token>)` that allocated the record's session
    /// id.
    Open {
        /// Idempotency token, when the open carried one.
        token: Option<u64>,
    },
    /// `(eval <id> …)` / `(seval <id> <seq> …)` with the canonical
    /// program text.
    Eval {
        /// Per-session sequence number, when the eval carried one.
        seq: Option<u64>,
        /// Canonical program text.
        src: String,
    },
    /// `(close <id>)` / `(close <id> <seq>)`.
    Close {
        /// Per-session sequence number, when the close carried one.
        seq: Option<u64>,
    },
}

/// One replicated request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// Log sequence number (dense, from 0).
    pub lsn: u64,
    /// The session the operation targets (for `Open`: the id assigned).
    pub session: u64,
    /// The operation.
    pub op: WalOp,
    /// FNV-1a digest of the primary's encoded reply.
    pub reply_digest: u64,
}

fn encode_record(rec: &WalRecord) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(rec.lsn);
    w.put_u64(rec.session);
    match &rec.op {
        WalOp::Open { token: None } => w.put_u8(0),
        WalOp::Eval { seq: None, src } => {
            w.put_u8(1);
            w.put_str(src);
        }
        WalOp::Close { seq: None } => w.put_u8(2),
        WalOp::Open { token: Some(t) } => {
            w.put_u8(3);
            w.put_u64(*t);
        }
        WalOp::Eval { seq: Some(s), src } => {
            w.put_u8(4);
            w.put_u64(*s);
            w.put_str(src);
        }
        WalOp::Close { seq: Some(s) } => {
            w.put_u8(5);
            w.put_u64(*s);
        }
    }
    w.put_u64(rec.reply_digest);
    let payload = w.finish();
    let mut frame = Vec::with_capacity(8 + payload.len());
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// Replication failures. Transport is TCP (reliable), so unlike the
/// on-disk journal there is no torn-tail tolerance: any damage or gap
/// in a pulled batch fails closed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReplError {
    /// A frame failed structural or CRC validation.
    BadFrame {
        /// Byte offset of the bad frame within the batch.
        offset: usize,
        /// What was wrong.
        reason: &'static str,
    },
    /// Records arrived out of sequence.
    Gap {
        /// The LSN the standby expected next.
        expected: u64,
        /// The LSN that actually arrived.
        got: u64,
    },
    /// The standby's replay produced a different reply than the
    /// primary recorded — the standby must not be promoted.
    Divergence {
        /// LSN of the diverging record.
        lsn: u64,
        /// Digest the primary recorded.
        expected: u64,
        /// Digest of the standby's own reply.
        actual: u64,
    },
}

impl fmt::Display for ReplError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplError::BadFrame { offset, reason } => {
                write!(f, "bad WAL frame at byte {offset}: {reason}")
            }
            ReplError::Gap { expected, got } => {
                write!(f, "WAL gap: expected lsn {expected}, got {got}")
            }
            ReplError::Divergence {
                lsn,
                expected,
                actual,
            } => write!(
                f,
                "replay divergence at lsn {lsn}: primary d{expected:016x}, standby d{actual:016x}"
            ),
        }
    }
}

impl std::error::Error for ReplError {}

/// Decode a batch of concatenated WAL frames. Strict: a torn tail,
/// bad CRC, or malformed payload is an error, never a truncation.
pub fn decode_frames(bytes: &[u8]) -> Result<Vec<WalRecord>, ReplError> {
    let mut out = Vec::new();
    let mut at = 0;
    while at < bytes.len() {
        let bad = |reason| ReplError::BadFrame { offset: at, reason };
        if bytes.len() - at < 8 {
            return Err(bad("torn header"));
        }
        let len = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[at + 4..at + 8].try_into().unwrap());
        if bytes.len() - at - 8 < len {
            return Err(bad("torn payload"));
        }
        let payload = &bytes[at + 8..at + 8 + len];
        if crc32(payload) != crc {
            return Err(bad("crc mismatch"));
        }
        let mut r = ByteReader::new(payload);
        let field = |r: &mut ByteReader| r.u64().map_err(|_| bad("short payload"));
        let lsn = field(&mut r)?;
        let session = field(&mut r)?;
        let op = match r.u8().map_err(|_| bad("short payload"))? {
            0 => WalOp::Open { token: None },
            1 => WalOp::Eval {
                seq: None,
                src: r.str().map_err(|_| bad("short payload"))?.to_string(),
            },
            2 => WalOp::Close { seq: None },
            3 => WalOp::Open {
                token: Some(r.u64().map_err(|_| bad("short payload"))?),
            },
            4 => WalOp::Eval {
                seq: Some(r.u64().map_err(|_| bad("short payload"))?),
                src: r.str().map_err(|_| bad("short payload"))?.to_string(),
            },
            5 => WalOp::Close {
                seq: Some(r.u64().map_err(|_| bad("short payload"))?),
            },
            _ => return Err(bad("bad op tag")),
        };
        let reply_digest = field(&mut r)?;
        r.expect_end().map_err(|_| bad("trailing bytes"))?;
        out.push(WalRecord {
            lsn,
            session,
            op,
            reply_digest,
        });
        at += 8 + len;
    }
    Ok(out)
}

/// The primary's in-memory write-ahead log: encoded frames indexed by
/// LSN. Shards append under a brief mutex held only for the push (the
/// server wraps this in `Arc<Mutex<Wal>>`).
#[derive(Default)]
pub struct Wal {
    frames: Vec<Vec<u8>>,
}

impl Wal {
    /// An empty log.
    pub fn new() -> Wal {
        Wal::default()
    }

    /// Append one record; assigns and returns its LSN.
    pub fn append(&mut self, session: u64, op: WalOp, reply_digest: u64) -> u64 {
        let lsn = self.frames.len() as u64;
        self.frames.push(encode_record(&WalRecord {
            lsn,
            session,
            op,
            reply_digest,
        }));
        lsn
    }

    /// Append an already-decoded record verbatim (the standby's relay
    /// retention path). The encoding is canonical, so the retained
    /// frame is byte-identical to the one the upstream shipped.
    pub fn append_record(&mut self, rec: &WalRecord) {
        debug_assert_eq!(rec.lsn, self.frames.len() as u64, "retention gap");
        self.frames.push(encode_record(rec));
    }

    /// The LSN the next append will get (== records logged so far).
    pub fn next_lsn(&self) -> u64 {
        self.frames.len() as u64
    }

    /// Concatenated frames starting at `from`, bounded by `max_bytes`
    /// (at least one frame if any remain, so pulls always progress).
    /// Returns the batch and the LSN to pull from next.
    pub fn frames_from(&self, from: u64, max_bytes: usize) -> (Vec<u8>, u64) {
        let mut out = Vec::new();
        let mut next = from;
        while (next as usize) < self.frames.len() {
            let frame = &self.frames[next as usize];
            if !out.is_empty() && out.len() + frame.len() > max_bytes {
                break;
            }
            out.extend_from_slice(frame);
            next += 1;
        }
        (out, next)
    }
}

/// A warm standby: replays pulled WAL batches through its own store
/// under digest verification, ready to be promoted. Applied frames are
/// retained in the standby's own [`Wal`] so it can relay them to a
/// downstream replica (and, on promotion, keep shipping from the same
/// LSN space).
pub struct Standby {
    store: SessionStore,
    wal: Wal,
    next_lsn: u64,
}

impl Standby {
    /// A cold standby (no state, expecting LSN 0).
    pub fn new(cfg: ServeConfig) -> Standby {
        Standby {
            store: SessionStore::new(cfg),
            wal: Wal::new(),
            next_lsn: 0,
        }
    }

    /// The LSN this standby wants next — the argument for its next
    /// `(pull …)`.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// The highest LSN applied so far (== [`Standby::next_lsn`]); the
    /// name the lag metrics use.
    pub fn applied_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Replay one pulled batch. Returns the number of records applied.
    ///
    /// Records the standby has already applied (`lsn < next_lsn`) are
    /// *skipped*, making a duplicated pull — a retried `(pull …)` after
    /// a reset, or an at-least-once shipping layer — idempotent. A
    /// record *ahead* of the cursor is still a fail-closed
    /// [`ReplError::Gap`], as are damage and divergence; a failed
    /// standby must be discarded, not promoted. The batch is fully
    /// decoded before any record applies, so a corrupt batch changes
    /// nothing.
    pub fn apply(&mut self, bytes: &[u8]) -> Result<usize, ReplError> {
        let records = decode_frames(bytes)?;
        let mut applied = 0;
        for rec in &records {
            if rec.lsn < self.next_lsn {
                continue; // already applied: duplicated pull
            }
            if rec.lsn > self.next_lsn {
                return Err(ReplError::Gap {
                    expected: self.next_lsn,
                    got: rec.lsn,
                });
            }
            let reply = match &rec.op {
                WalOp::Open { token: None } => self.store.open_with_id(rec.session),
                WalOp::Open { token: Some(t) } => self.store.open_with_token(rec.session, *t).0,
                WalOp::Eval { seq: None, src } => self.store.eval(rec.session, src),
                WalOp::Eval { seq: Some(s), src } => self.store.eval_seq(rec.session, *s, src).0,
                WalOp::Close { seq: None } => self.store.close(rec.session),
                WalOp::Close { seq: Some(s) } => self.store.close_seq(rec.session, *s).0,
            };
            let actual = reply_digest(&reply);
            if actual != rec.reply_digest {
                return Err(ReplError::Divergence {
                    lsn: rec.lsn,
                    expected: rec.reply_digest,
                    actual,
                });
            }
            self.wal.append_record(rec);
            self.next_lsn += 1;
            applied += 1;
        }
        Ok(applied)
    }

    /// Serve a downstream pull from the retained WAL: concatenated
    /// frames starting at `from`, bounded by `max_bytes`, plus the LSN
    /// to pull from next (see [`Wal::frames_from`]).
    pub fn frames_from(&self, from: u64, max_bytes: usize) -> (Vec<u8>, u64) {
        self.wal.frames_from(from, max_bytes)
    }

    /// Read-only view of the standby's store (harness assertions).
    pub fn store(&self) -> &SessionStore {
        &self.store
    }

    /// Promote: the standby's store becomes the serving store. After
    /// promotion the caller serves requests against it directly.
    pub fn promote(self) -> SessionStore {
        self.store
    }

    /// Promote, keeping the retained WAL: the successor server seeds
    /// its log from it so downstream pull cursors stay valid across
    /// the handover.
    pub fn promote_parts(self) -> (SessionStore, Wal) {
        (self.store, self.wal)
    }
}

// ---------------------------------------------------------------------
// Relay node: a standby that serves downstream replicas
// ---------------------------------------------------------------------

/// Byte bound for a relayed `(pull …)` batch — the same bound the
/// primary's shard loop uses, so chain hops behave identically.
const RELAY_PULL_BATCH_BYTES: usize = 64 * 1024;

/// Per-connection read timeout on the relay listener: short enough
/// that conn threads notice a stop promptly, long enough to idle
/// cheaply.
const RELAY_READ_TIMEOUT: Duration = Duration::from_millis(50);

struct RelayCore {
    standby: Standby,
    vol: VolatileMetrics,
}

/// What a stopped [`RelayNode`] dismantles into for promotion: the
/// **still-bound listener** (so the successor serves on the same
/// address and the downstream replica's connection target never
/// changes), the replayed store, the retained WAL (LSN continuity for
/// downstream pull cursors), and the relay's volatile metrics.
pub struct RelayParts {
    /// The relay's bound listener, ready to be inherited.
    pub listener: TcpListener,
    /// The replayed session store (dedup windows, token map, id cursor
    /// all warm).
    pub store: SessionStore,
    /// The retained WAL, byte-identical to the upstream's prefix.
    pub wal: Wal,
    /// Relay-side volatile metrics (pull serving counters, hop lag).
    pub vol: VolatileMetrics,
}

/// A chained standby serving the replication protocol over TCP: it
/// answers `(hello …)` and `(ping)` with [`NodeRole::Standby`], ships
/// its retained WAL to downstream `(pull …)`s, publishes per-hop relay
/// lag via `(metrics)`, and refuses session traffic with
/// `(err repl not-primary)` — a cluster-aware client that dials it
/// moves on to the next endpoint. The relay's *own* upstream pulls are
/// driven by the caller through [`RelayNode::apply`] (the campaign
/// drivers pull in lockstep to stay deterministic).
pub struct RelayNode {
    addr: SocketAddr,
    core: Arc<Mutex<RelayCore>>,
    stop: Arc<AtomicBool>,
    accept: JoinHandle<(TcpListener, Vec<JoinHandle<()>>)>,
}

impl RelayNode {
    /// Bind `addr` and start serving the relay protocol.
    pub fn start(addr: &str, cfg: ServeConfig) -> io::Result<RelayNode> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let core = Arc::new(Mutex::new(RelayCore {
            standby: Standby::new(cfg),
            vol: VolatileMetrics::default(),
        }));
        let stop = Arc::new(AtomicBool::new(false));
        let accept = {
            let core = Arc::clone(&core);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut conns: Vec<JoinHandle<()>> = Vec::new();
                loop {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            if stop.load(Ordering::SeqCst) {
                                break; // the stop() self-connect wakeup
                            }
                            let core = Arc::clone(&core);
                            let stop = Arc::clone(&stop);
                            conns.push(thread::spawn(move || {
                                relay_conn(&core, &stop, stream);
                            }));
                        }
                        Err(_) => {
                            if stop.load(Ordering::SeqCst) {
                                break;
                            }
                        }
                    }
                }
                (listener, conns)
            })
        };
        Ok(RelayNode {
            addr: local,
            core,
            stop,
            accept,
        })
    }

    /// The bound address downstream replicas (and failing-over
    /// clients) dial.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Apply a batch pulled from the upstream, retaining the frames
    /// for downstream serving (see [`Standby::apply`] for the
    /// fail-closed semantics).
    pub fn apply(&self, bytes: &[u8]) -> Result<usize, ReplError> {
        let mut core = self.lock();
        let n = core.standby.apply(bytes)?;
        let applied = core.standby.applied_lsn();
        core.vol.note_relay_applied(applied);
        Ok(n)
    }

    /// Record the upstream's next-LSN (observed by the caller's pull
    /// loop) so `(metrics)` can report this hop's lag.
    pub fn note_upstream(&self, lsn: u64) {
        self.lock().vol.note_relay_upstream(lsn);
    }

    /// The LSN this relay wants next from its upstream.
    pub fn next_lsn(&self) -> u64 {
        self.lock().standby.next_lsn()
    }

    /// The highest LSN applied (and servable downstream) so far.
    pub fn applied_lsn(&self) -> u64 {
        self.lock().standby.applied_lsn()
    }

    /// This hop's upstream-minus-applied lag.
    pub fn relay_lag(&self) -> u64 {
        self.lock().vol.relay_lag()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RelayCore> {
        self.core.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Stop serving and dismantle into [`RelayParts`]. Connection
    /// threads are joined (they notice the flag within one read
    /// timeout), the accept thread hands the bound listener back, and
    /// the standby is promoted with its retained WAL.
    pub fn stop(self) -> RelayParts {
        self.stop.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let (listener, conns) = self.accept.join().expect("relay accept thread");
        for c in conns {
            let _ = c.join();
        }
        let core = Arc::try_unwrap(self.core)
            .map_err(|_| ())
            .expect("relay conns joined")
            .into_inner()
            .unwrap_or_else(|e| e.into_inner());
        let (store, wal) = core.standby.promote_parts();
        RelayParts {
            listener,
            store,
            wal,
            vol: core.vol,
        }
    }
}

/// One relay connection: incremental frame reassembly through
/// [`FrameBuf`] (torn writes from a faulty transport reassemble
/// cleanly), replies written inline. Exits on EOF, any I/O error, a
/// framing violation, or the relay's stop flag.
fn relay_conn(core: &Arc<Mutex<RelayCore>>, stop: &Arc<AtomicBool>, stream: TcpStream) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(RELAY_READ_TIMEOUT));
    let mut fb = FrameBuf::new();
    let mut chunk = [0u8; 4096];
    let mut replica = false;
    loop {
        loop {
            match fb.pop_ref() {
                Ok(Some(text)) => {
                    let reply = relay_reply(core, text, &mut replica);
                    if write_frame(&mut (&stream), &reply.encode()).is_err() {
                        return;
                    }
                }
                Ok(None) => break,
                Err(_) => return, // oversized/corrupt framing: drop
            }
        }
        match (&stream).read(&mut chunk) {
            Ok(0) => return,
            Ok(n) => fb.extend(&chunk[..n]),
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if stop.load(Ordering::SeqCst) {
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Map one request to the relay's reply. Only the replication and
/// discovery surface is served; session traffic is refused with a
/// typed `(err repl not-primary)` so a scanning client moves on.
fn relay_reply(core: &Arc<Mutex<RelayCore>>, text: &str, replica: &mut bool) -> Reply {
    let req = match Request::decode(text) {
        Ok(r) => r,
        Err(reply) => return reply,
    };
    match req {
        Request::Hello { version, role } => {
            if version == PROTO_VERSION {
                if role == Role::Replica {
                    *replica = true;
                }
                Reply::Hello {
                    version: PROTO_VERSION,
                    node: NodeRole::Standby,
                }
            } else {
                crate::protocol::unsupported_version_reply(version)
            }
        }
        Request::Ping => {
            let core = core.lock().unwrap_or_else(|e| e.into_inner());
            Reply::Pong {
                lsn: core.standby.applied_lsn(),
                node: NodeRole::Standby,
            }
        }
        Request::Pull { from } => {
            if !*replica {
                return err("proto", "not-a-replica");
            }
            let mut core = core.lock().unwrap_or_else(|e| e.into_inner());
            let (bytes, next) = core.standby.frames_from(from, RELAY_PULL_BATCH_BYTES);
            core.vol.wal_pull_batches.inc();
            core.vol.wal_shipped.add(next.saturating_sub(from));
            // The downstream's `(pull <from>)` is its applied-LSN
            // confession, exactly as on the primary.
            core.vol.note_wal_applied(from);
            Reply::Frames { next, bytes }
        }
        Request::Metrics => {
            let core = core.lock().unwrap_or_else(|e| e.into_inner());
            Reply::Metrics {
                deterministic: core.standby.store().telemetry().deterministic_json(),
                volatile: core.vol.json(core.standby.store().telemetry()),
            }
        }
        _ => err("repl", "not-primary"),
    }
}

// ---------------------------------------------------------------------
// Primary lease
// ---------------------------------------------------------------------

/// Parameters of the standby's primary lease.
#[derive(Debug, Clone, Copy)]
pub struct LeaseParams {
    /// Consecutive missed heartbeats before the lease expires and the
    /// standby self-promotes.
    pub miss_threshold: u32,
    /// Per-heartbeat connect/read timeout the prober should use.
    pub ping_timeout: std::time::Duration,
}

impl Default for LeaseParams {
    fn default() -> LeaseParams {
        LeaseParams {
            miss_threshold: 3,
            ping_timeout: std::time::Duration::from_millis(250),
        }
    }
}

/// The standby's lease on its primary, driven by `(ping)` heartbeat
/// outcomes.
///
/// This is a pure state machine — it owns no clock and no socket. The
/// caller probes the primary (e.g. [`crate::client::ping`]) at
/// whatever cadence it likes and reports each outcome with
/// [`Lease::beat`] (answered) or [`Lease::miss`] (connect refused,
/// timed out, or the connection died). After `miss_threshold`
/// *consecutive* misses the lease expires — permanently — and the
/// standby must stop pulling and promote. Keeping time out of the type
/// keeps expiry deterministic: a harness that drops the primary and
/// then probes `miss_threshold` times always observes expiry at the
/// same beat, regardless of scheduling.
#[derive(Debug)]
pub struct Lease {
    params: LeaseParams,
    misses: u32,
    expired: bool,
    /// The primary's next-LSN from the last answered heartbeat.
    last_lsn: u64,
}

impl Lease {
    /// A fresh, unexpired lease.
    pub fn new(params: LeaseParams) -> Lease {
        Lease {
            params,
            misses: 0,
            expired: false,
            last_lsn: 0,
        }
    }

    /// The lease's parameters.
    pub fn params(&self) -> LeaseParams {
        self.params
    }

    /// An answered heartbeat carrying the primary's next WAL LSN:
    /// clears the consecutive-miss counter (unless already expired —
    /// expiry is final; a zombie primary answering late must not
    /// un-promote the standby).
    pub fn beat(&mut self, lsn: u64) {
        if !self.expired {
            self.misses = 0;
            self.last_lsn = lsn;
        }
    }

    /// An unanswered heartbeat. Returns `true` once the lease has
    /// expired (misses reached the threshold).
    pub fn miss(&mut self) -> bool {
        if !self.expired {
            self.misses += 1;
            if self.misses >= self.params.miss_threshold {
                self.expired = true;
            }
        }
        self.expired
    }

    /// True once the lease has expired; never reverts.
    pub fn is_expired(&self) -> bool {
        self.expired
    }

    /// Current consecutive-miss count.
    pub fn misses(&self) -> u32 {
        self.misses
    }

    /// The primary's next-LSN from the last answered heartbeat.
    pub fn last_lsn(&self) -> u64 {
        self.last_lsn
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Request;

    fn cfg(max_resident: usize) -> ServeConfig {
        ServeConfig {
            heap_cells: 1 << 12,
            table_size: 256,
            max_resident,
            ..ServeConfig::default()
        }
    }

    /// Drive a primary store + WAL by hand, exactly as a shard does.
    fn primary_step(store: &mut SessionStore, wal: &mut Wal, req: &Request) -> Reply {
        let reply = store.apply(req);
        match req {
            Request::Open { token } => {
                if let Reply::Opened { id } = reply {
                    wal.append(id, WalOp::Open { token: *token }, reply_digest(&reply));
                }
            }
            Request::Eval { id, seq, src } => {
                wal.append(
                    *id,
                    WalOp::Eval {
                        seq: *seq,
                        src: src.clone(),
                    },
                    reply_digest(&reply),
                );
            }
            Request::Close { id, seq } => {
                wal.append(*id, WalOp::Close { seq: *seq }, reply_digest(&reply));
            }
            _ => {}
        }
        reply
    }

    #[test]
    fn standby_replays_to_identical_state() {
        let mut primary = SessionStore::new(cfg(2));
        let mut wal = Wal::new();
        // Standby runs a *different* residency cap: eviction schedule
        // differs, results must not.
        let mut standby = Standby::new(cfg(1));

        let mut reqs = vec![
            Request::Open { token: None },
            Request::Open { token: None },
            Request::Open { token: None },
        ];
        for id in 0..3u64 {
            reqs.push(Request::Eval {
                id,
                seq: None,
                src: "(setq acc nil)".to_string(),
            });
            for j in 0..4 {
                reqs.push(Request::Eval {
                    id,
                    seq: None,
                    src: format!("(setq acc (cons {} acc))", id as usize + j),
                });
            }
        }
        reqs.push(Request::Close { id: 1, seq: None });
        for req in &reqs {
            let reply = primary_step(&mut primary, &mut wal, req);
            assert!(!reply.is_err(), "{req:?} → {}", reply.encode());
        }

        // Pull in small batches until caught up.
        while standby.next_lsn() < wal.next_lsn() {
            let (batch, next) = wal.frames_from(standby.next_lsn(), 96);
            assert!(next > standby.next_lsn(), "pull must progress");
            standby.apply(&batch).expect("replay");
        }

        // Promoted state is byte-identical: ledgers and digests of all
        // surviving sessions match, as do aggregate counts.
        let mut promoted = standby.promote();
        assert_eq!(promoted.session_ids(), primary.session_ids());
        for id in primary.session_ids() {
            assert_eq!(promoted.ledger(id), primary.ledger(id), "ledger {id}");
            assert_eq!(promoted.digest(id), primary.digest(id), "digest {id}");
        }
        assert_eq!(promoted.aggregate_counts(), primary.aggregate_counts());
        // And the promoted store keeps serving with id continuity.
        assert_eq!(
            promoted.apply(&Request::Open { token: None }),
            Reply::Opened { id: 3 }
        );
    }

    #[test]
    fn corrupt_batch_fails_closed() {
        let mut wal = Wal::new();
        wal.append(0, WalOp::Open { token: None }, 7);
        wal.append(
            0,
            WalOp::Eval {
                seq: None,
                src: "(add 1 2)".to_string(),
            },
            9,
        );
        let (mut batch, _) = wal.frames_from(0, usize::MAX);
        // Flip a payload byte: CRC must catch it.
        let last = batch.len() - 1;
        batch[last] ^= 0xff;
        let mut standby = Standby::new(cfg(2));
        assert!(matches!(
            standby.apply(&batch),
            Err(ReplError::BadFrame { .. })
        ));
        // A torn tail is also fatal — TCP delivered it, so it is damage.
        let (whole, _) = wal.frames_from(0, usize::MAX);
        assert!(matches!(
            standby.apply(&whole[..whole.len() - 3]),
            Err(ReplError::BadFrame { .. })
        ));
    }

    #[test]
    fn gap_and_divergence_fail_closed() {
        let mut primary = SessionStore::new(cfg(2));
        let mut wal = Wal::new();
        primary_step(&mut primary, &mut wal, &Request::Open { token: None });
        primary_step(
            &mut primary,
            &mut wal,
            &Request::Eval {
                id: 0,
                seq: None,
                src: "(add 1 1)".to_string(),
            },
        );
        // Skip the first record: gap.
        let mut standby = Standby::new(cfg(2));
        let (tail, _) = wal.frames_from(1, usize::MAX);
        assert_eq!(
            standby.apply(&tail),
            Err(ReplError::Gap {
                expected: 0,
                got: 1
            })
        );
        // Lie about a reply digest: divergence at that lsn.
        let mut lying = Wal::new();
        lying.append(0, WalOp::Open { token: None }, 0xdead_beef);
        let (batch, _) = lying.frames_from(0, usize::MAX);
        let mut standby = Standby::new(cfg(2));
        assert!(matches!(
            standby.apply(&batch),
            Err(ReplError::Divergence { lsn: 0, .. })
        ));
    }

    #[test]
    fn frames_round_trip_and_batches_bound_bytes() {
        let mut wal = Wal::new();
        for k in 0..10u64 {
            wal.append(
                k,
                WalOp::Eval {
                    seq: Some(k),
                    src: format!("(add {k} {k})"),
                },
                k * 3,
            );
        }
        let (all, next) = wal.frames_from(0, usize::MAX);
        assert_eq!(next, 10);
        let records = decode_frames(&all).expect("decode");
        assert_eq!(records.len(), 10);
        assert_eq!(
            records[4].op,
            WalOp::Eval {
                seq: Some(4),
                src: "(add 4 4)".to_string()
            }
        );
        // Bounded pulls always progress and cover the log exactly.
        let mut at = 0;
        let mut seen = 0;
        while at < wal.next_lsn() {
            let (batch, next) = wal.frames_from(at, 64);
            assert!(next > at);
            seen += decode_frames(&batch).expect("decode").len();
            at = next;
        }
        assert_eq!(seen, 10);
    }

    #[test]
    fn duplicated_pulls_are_idempotent() {
        let mut primary = SessionStore::new(cfg(2));
        let mut wal = Wal::new();
        let script = [
            Request::Open { token: Some(9) },
            Request::Eval {
                id: 0,
                seq: Some(0),
                src: "(setq acc (cons 1 nil))".to_string(),
            },
            Request::Eval {
                id: 0,
                seq: Some(1),
                src: "(setq acc (cons 2 acc))".to_string(),
            },
        ];
        for req in &script {
            assert!(!primary_step(&mut primary, &mut wal, req).is_err());
        }
        let (batch, _) = wal.frames_from(0, usize::MAX);
        let mut standby = Standby::new(cfg(2));
        assert_eq!(standby.apply(&batch).expect("first apply"), 3);
        // The same batch again — a duplicated pull — applies nothing
        // and changes nothing.
        let ledger_before = standby.store.ledger(0);
        assert_eq!(standby.apply(&batch).expect("duplicate apply"), 0);
        assert_eq!(standby.applied_lsn(), 3);
        assert_eq!(standby.store.ledger(0), ledger_before);
        // An overlapping batch (middle of the log onward) also skips
        // cleanly; a batch starting beyond the cursor is still a gap.
        let (tail, _) = wal.frames_from(1, usize::MAX);
        assert_eq!(standby.apply(&tail).expect("overlap apply"), 0);
        let mut behind = Standby::new(cfg(2));
        let (ahead, _) = wal.frames_from(2, usize::MAX);
        assert!(matches!(behind.apply(&ahead), Err(ReplError::Gap { .. })));
    }

    #[test]
    fn replay_rebuilds_the_dedup_state() {
        let mut primary = SessionStore::new(cfg(2));
        let mut wal = Wal::new();
        primary_step(&mut primary, &mut wal, &Request::Open { token: Some(41) });
        let eval = Request::Eval {
            id: 0,
            seq: Some(0),
            src: "(setq acc (cons 7 nil))".to_string(),
        };
        let first = primary_step(&mut primary, &mut wal, &eval);
        let mut standby = Standby::new(cfg(2));
        let (batch, _) = wal.frames_from(0, usize::MAX);
        standby.apply(&batch).expect("replay");
        let mut promoted = standby.promote();
        // A retry of the last pre-failover mutating request, landing on
        // the promoted standby, is answered from the replicated replay
        // window — not re-executed.
        let ledger_before = promoted.ledger(0);
        let (retry, applied) = promoted.eval_seq(0, 0, "(setq acc (cons 7 nil))");
        assert!(!applied, "retry must hit the replicated dedup window");
        assert_eq!(retry, first);
        assert_eq!(promoted.ledger(0), ledger_before);
        // A retried tokenized open also resolves to the original id.
        let (reopened, applied) = promoted.open_with_token(99, 41);
        assert!(!applied);
        assert_eq!(reopened, Reply::Opened { id: 0 });
    }

    #[test]
    fn relay_ships_downstream_and_promotes_with_its_listener() {
        use crate::client::Client;
        use crate::protocol::{NodeRole, Role};

        // A primary log with a tokenized open and seq'd mutations —
        // the state a failover must preserve.
        let mut primary = SessionStore::new(cfg(2));
        let mut wal = Wal::new();
        let script = [
            Request::Open { token: Some(7) },
            Request::Eval {
                id: 0,
                seq: Some(0),
                src: "(setq acc (cons 1 nil))".to_string(),
            },
            Request::Eval {
                id: 0,
                seq: Some(1),
                src: "(setq acc (cons 2 acc))".to_string(),
            },
        ];
        for req in &script {
            assert!(!primary_step(&mut primary, &mut wal, req).is_err());
        }

        // S1: relay fed by the harness (the upstream hop), serving TCP.
        let relay = RelayNode::start("127.0.0.1:0", cfg(1)).expect("bind relay");
        let addr = relay.addr();
        relay.note_upstream(wal.next_lsn());
        assert_eq!(relay.relay_lag(), wal.next_lsn());
        while relay.next_lsn() < wal.next_lsn() {
            let (batch, _) = wal.frames_from(relay.next_lsn(), 96);
            relay.apply(&batch).expect("relay apply");
        }
        assert_eq!(relay.relay_lag(), 0);

        // S2: a downstream standby catching up over the wire — the
        // second hop of the chain.
        let mut s2 = Standby::new(cfg(3));
        let mut down = Client::connect(addr, Role::Replica).expect("dial relay");
        assert_eq!(down.node_role(), NodeRole::Standby);
        down.catch_up(&mut s2, wal.next_lsn())
            .expect("chain catchup");
        assert_eq!(s2.applied_lsn(), wal.next_lsn());

        // Discovery surface: standby role on hello and ping, session
        // traffic refused, pulls gated on the replica role, metrics
        // expose the hop lag.
        let mut c = Client::connect(addr, Role::Client).expect("dial as client");
        assert_eq!(c.node_role(), NodeRole::Standby);
        assert_eq!(c.ping().expect("ping"), wal.next_lsn());
        assert_eq!(c.request_text("(open)").unwrap(), "(err repl not-primary)");
        assert_eq!(
            c.request_text("(pull 0)").unwrap(),
            "(err proto not-a-replica)"
        );
        match c.request(&Request::Metrics).expect("metrics") {
            Reply::Metrics { volatile, .. } => {
                assert!(volatile.contains("\"relay_lag\":0"), "{volatile}");
            }
            other => panic!("want metrics, got {}", other.encode()),
        }
        drop(c);
        drop(down);

        // Stop → promotion parts: the listener survives still bound to
        // the same address, the retained WAL keeps LSN continuity, and
        // the store answers a retried pre-failover mutation from the
        // replicated dedup window.
        let parts = relay.stop();
        assert_eq!(parts.listener.local_addr().unwrap(), addr);
        assert_eq!(parts.wal.next_lsn(), wal.next_lsn());
        let mut promoted = parts.store;
        let (retry, applied) = promoted.eval_seq(0, 1, "(setq acc (cons 2 acc))");
        assert!(!applied, "retry must hit the replicated dedup window");
        assert!(!retry.is_err());
        let (reopened, applied) = promoted.open_with_token(99, 7);
        assert!(!applied);
        assert_eq!(reopened, Reply::Opened { id: 0 });
    }

    mod lease_props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(256))]

            /// Model check for the lease state machine over arbitrary
            /// beat/miss interleavings: expiry fires at exactly
            /// `miss_threshold` *consecutive* misses, never before,
            /// and never reverts.
            #[test]
            fn lease_expiry_matches_the_consecutive_miss_model(
                threshold in 1u32..6,
                events in prop::collection::vec(any::<bool>(), 0..64),
            ) {
                let mut lease = Lease::new(LeaseParams {
                    miss_threshold: threshold,
                    ..LeaseParams::default()
                });
                let mut consecutive = 0u32;
                let mut expired = false;
                let mut last_lsn = 0u64;
                for (i, &is_beat) in events.iter().enumerate() {
                    if is_beat {
                        lease.beat(i as u64 + 1);
                        if !expired {
                            consecutive = 0;
                            last_lsn = i as u64 + 1;
                        }
                    } else {
                        let fired = lease.miss();
                        if !expired {
                            consecutive += 1;
                            if consecutive >= threshold {
                                expired = true;
                            }
                        }
                        prop_assert_eq!(fired, expired);
                    }
                    prop_assert_eq!(lease.is_expired(), expired);
                    if !expired {
                        prop_assert!(lease.misses() < threshold);
                    }
                    prop_assert_eq!(lease.last_lsn(), last_lsn);
                }
            }
        }
    }

    #[test]
    fn lease_expires_after_consecutive_misses_and_stays_expired() {
        let mut lease = Lease::new(LeaseParams {
            miss_threshold: 3,
            ..LeaseParams::default()
        });
        lease.beat(5);
        assert_eq!((lease.misses(), lease.last_lsn()), (0, 5));
        // Two misses, then an answered beat: the counter clears.
        assert!(!lease.miss());
        assert!(!lease.miss());
        lease.beat(8);
        assert_eq!(lease.misses(), 0);
        // Three consecutive misses expire the lease — exactly at the
        // threshold, deterministically.
        assert!(!lease.miss());
        assert!(!lease.miss());
        assert!(lease.miss());
        assert!(lease.is_expired());
        // Expiry is final: a zombie primary answering late cannot
        // un-expire it.
        lease.beat(11);
        assert!(lease.is_expired());
        assert_eq!(lease.last_lsn(), 8);
    }
}
