//! The kill-primary failover campaign.
//!
//! For every `(seed, kill_point)` pair this harness stands up a
//! replicating primary, drives it in lockstep with a typed client
//! while a replica-role connection pulls WAL frames into an in-process
//! warm [`Standby`] after **every** acknowledged mutating request
//! (acked ⇒ journaled ⇒ shipped), then kills the primary at the pinned
//! global operation index. Promotion is *not* scripted: the standby
//! holds a [`Lease`] on the primary, fed by `(ping)` heartbeats during
//! the run, and only promotes once the dead primary has missed
//! [`LeaseParams::miss_threshold`] consecutive probes — the same
//! automatic decision a production standby would make. It then
//! finishes the remaining script — plus a fresh-session epilogue —
//! against the promoted store.
//!
//! The oracle is the uninterrupted serial twin: the same typed request
//! stream applied to a never-evicting [`SessionStore`]. Every reply
//! before the kill (from the wire) and after it (from the promoted
//! store) must be byte-identical to the twin's, the promoted store's
//! aggregate event counts must equal the twin's, and the dead
//! primary's drain must leave only fully-written suspend blobs. Since
//! the standby replays under reply-digest verification and its own
//! (deliberately different) residency pressure, a pass means
//! replication preserved session state byte-for-byte through
//! journaling, shipping, replay, eviction churn, and promotion.
//!
//! The report (`results/failover_report.json`) contains only
//! schedule-independent data and is byte-identical across runs; CI
//! runs the campaign twice and `cmp`s the two reports.

use crate::client::{self, Client, RetryClient, RetryPolicy};
use crate::gen::programs_for;
use crate::manager::SessionStore;
use crate::protocol::{Request, Role};
use crate::repl::{Lease, LeaseParams, Standby};
use crate::server::{self, ServerParams};
use crate::session::ServeConfig;
use small_persist::{digest_bytes, DIGEST_SEED};
use std::io;
use std::net::TcpStream;

/// Heartbeat cadence during the live phase: one `(ping)` probe per
/// this many script operations keeps the lease fed (and the probe
/// count deterministic — it is a function of the kill point alone).
const HEARTBEAT_EVERY: usize = 8;

/// Campaign shape.
#[derive(Debug, Clone)]
pub struct FailoverParams {
    /// Seeds to run; every seed runs once per kill point.
    pub seeds: Vec<u64>,
    /// Sessions opened on the primary before the eval rounds.
    pub sessions: usize,
    /// Generated eval requests per session (plus prologue/teardown).
    pub requests: usize,
    /// Global operation indices at which the primary is killed. The
    /// acceptance bar is at least three, spread across the script.
    pub kill_points: Vec<usize>,
    /// Primary (and twin-input) machine configuration.
    pub cfg: ServeConfig,
    /// Standby machine configuration — a *different* residency cap
    /// than the primary's, so replay eviction provably cannot leak
    /// into replicated state.
    pub standby_cfg: ServeConfig,
    /// Primary server shape; `replicate` is forced on.
    pub server: ServerParams,
}

impl Default for FailoverParams {
    fn default() -> Self {
        let cfg = ServeConfig {
            heap_cells: 1 << 13,
            table_size: 384,
            max_resident: 2,
            ..ServeConfig::default()
        };
        FailoverParams {
            seeds: vec![11, 23],
            sessions: 4,
            requests: 8,
            // Script length is sessions + sessions * (requests + 3):
            // 4 + 44 = 48 ops. Early (mid-open ramp), middle, late.
            kill_points: vec![5, 23, 41],
            cfg,
            standby_cfg: ServeConfig {
                max_resident: 1,
                ..cfg
            },
            server: ServerParams {
                shards: 2,
                queue_cap: 64,
                max_conns_per_shard: 16,
                replicate: true,
                ..ServerParams::default()
            },
        }
    }
}

/// What a campaign produced.
pub struct FailoverOutcome {
    /// The deterministic JSON report body.
    pub report: String,
    /// Count of runs with any divergence (transcript, counts, or a
    /// torn blob in the dead primary).
    pub mismatches: usize,
    /// Summed [`RetryClient::retries`] across runs. Attempt counts are
    /// timing-dependent, so these three live in the stderr summary
    /// only — never in the byte-compared report.
    pub client_retries: u64,
    /// Summed [`RetryClient::reconnects`] across runs.
    pub client_reconnects: u64,
    /// Summed [`RetryClient::redials`] across runs.
    pub client_redials: u64,
}

/// The full mutating script: open every session, then deal the
/// generated programs round-robin across them. Ids are deterministic
/// because the harness client is lockstep: opens decode in order, so
/// session `s` has id `s`.
fn script(seed: u64, sessions: usize, requests: usize) -> Vec<Request> {
    let mut ops: Vec<Request> = (0..sessions)
        .map(|_| Request::Open { token: None })
        .collect();
    let progs: Vec<Vec<String>> = (0..sessions)
        .map(|s| programs_for(seed, s as u64, requests))
        .collect();
    let rounds = progs.first().map_or(0, Vec::len);
    for round in 0..rounds {
        for (s, prog) in progs.iter().enumerate() {
            ops.push(Request::Eval {
                id: s as u64,
                seq: None,
                src: prog[round].clone(),
            });
        }
    }
    ops
}

/// Post-promotion epilogue: prove the promoted store keeps serving —
/// a fresh session (id continuity: it must get the next unused id),
/// then ledger/digest/close for every original session.
fn epilogue(sessions: usize) -> Vec<Request> {
    let fresh = sessions as u64;
    let mut ops = vec![
        Request::Open { token: None },
        Request::Eval {
            id: fresh,
            seq: None,
            src: "(setq acc (cons 7 nil))".to_string(),
        },
        Request::Close {
            id: fresh,
            seq: None,
        },
    ];
    for s in 0..sessions as u64 {
        ops.push(Request::Ledger { id: s });
        ops.push(Request::Digest { id: s });
        ops.push(Request::Close { id: s, seq: None });
    }
    ops
}

fn transcript_digest(replies: &[String]) -> u64 {
    let mut h = DIGEST_SEED;
    for r in replies {
        h = digest_bytes(h, r.as_bytes());
    }
    h
}

struct RunResult {
    json: String,
    mismatched: bool,
    client_retries: u64,
    client_reconnects: u64,
    client_redials: u64,
}

/// One `(seed, kill_point)` run.
fn run_one(p: &FailoverParams, seed: u64, kill_point: usize) -> io::Result<RunResult> {
    let mut params = p.server;
    params.replicate = true;
    let handle = server::start("127.0.0.1:0", p.cfg, params)?;
    let addr = handle.addr();
    // The live-phase connection is a retrying client so the campaign
    // exercises (and reports) the same client type production would
    // point at the pair; on this clean local wire the counters are
    // expected to read zero.
    let mut client = RetryClient::new(
        move || {
            let stream = TcpStream::connect(addr)?;
            stream.set_nodelay(true)?;
            Client::from_transport(stream, Role::Client)
        },
        RetryPolicy {
            seed,
            ..RetryPolicy::default()
        },
    );
    let mut puller = Client::connect(addr, Role::Replica)?;
    let mut standby = Standby::new(p.standby_cfg);
    let mut twin = SessionStore::new(ServeConfig {
        max_resident: usize::MAX,
        ..p.cfg
    });

    let ops = script(seed, p.sessions, p.requests);
    let kill_at = kill_point.min(ops.len().saturating_sub(1));
    let mut transcript = Vec::new();
    let mut oracle = Vec::new();
    let mut lease = Lease::new(LeaseParams::default());
    let mut beats = 0u64;

    // Phase 1: lockstep against the live primary, shipping the WAL to
    // the standby after every acknowledged request and feeding the
    // standby's lease with periodic heartbeats.
    for (i, op) in ops.iter().take(kill_at).enumerate() {
        transcript.push(client.request_text(&op.encode())?);
        oracle.push(twin.apply(op).encode());
        let target = handle
            .wal_next_lsn()
            .expect("replicating primary has a WAL");
        puller.catch_up(&mut standby, target)?;
        if i % HEARTBEAT_EVERY == 0 {
            match client::ping(addr, lease.params().ping_timeout) {
                Some(lsn) => {
                    lease.beat(lsn);
                    beats += 1;
                }
                None => {
                    lease.miss();
                }
            }
        }
    }

    // Kill: drop the connections and drain the primary. Its final
    // state is only audited for torn blobs — the standby, not the
    // corpse, carries the service forward.
    let (client_retries, client_reconnects, client_redials) =
        (client.retries(), client.reconnects(), client.redials());
    drop(client);
    drop(puller);
    let replicated_lsn = standby.next_lsn();
    let corpse = handle.shutdown();
    let drain_ok = corpse.verify_suspended().is_ok();

    // The standby detects the death itself: the dead primary refuses
    // every probe, and after `miss_threshold` consecutive misses the
    // lease expires and promotion is *its* decision, not the
    // harness's. Bounded in case something else grabs the port.
    let misses_before = lease.misses();
    for _ in 0..lease.params().miss_threshold * 10 {
        if lease.is_expired() {
            break;
        }
        match client::ping(addr, lease.params().ping_timeout) {
            Some(lsn) => lease.beat(lsn),
            None => {
                lease.miss();
            }
        }
    }
    let lease_ok =
        lease.is_expired() && lease.misses() == lease.params().miss_threshold && misses_before == 0;

    // Phase 2: promote and finish the script on the survivor.
    let mut promoted = standby.promote();
    for op in ops.iter().skip(kill_at) {
        transcript.push(promoted.apply(op).encode());
        oracle.push(twin.apply(op).encode());
    }
    for op in epilogue(p.sessions) {
        transcript.push(promoted.apply(&op).encode());
        oracle.push(twin.apply(&op).encode());
    }

    let transcript_ok = transcript == oracle;
    let counts_ok = promoted.aggregate_counts() == twin.aggregate_counts();
    let mismatched = !(transcript_ok && counts_ok && drain_ok && lease_ok);
    Ok(RunResult {
        json: format!(
            "{{\"seed\":{seed},\"kill_at\":{kill_at},\"ops\":{},\
             \"replicated_lsn\":{replicated_lsn},\
             \"lease_beats\":{beats},\"lease_misses\":{},\"lease_expired\":{},\
             \"transcript_digest\":\"d{:016x}\",\
             \"transcript_match\":{transcript_ok},\"counts_match\":{counts_ok},\
             \"primary_drain_ok\":{drain_ok}}}",
            ops.len(),
            lease.misses(),
            lease.is_expired(),
            transcript_digest(&oracle),
        ),
        mismatched,
        client_retries,
        client_reconnects,
        client_redials,
    })
}

/// Run the whole campaign: every seed at every kill point.
pub fn run_failover(p: &FailoverParams) -> io::Result<FailoverOutcome> {
    let mut runs = Vec::new();
    let mut mismatches = 0usize;
    let (mut client_retries, mut client_reconnects, mut client_redials) = (0u64, 0u64, 0u64);
    for &seed in &p.seeds {
        for &kill in &p.kill_points {
            let run = run_one(p, seed, kill)?;
            if run.mismatched {
                mismatches += 1;
            }
            client_retries += run.client_retries;
            client_reconnects += run.client_reconnects;
            client_redials += run.client_redials;
            runs.push(run.json);
        }
    }
    let report = format!(
        "{{\"schema\":\"failover_report_v2\",\"proto_version\":{},\
         \"sessions\":{},\"requests\":{},\
         \"kill_points\":[{}],\"seeds\":[{}],\"all_match\":{},\"runs\":[{}]}}\n",
        crate::protocol::PROTO_VERSION,
        p.sessions,
        p.requests,
        p.kill_points
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join(","),
        p.seeds
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(","),
        mismatches == 0,
        runs.join(","),
    );
    Ok(FailoverOutcome {
        report,
        mismatches,
        client_retries,
        client_reconnects,
        client_redials,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failover_campaign_is_clean_and_deterministic() {
        let p = FailoverParams {
            seeds: vec![11],
            kill_points: vec![5, 23, 41],
            ..FailoverParams::default()
        };
        let a = run_failover(&p).expect("campaign runs");
        assert_eq!(a.mismatches, 0, "report: {}", a.report);
        let b = run_failover(&p).expect("campaign reruns");
        assert_eq!(a.report, b.report, "report must be byte-deterministic");
    }

    #[test]
    fn kill_at_zero_promotes_an_empty_standby() {
        // Degenerate but legal: nothing was replicated; the promoted
        // store must serve the entire script from scratch.
        let p = FailoverParams {
            seeds: vec![23],
            kill_points: vec![0],
            ..FailoverParams::default()
        };
        let out = run_failover(&p).expect("campaign runs");
        assert_eq!(out.mismatches, 0, "report: {}", out.report);
    }
}
