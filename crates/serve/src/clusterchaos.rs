//! Replication-chain chaos: survive any single node's death, twice.
//!
//! The netchaos campaign proved one failover under wire faults. This
//! campaign points the same seeded fault discipline at a **three-node
//! chain** — primary → S1 → S2 — and kills the primary *twice*:
//!
//! 1. A sharded primary serves the scripted workload while S1, a
//!    [`RelayNode`], pulls its WAL and **relays** the retained frames
//!    to S2 (a second relay) over real TCP — `(pull …)` served from
//!    S1's applied log, per-hop lag published via `(metrics)`.
//! 2. At the pinned kill index the primary dies. S1's [`Lease`]
//!    expires after consecutive missed probes and S1 promotes — its
//!    listener survives the handover
//!    ([`crate::server::start_promoted`]), so S2's pull cursor and the
//!    failing-over client both land on the same address and the chain
//!    **heals**: the new primary keeps shipping to S2.
//! 3. At a second pinned index the promoted node dies too. The lease
//!    dance repeats and S2 — now two promotions deep — serves the rest
//!    of the script and a fully sequenced epilogue **over the wire**.
//!
//! The client is a cluster-aware [`RetryClient`]: an *ordered endpoint
//! list* re-scanned on every reconnect, keeping the first endpoint
//! whose `(hello …)` answers as `primary` (standbys answer `standby`
//! and are skipped). All client traffic rides seeded
//! [`FaultyStream`]s — torn frames and pinned-offset resets — so
//! re-sends land on whichever node currently leads.
//!
//! The oracle is the uninterrupted serial twin: every reply, across
//! two failovers and every injected fault, must be byte-identical to
//! the twin's. After *each* promotion the last acknowledged mutation
//! is re-sent over the wire and must come back from the replicated
//! dedup window — byte-equal reply, WAL untouched — and after the
//! second promotion the *first* kill's re-send is probed again,
//! proving dedup windows, token routes, and the id allocator survive
//! two sequential handovers. The report
//! (`results/clusterchaos_report.json`) contains only
//! schedule-independent data and is byte-identical across runs; CI
//! runs the campaign twice and `cmp`s the reports.

use crate::client::{self, Client, DialFn, RetryClient, RetryPolicy};
use crate::manager::SessionStore;
use crate::netchaos::{
    repl_io, script, splitmix64, transcript_digest, FaultPlan, FaultState, FaultyStream,
    HEARTBEAT_EVERY, TOKEN_BASE,
};
use crate::protocol::{Request, Role};
use crate::repl::{Lease, LeaseParams, RelayNode, ReplError};
use crate::server::{self, ServerHandle, ServerParams};
use crate::session::ServeConfig;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};

/// Campaign shape.
#[derive(Debug, Clone)]
pub struct ClusterChaosParams {
    /// Seeds to run; every seed runs once per first-kill point.
    pub seeds: Vec<u64>,
    /// Sessions opened (with idempotency tokens) before the rounds.
    pub sessions: usize,
    /// Generated eval requests per session.
    pub requests: usize,
    /// Global operation indices at which the *first* primary is
    /// killed; the second kill is derived (halfway through the
    /// remaining script, at least two ops later).
    pub kill_points: Vec<usize>,
    /// Primary (and twin-input) machine configuration.
    pub cfg: ServeConfig,
    /// S1 machine configuration (tighter residency, as in netchaos).
    pub s1_cfg: ServeConfig,
    /// S2 machine configuration (a third distinct eviction schedule).
    pub s2_cfg: ServeConfig,
    /// Primary server shape; `replicate` is forced on.
    pub server: ServerParams,
}

impl Default for ClusterChaosParams {
    fn default() -> Self {
        let cfg = ServeConfig {
            heap_cells: 1 << 13,
            table_size: 384,
            max_resident: 2,
            ..ServeConfig::default()
        };
        ClusterChaosParams {
            seeds: vec![11, 23],
            sessions: 4,
            requests: 8,
            // Script length is sessions + sessions * requests = 36;
            // kill1 = 5 → kill2 = 20, kill1 = 31 → kill2 = 33.
            kill_points: vec![5, 31],
            cfg,
            s1_cfg: ServeConfig {
                max_resident: 1,
                ..cfg
            },
            s2_cfg: ServeConfig {
                max_resident: 3,
                ..cfg
            },
            server: ServerParams {
                shards: 2,
                queue_cap: 64,
                max_conns_per_shard: 16,
                replicate: true,
                ..ServerParams::default()
            },
        }
    }
}

/// What a campaign produced.
pub struct ClusterChaosOutcome {
    /// The deterministic JSON report body.
    pub report: String,
    /// Runs with any divergence or an unsurvived fault.
    pub mismatches: usize,
    /// Distinct fault points injected across the whole campaign.
    pub fault_points: usize,
    /// Summed [`RetryClient::retries`] across runs. Attempt counts are
    /// timing-dependent, so these three live in the stderr summary
    /// only — never in the byte-compared report.
    pub client_retries: u64,
    /// Summed [`RetryClient::reconnects`] across runs.
    pub client_reconnects: u64,
    /// Summed [`RetryClient::redials`] across runs (cluster scans
    /// count every endpoint dialed, including standby answers
    /// skipped).
    pub client_redials: u64,
}

/// The second kill index: halfway through the script remaining after
/// `kill1`, at least two ops later, and always inside the script.
fn second_kill(kill1: usize, ops: usize) -> usize {
    (kill1 + 2.max((ops - kill1) / 2)).min(ops - 1).max(kill1)
}

/// Six extra reset offsets continuing the netchaos spacing: the chain
/// campaign keeps the whole script (plus the epilogue) on the faulty
/// wire, so it moves far more bytes than one netchaos phase.
fn extended_resets(seed: u64, base: &[u64]) -> Vec<u64> {
    let mut rng = seed ^ 0x0063_6C75_7374_6572; // "cluster"
    let mut offsets = base.to_vec();
    let mut at = offsets.last().copied().unwrap_or(200);
    for _ in 0..6 {
        at += 384 + splitmix64(&mut rng) % 512;
        offsets.push(at);
    }
    offsets
}

/// The wire epilogue: unlike netchaos's (applied directly to the
/// promoted store), this one travels the faulty transport, so every
/// mutating request is sequenced or tokenized — re-sendable verbatim.
/// A tokenized fresh open proves the id allocator survived both
/// promotions; per-session closes carry the next dense seq.
fn wire_epilogue(sessions: usize, requests: usize) -> Vec<Request> {
    let fresh = sessions as u64;
    let mut ops = vec![
        Request::Open {
            token: Some(TOKEN_BASE + fresh),
        },
        Request::Eval {
            id: fresh,
            seq: Some(0),
            src: "(setq acc (cons 7 nil))".to_string(),
        },
        Request::Close {
            id: fresh,
            seq: Some(1),
        },
    ];
    for s in 0..sessions as u64 {
        ops.push(Request::Ledger { id: s });
        ops.push(Request::Digest { id: s });
        ops.push(Request::Close {
            id: s,
            seq: Some(requests as u64),
        });
    }
    ops
}

/// A faulty-transport dial closure for one endpoint. The plain
/// `connect` runs *outside* the fault state, so a dead endpoint
/// (connection refused) consumes no fault-schedule bytes and the
/// reset offsets stay a pure function of the run key.
fn faulty_dial(addr: SocketAddr, state: &Arc<Mutex<FaultState>>) -> DialFn<FaultyStream> {
    let state = Arc::clone(state);
    Box::new(move || {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Client::from_transport(FaultyStream::new(stream, Arc::clone(&state)), Role::Client)
    })
}

/// Pull a relay up to `target` through a replica-role connection —
/// the downstream hop of the chain, over real TCP.
fn chain_pull(puller: &mut Client, node: &RelayNode, target: u64) -> io::Result<()> {
    while node.next_lsn() < target {
        let from = node.next_lsn();
        let (next, bytes) = puller.pull(from)?;
        if next == from {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "chain pull made no progress",
            ));
        }
        node.apply(&bytes).map_err(repl_io)?;
    }
    Ok(())
}

/// One heartbeat probe against `addr`, folded into the lease.
fn probe_lease(addr: SocketAddr, lease: &mut Lease, beats: &mut u64) {
    match client::ping(addr, lease.params().ping_timeout) {
        Some(lsn) => {
            lease.beat(lsn);
            *beats += 1;
        }
        None => {
            lease.miss();
        }
    }
}

/// Wait out a lease against a dead primary. Bounded in case the freed
/// port is grabbed by a concurrent listener; clean expiry means the
/// misses were exactly consecutive.
fn expire_lease(addr: SocketAddr, lease: &mut Lease) -> bool {
    for _ in 0..lease.params().miss_threshold * 10 {
        if lease.is_expired() {
            break;
        }
        match client::ping(addr, lease.params().ping_timeout) {
            Some(lsn) => lease.beat(lsn),
            None => {
                lease.miss();
            }
        }
    }
    lease.is_expired() && lease.misses() == lease.params().miss_threshold
}

/// Re-send an already-acknowledged mutation over the wire. The answer
/// must be byte-equal to the original acknowledgement and must not
/// touch the WAL — exactly-once across however many failovers sit
/// between the ack and the retry.
fn resend_cached(
    client: &mut RetryClient<FaultyStream>,
    handle: &ServerHandle,
    op: &Request,
    original: &str,
) -> io::Result<bool> {
    let lsn_before = handle.wal_next_lsn();
    let reply = client.request_text(&op.encode())?;
    Ok(reply == original && handle.wal_next_lsn() == lsn_before)
}

struct RunResult {
    json: String,
    mismatched: bool,
    fault_points: usize,
    client_retries: u64,
    client_reconnects: u64,
    client_redials: u64,
}

/// One `(seed, kill1)` run: build the chain, kill the primary twice,
/// compare every reply to the serial twin.
fn run_one(p: &ClusterChaosParams, seed: u64, kill_point: usize) -> io::Result<RunResult> {
    let mut params = p.server;
    params.replicate = true;
    let promoted_params = ServerParams {
        shards: 1,
        replicate: true,
        wall: false,
        trace: false,
        ..params
    };

    // The chain: P (sharded) → S1 (relay) → S2 (relay).
    let handle_p = server::start("127.0.0.1:0", p.cfg, params)?;
    let addr_p = handle_p.addr();
    let s1 = RelayNode::start("127.0.0.1:0", p.s1_cfg)?;
    let addr_s1 = s1.addr();
    let s2 = RelayNode::start("127.0.0.1:0", p.s2_cfg)?;
    let addr_s2 = s2.addr();

    let ops = script(seed, p.sessions, p.requests);
    let kill1 = kill_point.min(ops.len().saturating_sub(1));
    let kill2 = second_kill(kill1, ops.len());
    let plan = FaultPlan::new(seed, kill1);
    let resets = extended_resets(seed, &plan.reset_offsets);
    let state = FaultState::shared(seed, &resets);

    // The cluster-aware client: ordered endpoints, every connection on
    // the faulty transport. Scans keep the first `primary` answer.
    let mut cluster = RetryClient::with_endpoints(
        vec![
            faulty_dial(addr_p, &state),
            faulty_dial(addr_s1, &state),
            faulty_dial(addr_s2, &state),
        ],
        RetryPolicy {
            attempts: 10,
            seed,
            ..RetryPolicy::default()
        },
    );
    // Chain hops ride clean connections; their faults (dups, delays,
    // corruption) are injected at the batch level where they can be
    // asserted on precisely.
    let mut puller1 = Client::connect(addr_p, Role::Replica)?;
    let mut puller2 = Client::connect(addr_s1, Role::Replica)?;
    let mut twin = SessionStore::new(ServeConfig {
        max_resident: usize::MAX,
        ..p.cfg
    });
    let mut lease1 = Lease::new(LeaseParams::default());
    let mut lease2 = Lease::new(LeaseParams::default());

    let mut transcript = Vec::new();
    let mut oracle = Vec::new();
    let (mut beats1, mut beats2) = (0u64, 0u64);
    let (mut dup_pulls, mut delayed_pulls, mut corrupt_probes, mut chain_dup_pulls) =
        (0u64, 0u64, 0u64, 0u64);
    let (mut max_hop1_lag, mut max_hop2_lag) = (0u64, 0u64);
    let (mut dup_ok, mut corrupt_ok, mut chain_dup_ok) = (true, true, true);

    // Phase 1: P serves, S1 pulls through the fault plan, S2 chains
    // off S1 over TCP, lockstep per op.
    for (i, op) in ops.iter().take(kill1).enumerate() {
        transcript.push(cluster.request_text(&op.encode())?);
        oracle.push(twin.apply(op).encode());
        let target = handle_p
            .wal_next_lsn()
            .expect("replicating primary has a WAL");
        s1.note_upstream(target);
        if plan.delayed_pulls.contains(&i) {
            delayed_pulls += 1;
            max_hop1_lag = max_hop1_lag.max(s1.relay_lag());
        } else {
            if plan.corrupt_pulls.contains(&i) && s1.next_lsn() < target {
                let (_, bytes) = puller1.pull(s1.next_lsn())?;
                if !bytes.is_empty() {
                    let mut bad = bytes.clone();
                    let last = bad.len() - 1;
                    bad[last] ^= 0xff;
                    // Fail closed: the corrupt batch must change nothing.
                    let before = s1.next_lsn();
                    corrupt_ok &= matches!(s1.apply(&bad), Err(ReplError::BadFrame { .. }));
                    corrupt_ok &= s1.next_lsn() == before;
                    s1.apply(&bytes).map_err(repl_io)?;
                    corrupt_probes += 1;
                }
            }
            chain_pull(&mut puller1, &s1, target)?;
            if plan.dup_pulls.contains(&i) && s1.next_lsn() > 0 {
                // Re-pull a window S1 already applied: at-least-once
                // shipping on the first hop.
                let from = s1.next_lsn().saturating_sub(2);
                let (_, bytes) = puller1.pull(from)?;
                dup_ok &= s1.apply(&bytes).map_err(repl_io)? == 0;
                dup_pulls += 1;
            }
        }
        // Second hop: S2 chains off whatever S1 has applied so far.
        let target2 = s1.applied_lsn();
        s2.note_upstream(target2);
        max_hop2_lag = max_hop2_lag.max(target2.saturating_sub(s2.applied_lsn()));
        chain_pull(&mut puller2, &s2, target2)?;
        if plan.dup_pulls.contains(&i) && s2.next_lsn() > 0 {
            // The same duplicated window, relayed: S1 must serve the
            // already-applied frames and S2 must skip them.
            let from = s2.next_lsn().saturating_sub(2);
            let (_, bytes) = puller2.pull(from)?;
            chain_dup_ok &= s2.apply(&bytes).map_err(repl_io)? == 0;
            chain_dup_pulls += 1;
        }
        if i % HEARTBEAT_EVERY == 0 {
            probe_lease(addr_p, &mut lease1, &mut beats1);
        }
    }
    // Relay lag is on the discovery surface: S1 is fully caught up at
    // the kill boundary and must say so via `(metrics)`.
    let relay_metrics_ok = {
        let mut probe = Client::connect(addr_s1, Role::Client)?;
        match probe.request(&Request::Metrics)? {
            crate::protocol::Reply::Metrics { volatile, .. } => {
                volatile.contains("\"relay_lag\":0")
            }
            _ => false,
        }
    };

    // Kill #1: the primary dies for real; S1's lease expires and S1
    // promotes on its own listener.
    cluster.disconnect();
    drop(puller1);
    let replicated_lsn1 = s1.next_lsn();
    let corpse = handle_p.shutdown();
    let drain1_ok = corpse.verify_suspended().is_ok();
    let lease1_ok = expire_lease(addr_p, &mut lease1);
    drop(puller2); // S1's conn threads are joined by stop(); detach first
    let parts = s1.stop();
    let promote1_ok = parts
        .listener
        .local_addr()
        .map(|a| a == addr_s1)
        .unwrap_or(false)
        && parts.wal.next_lsn() == replicated_lsn1;
    let handle_s1 =
        server::start_promoted(parts.listener, promoted_params, parts.store, parts.wal)?;

    // Exactly-once across the first failover, over the wire: the
    // cluster client re-scans (P refuses, S1 now answers `primary`)
    // and the re-sent mutation comes back from the replicated dedup
    // window.
    let mut retry1_ok = true;
    let last1 = ops.iter().enumerate().take(kill1).rev().find(|(_, op)| {
        matches!(
            op,
            Request::Eval { seq: Some(_), .. } | Request::Open { token: Some(_) }
        )
    });
    if let Some((idx, op)) = last1 {
        retry1_ok = resend_cached(&mut cluster, &handle_s1, op, &transcript[idx])?;
    }

    // Phase 2: the healed chain. S1 (now primary) keeps shipping to
    // S2, whose pull cursor continues across the handover because the
    // retained WAL kept LSN continuity on the same address.
    let mut puller2b = Client::connect(addr_s1, Role::Replica)?;
    for (i, op) in ops.iter().enumerate().take(kill2).skip(kill1) {
        transcript.push(cluster.request_text(&op.encode())?);
        oracle.push(twin.apply(op).encode());
        let target = handle_s1
            .wal_next_lsn()
            .expect("promoted primary keeps replicating");
        s2.note_upstream(target);
        max_hop2_lag = max_hop2_lag.max(target.saturating_sub(s2.applied_lsn()));
        chain_pull(&mut puller2b, &s2, target)?;
        if i % HEARTBEAT_EVERY == 0 {
            probe_lease(addr_s1, &mut lease2, &mut beats2);
        }
    }

    // Kill #2: the promoted node dies too. S2 — the end of the chain —
    // expires its lease and promotes the same way.
    cluster.disconnect();
    drop(puller2b);
    let replicated_lsn2 = s2.next_lsn();
    let corpse2 = handle_s1.shutdown();
    let drain2_ok = corpse2.verify_suspended().is_ok();
    let lease2_ok = expire_lease(addr_s1, &mut lease2);
    let parts2 = s2.stop();
    let promote2_ok = parts2
        .listener
        .local_addr()
        .map(|a| a == addr_s2)
        .unwrap_or(false)
        && parts2.wal.next_lsn() == replicated_lsn2;
    let handle_s2 =
        server::start_promoted(parts2.listener, promoted_params, parts2.store, parts2.wal)?;

    // Exactly-once across the second failover — and across *both*: the
    // last pre-kill-2 mutation, then the pre-kill-1 one again. Both
    // dedup windows must have survived two promotions.
    let mut retry2_ok = true;
    let last2 = ops.iter().enumerate().take(kill2).rev().find(|(_, op)| {
        matches!(
            op,
            Request::Eval { seq: Some(_), .. } | Request::Open { token: Some(_) }
        )
    });
    if let Some((idx, op)) = last2 {
        retry2_ok = resend_cached(&mut cluster, &handle_s2, op, &transcript[idx])?;
    }
    let mut window1_survives = true;
    if let Some((idx, op)) = last1 {
        window1_survives = resend_cached(&mut cluster, &handle_s2, op, &transcript[idx])?;
    }

    // Phase 3: the tail of the script plus the fully sequenced
    // epilogue, all over the wire against the twice-promoted survivor.
    for op in ops.iter().skip(kill2) {
        transcript.push(cluster.request_text(&op.encode())?);
        oracle.push(twin.apply(op).encode());
    }
    for op in wire_epilogue(p.sessions, p.requests) {
        transcript.push(cluster.request_text(&op.encode())?);
        oracle.push(twin.apply(&op).encode());
    }

    cluster.disconnect();
    let (client_retries, client_reconnects, client_redials) =
        (cluster.retries(), cluster.reconnects(), cluster.redials());
    drop(cluster);
    let survivor = handle_s2.shutdown();
    let drain3_ok = survivor.verify_suspended().is_ok();
    let transcript_ok = transcript == oracle;
    let counts_ok = survivor.aggregate_counts() == twin.aggregate_counts();
    let sessions_ok = survivor.session_ids() == twin.session_ids();

    let mismatched = !(transcript_ok
        && counts_ok
        && sessions_ok
        && drain1_ok
        && drain2_ok
        && drain3_ok
        && lease1_ok
        && lease2_ok
        && promote1_ok
        && promote2_ok
        && retry1_ok
        && retry2_ok
        && window1_survives
        && relay_metrics_ok
        && dup_ok
        && corrupt_ok
        && chain_dup_ok);
    let resets_fired = {
        let st = state.lock().unwrap_or_else(|e| e.into_inner());
        st.resets_fired()
    };
    let fault_points = resets_fired as usize
        + dup_pulls as usize
        + delayed_pulls as usize
        + corrupt_probes as usize
        + chain_dup_pulls as usize;
    Ok(RunResult {
        json: format!(
            "{{\"seed\":{seed},\"kill1\":{kill1},\"kill2\":{kill2},\"ops\":{},\
             \"resets_planned\":{},\"resets_fired\":{resets_fired},\
             \"dup_pulls\":{dup_pulls},\"delayed_pulls\":{delayed_pulls},\
             \"corrupt_probes\":{corrupt_probes},\"chain_dup_pulls\":{chain_dup_pulls},\
             \"max_hop1_lag\":{max_hop1_lag},\"max_hop2_lag\":{max_hop2_lag},\
             \"replicated_lsn1\":{replicated_lsn1},\"replicated_lsn2\":{replicated_lsn2},\
             \"lease1_beats\":{beats1},\"lease2_beats\":{beats2},\
             \"transcript_digest\":\"d{:016x}\",\
             \"transcript_match\":{transcript_ok},\"counts_match\":{counts_ok},\
             \"sessions_match\":{sessions_ok},\
             \"retry1_cached\":{retry1_ok},\"retry2_cached\":{retry2_ok},\
             \"window1_survives\":{window1_survives},\
             \"relay_metrics_ok\":{relay_metrics_ok},\
             \"lease1_expired\":{lease1_ok},\"lease2_expired\":{lease2_ok},\
             \"promote1_ok\":{promote1_ok},\"promote2_ok\":{promote2_ok},\
             \"dup_idempotent\":{dup_ok},\"chain_dup_idempotent\":{chain_dup_ok},\
             \"corrupt_failed_closed\":{corrupt_ok},\
             \"drains_ok\":{}}}",
            ops.len(),
            resets.len(),
            transcript_digest(&oracle),
            drain1_ok && drain2_ok && drain3_ok,
        ),
        mismatched,
        fault_points,
        client_retries,
        client_reconnects,
        client_redials,
    })
}

/// Run the whole campaign: every seed at every first-kill point.
pub fn run_clusterchaos(p: &ClusterChaosParams) -> io::Result<ClusterChaosOutcome> {
    let mut runs = Vec::new();
    let mut mismatches = 0usize;
    let mut fault_points = 0usize;
    let (mut client_retries, mut client_reconnects, mut client_redials) = (0u64, 0u64, 0u64);
    for &seed in &p.seeds {
        for &kill in &p.kill_points {
            let run = run_one(p, seed, kill)?;
            if run.mismatched {
                mismatches += 1;
            }
            fault_points += run.fault_points;
            client_retries += run.client_retries;
            client_reconnects += run.client_reconnects;
            client_redials += run.client_redials;
            runs.push(run.json);
        }
    }
    let report = format!(
        "{{\"schema\":\"clusterchaos_report_v1\",\"proto_version\":{},\
         \"chain\":3,\"sessions\":{},\"requests\":{},\
         \"kill_points\":[{}],\"seeds\":[{}],\
         \"fault_points\":{fault_points},\"all_match\":{},\"runs\":[{}]}}\n",
        crate::protocol::PROTO_VERSION,
        p.sessions,
        p.requests,
        p.kill_points
            .iter()
            .map(usize::to_string)
            .collect::<Vec<_>>()
            .join(","),
        p.seeds
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(","),
        mismatches == 0,
        runs.join(","),
    );
    Ok(ClusterChaosOutcome {
        report,
        mismatches,
        fault_points,
        client_retries,
        client_reconnects,
        client_redials,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_kill_stays_inside_the_script() {
        assert_eq!(second_kill(5, 36), 20);
        assert_eq!(second_kill(31, 36), 33);
        assert_eq!(second_kill(35, 36), 35); // degenerate but legal
        assert!(second_kill(0, 4) > 0);
    }

    #[test]
    fn clusterchaos_campaign_is_clean_and_deterministic() {
        let p = ClusterChaosParams {
            seeds: vec![11],
            kill_points: vec![5, 31],
            ..ClusterChaosParams::default()
        };
        let a = run_clusterchaos(&p).expect("campaign runs");
        assert_eq!(a.mismatches, 0, "report: {}", a.report);
        assert!(a.fault_points > 0, "faults must actually fire");
        let b = run_clusterchaos(&p).expect("campaign reruns");
        assert_eq!(a.report, b.report, "report must be byte-deterministic");
    }
}
