//! `soak` — deterministic soak harness: concurrent client fleet vs a
//! serial in-process twin, with a byte-deterministic JSON report.
//!
//! ```text
//! soak [--seeds N | --seeds a,b,c] [--clients N] [--requests N]
//!      [--max-resident N] [--shards N] [--queue-cap N]
//!      [--churn N] [--churn-workers N] [--out PATH]
//!      [--wall] [--metrics-out PATH] [--trace-out PATH]
//! ```
//!
//! `--seeds N` (a single integer) takes the first `N` pinned seeds, so
//! `soak --seeds 3 --clients 8` is a stable CI invocation. A comma
//! list pins explicit seeds. `--churn N` appends a phase that rolls
//! `N` short-lived sessions through a fresh server across a small
//! worker fleet. Exit is nonzero on any transcript, aggregate-count,
//! or metrics-snapshot mismatch, or if the run exercised no
//! eviction/resume churn.
//!
//! Telemetry: every run prints sustained req/s and per-shard p50/p99
//! eval latency (virtual clock) to stderr, and the report embeds the
//! deterministic metrics snapshot fetched live over `(metrics)`.
//! `--wall` additionally records wall-clock latency histograms,
//! `--metrics-out PATH` writes the merged Prometheus text exposition,
//! and `--trace-out PATH` records shard event-loop spans and writes a
//! Chrome Trace Format JSON (open in `chrome://tracing`).

use small_serve::gen::PINNED_SEEDS;
use small_serve::session::ServeConfig;
use small_serve::soak::{run_soak, SoakParams};
use std::process::ExitCode;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse_seeds(spec: &str) -> Result<Vec<u64>, String> {
    if spec.contains(',') {
        return spec
            .split(',')
            .map(|s| s.trim().parse().map_err(|_| format!("bad seed: {s}")))
            .collect();
    }
    let n: usize = spec
        .parse()
        .map_err(|_| format!("bad seed count: {spec}"))?;
    if n == 0 || n > PINNED_SEEDS.len() {
        return Err(format!("--seeds must be 1..={}", PINNED_SEEDS.len()));
    }
    Ok(PINNED_SEEDS[..n].to_vec())
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut p = SoakParams::default();
    if let Some(s) = arg_value(&args, "--seeds") {
        p.seeds = parse_seeds(&s)?;
    }
    if let Some(s) = arg_value(&args, "--clients") {
        p.clients = s.parse().map_err(|_| "bad --clients")?;
    }
    if let Some(s) = arg_value(&args, "--requests") {
        p.requests = s.parse().map_err(|_| "bad --requests")?;
    }
    if let Some(s) = arg_value(&args, "--max-resident") {
        p.cfg = ServeConfig {
            max_resident: s.parse().map_err(|_| "bad --max-resident")?,
            ..p.cfg
        };
    }
    if let Some(s) = arg_value(&args, "--shards") {
        p.server.shards = s.parse().map_err(|_| "bad --shards")?;
    }
    if let Some(s) = arg_value(&args, "--queue-cap") {
        p.server.queue_cap = s.parse().map_err(|_| "bad --queue-cap")?;
    }
    if let Some(s) = arg_value(&args, "--churn") {
        p.churn = s.parse().map_err(|_| "bad --churn")?;
    }
    if let Some(s) = arg_value(&args, "--churn-workers") {
        p.churn_workers = s.parse().map_err(|_| "bad --churn-workers")?;
    }
    let out = arg_value(&args, "--out").unwrap_or_else(|| "results/soak_report.json".to_string());
    let metrics_out = arg_value(&args, "--metrics-out");
    let trace_out = arg_value(&args, "--trace-out");
    p.server.wall = args.iter().any(|a| a == "--wall");
    p.server.trace = trace_out.is_some();

    let outcome = run_soak(&p).map_err(|e| e.to_string())?;
    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
        }
    }
    std::fs::write(&out, &outcome.report).map_err(|e| e.to_string())?;
    for line in &outcome.summary {
        eprintln!("soak: {line}");
    }
    if let Some(path) = metrics_out {
        std::fs::write(&path, &outcome.prometheus).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("soak: metrics exposition written to {path}");
    }
    if let Some(path) = trace_out {
        let json = outcome
            .chrome_trace
            .as_deref()
            .ok_or("trace was enabled but no trace was collected")?;
        std::fs::write(&path, json).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("soak: chrome trace written to {path} (open in chrome://tracing)");
    }

    eprintln!(
        "soak: {} seeds x {} clients x {} requests ({} shards, churn {}) -> {}",
        p.seeds.len(),
        p.clients,
        p.requests,
        p.server.shards,
        p.churn,
        out
    );
    eprintln!(
        "soak: evictions={} resumes={} mismatches={}",
        outcome.evictions, outcome.resumes, outcome.mismatches
    );
    // Timing-dependent client-side telemetry: reported here, never in
    // the byte-compared report.
    eprintln!(
        "soak: client retries={} reconnects={} redials={}",
        outcome.client_retries, outcome.client_reconnects, outcome.client_redials
    );
    if outcome.mismatches > 0 {
        eprintln!("soak: FAILED: server transcripts diverged from the serial twin");
        return Ok(ExitCode::FAILURE);
    }
    if outcome.evictions < 2 || outcome.resumes < 2 {
        eprintln!("soak: FAILED: suspend/resume churn was not exercised");
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("soak: {e}");
            ExitCode::FAILURE
        }
    }
}
