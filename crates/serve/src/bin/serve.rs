//! `serve` — run the SMALL session server until a client sends
//! `(shutdown)`.
//!
//! ```text
//! serve [--addr HOST:PORT] [--table-size N] [--heap-cells N]
//!       [--max-resident N] [--workers N] [--step-budget N]
//! ```

use small_serve::session::ServeConfig;
use std::process::ExitCode;

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> Result<T, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(default),
        Some(i) => args
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?
            .parse()
            .map_err(|_| format!("bad value for {flag}")),
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let addr = parse_flag(&args, "--addr", "127.0.0.1:7878".to_string())?;
    let cfg = ServeConfig {
        table_size: parse_flag(&args, "--table-size", 2048usize)?,
        heap_cells: parse_flag(&args, "--heap-cells", 1usize << 16)?,
        max_resident: parse_flag(&args, "--max-resident", 8usize)?,
        step_budget: parse_flag(&args, "--step-budget", 2_000_000u64)?,
    };
    let workers = parse_flag(&args, "--workers", 8usize)?;
    let handle = small_serve::start(&addr, cfg, workers).map_err(|e| e.to_string())?;
    eprintln!("serving SMALL sessions on {}", handle.addr());
    eprintln!("frame = 4-byte LE length + s-expression; send (shutdown) to drain");
    // The acceptor owns the serving loop; joining it is the wait.
    handle.shutdown_when_drained();
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("serve: {e}");
            ExitCode::FAILURE
        }
    }
}
