//! `serve` — run the sharded SMALL session server until a client
//! sends `(shutdown)`.
//!
//! ```text
//! serve [--addr HOST:PORT] [--table-size N] [--heap-cells N]
//!       [--max-resident N] [--step-budget N]
//!       [--shards N] [--queue-cap N] [--max-conns N] [--replicate]
//!       [--wall] [--metrics-out PATH] [--trace-out PATH]
//! ```
//!
//! With `--replicate` the server runs as a replication primary:
//! every mutating request is appended to the in-memory WAL and
//! replica-role connections may `(pull <lsn>)` journal frames.
//!
//! Telemetry: virtual-cycle latency histograms are always on and
//! queryable live with a `(metrics)` request; `--wall` additionally
//! records wall-clock latency. `--metrics-out PATH` writes a
//! Prometheus-style text exposition of the final merged snapshot at
//! shutdown, and `--trace-out PATH` writes a Chrome Trace Format JSON
//! of the shard event-loop spans (open in `chrome://tracing`).

use small_serve::server::ServerParams;
use small_serve::session::ServeConfig;
use small_serve::PROTO_VERSION;
use std::process::ExitCode;

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> Result<T, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(default),
        Some(i) => args
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?
            .parse()
            .map_err(|_| format!("bad value for {flag}")),
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let addr = parse_flag(&args, "--addr", "127.0.0.1:7878".to_string())?;
    let cfg = ServeConfig {
        table_size: parse_flag(&args, "--table-size", 2048usize)?,
        heap_cells: parse_flag(&args, "--heap-cells", 1usize << 16)?,
        max_resident: parse_flag(&args, "--max-resident", 8usize)?,
        step_budget: parse_flag(&args, "--step-budget", 2_000_000u64)?,
    };
    let metrics_out: Option<String> = args
        .iter()
        .position(|a| a == "--metrics-out")
        .map(|i| {
            args.get(i + 1)
                .cloned()
                .ok_or_else(|| "--metrics-out needs a path".to_string())
        })
        .transpose()?;
    let trace_out: Option<String> = args
        .iter()
        .position(|a| a == "--trace-out")
        .map(|i| {
            args.get(i + 1)
                .cloned()
                .ok_or_else(|| "--trace-out needs a path".to_string())
        })
        .transpose()?;
    let params = ServerParams {
        shards: parse_flag(&args, "--shards", 4usize)?,
        queue_cap: parse_flag(&args, "--queue-cap", 64usize)?,
        max_conns_per_shard: parse_flag(&args, "--max-conns", 64usize)?,
        replicate: args.iter().any(|a| a == "--replicate"),
        wall: args.iter().any(|a| a == "--wall"),
        trace: trace_out.is_some(),
    };
    let handle = small_serve::start(&addr, cfg, params).map_err(|e| e.to_string())?;
    eprintln!(
        "serving SMALL sessions on {} ({} shards{})",
        handle.addr(),
        params.shards,
        if params.replicate {
            ", replication primary"
        } else {
            ""
        }
    );
    eprintln!(
        "frame = 4-byte LE length + s-expression; handshake with \
         (hello {PROTO_VERSION} client); send (shutdown) to drain"
    );
    // A client's (shutdown) triggers the drain; joining is the wait.
    let outcome = handle.join();
    if let Some(path) = metrics_out {
        std::fs::write(&path, outcome.prometheus()).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("metrics exposition written to {path}");
    }
    if let Some(path) = trace_out {
        let json = outcome
            .chrome_trace()
            .expect("trace was enabled by --trace-out");
        std::fs::write(&path, json).map_err(|e| format!("{path}: {e}"))?;
        eprintln!("chrome trace written to {path} (open in chrome://tracing)");
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("serve: {e}");
            ExitCode::FAILURE
        }
    }
}
