//! `serve` — run the sharded SMALL session server until a client
//! sends `(shutdown)`.
//!
//! ```text
//! serve [--addr HOST:PORT] [--table-size N] [--heap-cells N]
//!       [--max-resident N] [--step-budget N]
//!       [--shards N] [--queue-cap N] [--max-conns N] [--replicate]
//! ```
//!
//! With `--replicate` the server runs as a replication primary:
//! every mutating request is appended to the in-memory WAL and
//! replica-role connections may `(pull <lsn>)` journal frames.

use small_serve::server::ServerParams;
use small_serve::session::ServeConfig;
use small_serve::PROTO_VERSION;
use std::process::ExitCode;

fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> Result<T, String> {
    match args.iter().position(|a| a == flag) {
        None => Ok(default),
        Some(i) => args
            .get(i + 1)
            .ok_or_else(|| format!("{flag} needs a value"))?
            .parse()
            .map_err(|_| format!("bad value for {flag}")),
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let addr = parse_flag(&args, "--addr", "127.0.0.1:7878".to_string())?;
    let cfg = ServeConfig {
        table_size: parse_flag(&args, "--table-size", 2048usize)?,
        heap_cells: parse_flag(&args, "--heap-cells", 1usize << 16)?,
        max_resident: parse_flag(&args, "--max-resident", 8usize)?,
        step_budget: parse_flag(&args, "--step-budget", 2_000_000u64)?,
    };
    let params = ServerParams {
        shards: parse_flag(&args, "--shards", 4usize)?,
        queue_cap: parse_flag(&args, "--queue-cap", 64usize)?,
        max_conns_per_shard: parse_flag(&args, "--max-conns", 64usize)?,
        replicate: args.iter().any(|a| a == "--replicate"),
    };
    let handle = small_serve::start(&addr, cfg, params).map_err(|e| e.to_string())?;
    eprintln!(
        "serving SMALL sessions on {} ({} shards{})",
        handle.addr(),
        params.shards,
        if params.replicate {
            ", replication primary"
        } else {
            ""
        }
    );
    eprintln!(
        "frame = 4-byte LE length + s-expression; handshake with \
         (hello {PROTO_VERSION} client); send (shutdown) to drain"
    );
    // A client's (shutdown) triggers the drain; joining is the wait.
    handle.join();
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("serve: {e}");
            ExitCode::FAILURE
        }
    }
}
