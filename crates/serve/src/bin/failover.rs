//! `failover` — kill-primary replication campaign with a
//! byte-deterministic JSON report.
//!
//! ```text
//! failover [--seeds N | --seeds a,b,c] [--sessions N] [--requests N]
//!          [--kill-points a,b,c] [--out PATH]
//! ```
//!
//! For every `(seed, kill point)` pair: run a replicating primary in
//! lockstep with a WAL-pulling warm standby, kill the primary at the
//! pinned operation index, promote the standby, finish the script on
//! the survivor, and compare everything byte-for-byte against an
//! uninterrupted serial twin. Exit is nonzero on any divergence. CI
//! runs this twice and `cmp`s the reports.

use small_serve::failover::{run_failover, FailoverParams};
use small_serve::gen::PINNED_SEEDS;
use std::process::ExitCode;

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1).cloned())
}

fn parse_list<T: std::str::FromStr>(spec: &str, what: &str) -> Result<Vec<T>, String> {
    spec.split(',')
        .map(|s| s.trim().parse().map_err(|_| format!("bad {what}: {s}")))
        .collect()
}

fn parse_seeds(spec: &str) -> Result<Vec<u64>, String> {
    if spec.contains(',') {
        return parse_list(spec, "seed");
    }
    let n: usize = spec
        .parse()
        .map_err(|_| format!("bad seed count: {spec}"))?;
    if n == 0 || n > PINNED_SEEDS.len() {
        return Err(format!("--seeds must be 1..={}", PINNED_SEEDS.len()));
    }
    Ok(PINNED_SEEDS[..n].to_vec())
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut p = FailoverParams::default();
    if let Some(s) = arg_value(&args, "--seeds") {
        p.seeds = parse_seeds(&s)?;
    }
    if let Some(s) = arg_value(&args, "--sessions") {
        p.sessions = s.parse().map_err(|_| "bad --sessions")?;
    }
    if let Some(s) = arg_value(&args, "--requests") {
        p.requests = s.parse().map_err(|_| "bad --requests")?;
    }
    if let Some(s) = arg_value(&args, "--kill-points") {
        p.kill_points = parse_list(&s, "kill point")?;
    }
    if p.kill_points.is_empty() {
        return Err("need at least one kill point".to_string());
    }
    let out =
        arg_value(&args, "--out").unwrap_or_else(|| "results/failover_report.json".to_string());

    let outcome = run_failover(&p).map_err(|e| e.to_string())?;
    if let Some(dir) = std::path::Path::new(&out).parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir).map_err(|e| e.to_string())?;
        }
    }
    std::fs::write(&out, &outcome.report).map_err(|e| e.to_string())?;

    eprintln!(
        "failover: {} seeds x {} kill points ({} sessions x {} requests) -> {}",
        p.seeds.len(),
        p.kill_points.len(),
        p.sessions,
        p.requests,
        out
    );
    eprintln!("failover: mismatches={}", outcome.mismatches);
    // Timing-dependent client-side telemetry: reported here, never in
    // the byte-compared report.
    eprintln!(
        "failover: client retries={} reconnects={} redials={}",
        outcome.client_retries, outcome.client_reconnects, outcome.client_redials
    );
    if outcome.mismatches > 0 {
        eprintln!("failover: FAILED: promoted standby diverged from the serial twin");
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(e) => {
            eprintln!("failover: {e}");
            ExitCode::FAILURE
        }
    }
}
