//! The typed blocking client.
//!
//! Everything in-tree that talks to a server — the soak fleet, the
//! churn workers, the standby's frame puller, the failover campaign,
//! and every integration test — goes through [`Client`]. It speaks
//! only [`Request`]/[`Reply`] values; the framing and text live in
//! [`crate::protocol`] and nowhere else.
//!
//! Connecting performs the versioned `(hello <version> <role>)`
//! handshake immediately and fails if the server rejects it, so a
//! constructed `Client` is always protocol-compatible.

use crate::protocol::{read_frame, write_frame, Reply, Request, Role, PROTO_VERSION};
use crate::repl::{ReplError, Standby};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};

/// A blocking request/reply client with the handshake already done.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

fn data_err(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

impl Client {
    /// Connect and handshake as `role` at the current protocol
    /// version.
    pub fn connect(addr: SocketAddr, role: Role) -> io::Result<Client> {
        Client::connect_with_version(addr, role, PROTO_VERSION)
    }

    /// Connect and handshake announcing an explicit `version` (tests
    /// use this to exercise the mismatch path).
    pub fn connect_with_version(addr: SocketAddr, role: Role, version: u32) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut client = Client {
            reader: BufReader::new(stream.try_clone()?),
            writer: BufWriter::new(stream),
        };
        match client.request(&Request::Hello { version, role })? {
            Reply::Hello { .. } => Ok(client),
            other => Err(data_err(format!("handshake refused: {}", other.encode()))),
        }
    }

    /// Send one request and read its typed reply.
    pub fn request(&mut self, req: &Request) -> io::Result<Reply> {
        let text = self.request_text(&req.encode())?;
        Reply::decode(&text).ok_or_else(|| data_err(format!("unparseable reply: {text}")))
    }

    /// Send raw request text and return the raw reply text. The soak
    /// harness transcripts use this (byte-level comparison); tests use
    /// it to probe malformed-input handling. Framing still happens in
    /// `protocol` — this never touches bytes itself.
    pub fn request_text(&mut self, text: &str) -> io::Result<String> {
        write_frame(&mut self.writer, text)?;
        read_frame(&mut self.reader)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"))
    }

    /// Pipeline: write every request back-to-back in one burst, then
    /// read exactly one reply per request, in order. This is how the
    /// back-pressure test fills a bounded run queue faster than the
    /// shard drains it.
    pub fn pipeline(&mut self, reqs: &[Request]) -> io::Result<Vec<String>> {
        for req in reqs {
            write_frame(&mut self.writer, &req.encode())?;
        }
        self.writer.flush()?;
        let mut replies = Vec::with_capacity(reqs.len());
        for _ in reqs {
            replies.push(read_frame(&mut self.reader)?.ok_or_else(|| {
                io::Error::new(io::ErrorKind::UnexpectedEof, "server closed mid-pipeline")
            })?);
        }
        Ok(replies)
    }

    /// `(open)` and return the new session id.
    pub fn open(&mut self) -> io::Result<u64> {
        match self.request(&Request::Open)? {
            Reply::Opened { id } => Ok(id),
            other => Err(data_err(format!("open refused: {}", other.encode()))),
        }
    }

    /// Pull WAL frames once from `from`; returns `(next_lsn, bytes)`.
    /// The connection must have hand-shaken as [`Role::Replica`].
    pub fn pull(&mut self, from: u64) -> io::Result<(u64, Vec<u8>)> {
        match self.request(&Request::Pull { from })? {
            Reply::Frames { next, bytes } => Ok((next, bytes)),
            other => Err(data_err(format!("pull refused: {}", other.encode()))),
        }
    }

    /// Pull-and-replay until the standby has applied everything up to
    /// `target_lsn`. Digest or frame damage fails closed as
    /// `InvalidData` carrying the [`ReplError`] text.
    pub fn catch_up(&mut self, standby: &mut Standby, target_lsn: u64) -> io::Result<()> {
        while standby.next_lsn() < target_lsn {
            let from = standby.next_lsn();
            let (next, bytes) = self.pull(from)?;
            if next == from {
                return Err(data_err(format!(
                    "primary cannot serve lsn {from} (target {target_lsn})"
                )));
            }
            standby
                .apply(&bytes)
                .map_err(|e: ReplError| data_err(e.to_string()))?;
        }
        Ok(())
    }
}
