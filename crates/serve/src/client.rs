//! The typed blocking client, and the retrying client built on it.
//!
//! Everything in-tree that talks to a server — the soak fleet, the
//! churn workers, the standby's frame puller, the failover campaign,
//! and every integration test — goes through [`Client`]. It speaks
//! only [`Request`]/[`Reply`] values; the framing and text live in
//! [`crate::protocol`] and nowhere else.
//!
//! Connecting performs the versioned `(hello <version> <role>)`
//! handshake immediately and fails if the server rejects it, so a
//! constructed `Client` is always protocol-compatible.
//!
//! [`Client`] is generic over a [`Transport`] so the network-chaos
//! harness ([`crate::netchaos`]) can slide a fault-injecting stream
//! underneath it without the client noticing. [`RetryClient`] layers
//! deadline + seeded-jitter-backoff + reconnect-with-resume on top:
//! a request that dies mid-flight is re-sent *verbatim* on a fresh
//! connection, which is safe exactly when the request carries the
//! protocol-v3 idempotency fields (a token on `(open …)`, a sequence
//! number on `(seval …)`/`(close …)`) — the server's replay window
//! turns the duplicate into a cached reply.

use crate::protocol::{read_frame, write_frame, NodeRole, Reply, Request, Role, PROTO_VERSION};
use crate::repl::{ReplError, Standby};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// A byte stream a [`Client`] can run over.
///
/// The client needs three things beyond `Read + Write`: a second
/// handle onto the same stream (it buffers the read and write halves
/// separately), and read/write timeouts so a stalled server turns
/// into an error instead of a hang. [`TcpStream`] is the production
/// implementation; the chaos harness's fault-injecting stream is the
/// other one.
pub trait Transport: Read + Write + Send + std::fmt::Debug {
    /// A second handle onto the same underlying stream (the reader
    /// half of the split).
    fn try_split(&self) -> io::Result<Self>
    where
        Self: Sized;
    /// Bound how long a read may block. `None` blocks forever.
    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()>;
    /// Bound how long a write may block. `None` blocks forever.
    fn set_write_timeout(&self, timeout: Option<Duration>) -> io::Result<()>;
}

impl Transport for TcpStream {
    fn try_split(&self) -> io::Result<TcpStream> {
        self.try_clone()
    }
    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        TcpStream::set_read_timeout(self, timeout)
    }
    fn set_write_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        TcpStream::set_write_timeout(self, timeout)
    }
}

/// A blocking request/reply client with the handshake already done.
#[derive(Debug)]
pub struct Client<T: Transport = TcpStream> {
    reader: BufReader<T>,
    writer: BufWriter<T>,
    /// Cluster role the server announced in its handshake.
    node: NodeRole,
}

fn data_err(msg: String) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

impl Client<TcpStream> {
    /// Connect and handshake as `role` at the current protocol
    /// version.
    pub fn connect(addr: SocketAddr, role: Role) -> io::Result<Client> {
        Client::connect_with_version(addr, role, PROTO_VERSION)
    }

    /// Connect and handshake announcing an explicit `version` (tests
    /// use this to exercise the mismatch path).
    pub fn connect_with_version(addr: SocketAddr, role: Role, version: u32) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Client::from_transport_with_version(stream, role, version)
    }
}

impl<T: Transport> Client<T> {
    /// Handshake over an already-connected transport as `role` at the
    /// current protocol version. The chaos harness uses this to run
    /// the client over a fault-injecting stream.
    pub fn from_transport(transport: T, role: Role) -> io::Result<Client<T>> {
        Client::from_transport_with_version(transport, role, PROTO_VERSION)
    }

    /// Handshake over an already-connected transport announcing an
    /// explicit `version`.
    pub fn from_transport_with_version(
        transport: T,
        role: Role,
        version: u32,
    ) -> io::Result<Client<T>> {
        let mut client = Client {
            reader: BufReader::new(transport.try_split()?),
            writer: BufWriter::new(transport),
            node: NodeRole::Primary,
        };
        match client.request(&Request::Hello { version, role })? {
            Reply::Hello { node, .. } => {
                client.node = node;
                Ok(client)
            }
            other => Err(data_err(format!("handshake refused: {}", other.encode()))),
        }
    }

    /// The cluster role the server announced in its `(ok hello …)` —
    /// a cluster-aware client scans its endpoint list for the one
    /// answering [`NodeRole::Primary`].
    pub fn node_role(&self) -> NodeRole {
        self.node
    }

    /// Bound how long a single read or write may block. The retrying
    /// client sets this so a server stalled by a fault plan turns into
    /// a timeout error it can retry, instead of a hang.
    pub fn set_timeouts(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)?;
        self.writer.get_ref().set_write_timeout(timeout)
    }

    /// Send one request and read its typed reply.
    pub fn request(&mut self, req: &Request) -> io::Result<Reply> {
        let text = self.request_text(&req.encode())?;
        Reply::decode(&text).ok_or_else(|| data_err(format!("unparseable reply: {text}")))
    }

    /// Send raw request text and return the raw reply text. The soak
    /// harness transcripts use this (byte-level comparison); tests use
    /// it to probe malformed-input handling. Framing still happens in
    /// `protocol` — this never touches bytes itself.
    pub fn request_text(&mut self, text: &str) -> io::Result<String> {
        write_frame(&mut self.writer, text)?;
        read_frame(&mut self.reader)?
            .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "server closed"))
    }

    /// Pipeline: write every request back-to-back in one burst, then
    /// read exactly one reply per request, in order. This is how the
    /// back-pressure test fills a bounded run queue faster than the
    /// shard drains it.
    pub fn pipeline(&mut self, reqs: &[Request]) -> io::Result<Vec<String>> {
        for req in reqs {
            write_frame(&mut self.writer, &req.encode())?;
        }
        self.writer.flush()?;
        let mut replies = Vec::with_capacity(reqs.len());
        for _ in reqs {
            replies.push(read_frame(&mut self.reader)?.ok_or_else(|| {
                io::Error::new(io::ErrorKind::UnexpectedEof, "server closed mid-pipeline")
            })?);
        }
        Ok(replies)
    }

    /// `(open)` and return the new session id.
    pub fn open(&mut self) -> io::Result<u64> {
        match self.request(&Request::Open { token: None })? {
            Reply::Opened { id } => Ok(id),
            other => Err(data_err(format!("open refused: {}", other.encode()))),
        }
    }

    /// `(open <token>)` and return the session id — the same id every
    /// time for the same token, so a retried open cannot leak a
    /// second session.
    pub fn open_with_token(&mut self, token: u64) -> io::Result<u64> {
        match self.request(&Request::Open { token: Some(token) })? {
            Reply::Opened { id } => Ok(id),
            other => Err(data_err(format!("open refused: {}", other.encode()))),
        }
    }

    /// `(ping)` and return the primary's durable LSN. Answered at
    /// decode time on the server, so it works even when the run
    /// queues are saturated — which is what makes it usable as a
    /// liveness heartbeat.
    pub fn ping(&mut self) -> io::Result<u64> {
        match self.request(&Request::Ping)? {
            Reply::Pong { lsn, .. } => Ok(lsn),
            other => Err(data_err(format!("ping refused: {}", other.encode()))),
        }
    }

    /// Pull WAL frames once from `from`; returns `(next_lsn, bytes)`.
    /// The connection must have hand-shaken as [`Role::Replica`].
    pub fn pull(&mut self, from: u64) -> io::Result<(u64, Vec<u8>)> {
        match self.request(&Request::Pull { from })? {
            Reply::Frames { next, bytes } => Ok((next, bytes)),
            other => Err(data_err(format!("pull refused: {}", other.encode()))),
        }
    }

    /// Pull-and-replay until the standby has applied everything up to
    /// `target_lsn`. Digest or frame damage fails closed as
    /// `InvalidData` carrying the [`ReplError`] text.
    pub fn catch_up(&mut self, standby: &mut Standby, target_lsn: u64) -> io::Result<()> {
        while standby.next_lsn() < target_lsn {
            let from = standby.next_lsn();
            let (next, bytes) = self.pull(from)?;
            if next == from {
                return Err(data_err(format!(
                    "primary cannot serve lsn {from} (target {target_lsn})"
                )));
            }
            standby
                .apply(&bytes)
                .map_err(|e: ReplError| data_err(e.to_string()))?;
        }
        Ok(())
    }
}

/// One liveness probe: dial `addr`, handshake, `(ping)`, and return
/// the primary's durable LSN — or `None` if any step fails or
/// exceeds `timeout`. This is the heartbeat a lease monitor
/// ([`crate::repl::Lease`]) feeds: each `None` is a miss, each
/// `Some(lsn)` a beat.
pub fn ping(addr: SocketAddr, timeout: Duration) -> Option<u64> {
    probe(addr, timeout).map(|(lsn, _)| lsn)
}

/// One discovery probe: dial `addr`, handshake, `(ping)`, and return
/// the node's durable LSN *and announced cluster role* — or `None` if
/// any step fails or exceeds `timeout`. Failing-over clients use the
/// role to tell the new primary apart from the standbys on the same
/// endpoint list.
pub fn probe(addr: SocketAddr, timeout: Duration) -> Option<(u64, NodeRole)> {
    let stream = TcpStream::connect_timeout(&addr, timeout).ok()?;
    stream.set_nodelay(true).ok()?;
    stream.set_read_timeout(Some(timeout)).ok()?;
    stream.set_write_timeout(Some(timeout)).ok()?;
    let mut client = Client::from_transport(stream, Role::Client).ok()?;
    let lsn = client.ping().ok()?;
    Some((lsn, client.node_role()))
}

/// Retry/backoff knobs for [`RetryClient`].
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Send attempts per request (first try included).
    pub attempts: u32,
    /// First backoff step; doubles per attempt up to [`max_delay`].
    ///
    /// [`max_delay`]: RetryPolicy::max_delay
    pub base_delay: Duration,
    /// Backoff ceiling.
    pub max_delay: Duration,
    /// Per-*request* wall-clock budget across all attempts, and the
    /// per-read/write timeout on the underlying transport.
    pub deadline: Duration,
    /// Seeds the private jitter stream. Jitter decorrelates retry
    /// storms; seeding it keeps a chaos campaign reproducible.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            attempts: 8,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(100),
            deadline: Duration::from_secs(2),
            seed: 0xC1A0,
        }
    }
}

/// A boxed dial closure producing a fresh handshaken [`Client`].
pub type DialFn<T> = Box<dyn FnMut() -> io::Result<Client<T>> + Send>;

/// Where a [`RetryClient`] gets its connections: a single dial
/// closure, or an ordered endpoint list it scans for the current
/// primary on every (re)connect.
enum Dialer<T: Transport> {
    Single(DialFn<T>),
    Cluster(Vec<DialFn<T>>),
}

/// A client that survives connection loss: on any transport error it
/// reconnects (via the dial closure) with seeded-jitter exponential
/// backoff and re-sends the request verbatim, up to
/// [`RetryPolicy::attempts`] tries or the [`RetryPolicy::deadline`].
///
/// Re-sending verbatim is only exactly-once when the request is
/// idempotent on the wire — which protocol v3 makes true for every
/// mutating request the harnesses send (tokenized opens, sequenced
/// evals and closes). A bare v2-style `(eval …)` retried through this
/// client may execute twice; that is the caller's choice to make.
///
/// A *cluster* client ([`RetryClient::with_endpoints`]) holds an
/// ordered endpoint list instead of one dial closure. On every
/// (re)connect it scans the list in order and keeps the first endpoint
/// whose `(ok hello …)` announces [`NodeRole::Primary`] — standbys are
/// dropped and skipped, dead endpoints are dial errors absorbed by the
/// backoff loop. Combined with verbatim re-send, a mutation acked by a
/// primary that then died is re-sent to its promoted successor and
/// answered from the *replicated* dedup window: no client-visible
/// anomaly across failover.
pub struct RetryClient<T: Transport> {
    dial: Dialer<T>,
    policy: RetryPolicy,
    conn: Option<Client<T>>,
    jitter: u64,
    retries: u64,
    reconnects: u64,
    redials: u64,
}

impl<T: Transport> std::fmt::Debug for RetryClient<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RetryClient")
            .field("policy", &self.policy)
            .field("connected", &self.conn.is_some())
            .field("retries", &self.retries)
            .field("reconnects", &self.reconnects)
            .field("redials", &self.redials)
            .finish()
    }
}

/// splitmix64 over a private state word — the same tiny generator the
/// fault schedules use, so backoff jitter never perturbs any other
/// seeded stream.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl<T: Transport> RetryClient<T> {
    /// Wrap a dial closure. Nothing connects until the first request
    /// (or a failure forces a redial).
    pub fn new(
        dial: impl FnMut() -> io::Result<Client<T>> + Send + 'static,
        policy: RetryPolicy,
    ) -> RetryClient<T> {
        RetryClient {
            dial: Dialer::Single(Box::new(dial)),
            policy,
            conn: None,
            jitter: policy.seed ^ 0x5DEE_CE66_D1CE_4E5B,
            retries: 0,
            reconnects: 0,
            redials: 0,
        }
    }

    /// Wrap an *ordered endpoint list* (one dial closure per cluster
    /// node, primary first by convention). Every (re)connect scans the
    /// list in order and keeps the first endpoint answering
    /// [`NodeRole::Primary`]; standbys and dead endpoints are skipped.
    pub fn with_endpoints(endpoints: Vec<DialFn<T>>, policy: RetryPolicy) -> RetryClient<T> {
        RetryClient {
            dial: Dialer::Cluster(endpoints),
            policy,
            conn: None,
            jitter: policy.seed ^ 0x5DEE_CE66_D1CE_4E5B,
            retries: 0,
            reconnects: 0,
            redials: 0,
        }
    }

    /// Transport errors absorbed by re-sends so far (timing-dependent
    /// under real faults — never put this in a deterministic report).
    pub fn retries(&self) -> u64 {
        self.retries
    }

    /// Successful redials after a connection died.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// Endpoint dials attempted, including failed dials and standby
    /// answers skipped during cluster scans (like [`Self::retries`],
    /// timing-dependent — reported, never byte-compared).
    pub fn redials(&self) -> u64 {
        self.redials
    }

    /// Drop the current connection (the failover harness does this
    /// when it kills the primary, so the next request dials the
    /// promoted standby).
    pub fn disconnect(&mut self) {
        self.conn = None;
    }

    /// One connection attempt. A single dialer is called as-is; a
    /// cluster dialer scans its endpoint list in order and returns the
    /// first connection whose handshake announced
    /// [`NodeRole::Primary`] — a standby's connection is dropped on
    /// the spot (it would refuse session traffic anyway).
    fn dial_once(dial: &mut Dialer<T>, redials: &mut u64) -> io::Result<Client<T>> {
        match dial {
            Dialer::Single(d) => {
                *redials += 1;
                d()
            }
            Dialer::Cluster(list) => {
                let mut last = io::Error::new(
                    io::ErrorKind::NotConnected,
                    "no endpoint answered as primary",
                );
                for d in list.iter_mut() {
                    *redials += 1;
                    match d() {
                        Ok(conn) if conn.node_role() == NodeRole::Primary => return Ok(conn),
                        Ok(_) => {
                            last = io::Error::new(
                                io::ErrorKind::NotConnected,
                                "endpoint answered as standby",
                            );
                        }
                        Err(e) => last = e,
                    }
                }
                Err(last)
            }
        }
    }

    fn backoff(&mut self, attempt: u32) {
        let base = self.policy.base_delay.as_micros().max(1) as u64;
        let cap = self.policy.max_delay.as_micros().max(1) as u64;
        let step = base.saturating_mul(1u64 << attempt.min(20)).min(cap);
        // Half fixed, half jittered: never zero, never synchronized.
        let sleep = step / 2 + splitmix64(&mut self.jitter) % (step / 2 + 1);
        std::thread::sleep(Duration::from_micros(sleep));
    }

    /// Send one request, retrying through reconnects, and read its
    /// typed reply.
    pub fn request(&mut self, req: &Request) -> io::Result<Reply> {
        let text = self.request_text(&req.encode())?;
        Reply::decode(&text).ok_or_else(|| data_err(format!("unparseable reply: {text}")))
    }

    /// Send raw request text, retrying through reconnects, and return
    /// the raw reply text.
    pub fn request_text(&mut self, text: &str) -> io::Result<String> {
        let start = Instant::now();
        let mut last = io::Error::other("no attempt made");
        for attempt in 0..self.policy.attempts.max(1) {
            if attempt > 0 {
                if start.elapsed() >= self.policy.deadline {
                    break;
                }
                self.backoff(attempt - 1);
                self.retries += 1;
            }
            if self.conn.is_none() {
                match Self::dial_once(&mut self.dial, &mut self.redials) {
                    Ok(conn) => {
                        // A hung read under faults must become an
                        // error the next attempt can absorb.
                        let _ = conn.set_timeouts(Some(self.policy.deadline));
                        if attempt > 0 {
                            self.reconnects += 1;
                        }
                        self.conn = Some(conn);
                    }
                    Err(e) => {
                        last = e;
                        continue;
                    }
                }
            }
            let conn = self.conn.as_mut().expect("just dialed");
            match conn.request_text(text) {
                Ok(reply) => return Ok(reply),
                Err(e) => {
                    // The connection is in an unknown state (the
                    // request may or may not have landed); only a
                    // fresh dial and a verbatim re-send is sound.
                    self.conn = None;
                    last = e;
                }
            }
        }
        Err(last)
    }

    /// `(open <token>)` through the retry machinery.
    pub fn open_with_token(&mut self, token: u64) -> io::Result<u64> {
        match self.request(&Request::Open { token: Some(token) })? {
            Reply::Opened { id } => Ok(id),
            other => Err(data_err(format!("open refused: {}", other.encode()))),
        }
    }

    /// `(ping)` through the retry machinery.
    pub fn ping(&mut self) -> io::Result<u64> {
        match self.request(&Request::Ping)? {
            Reply::Pong { lsn, .. } => Ok(lsn),
            other => Err(data_err(format!("ping refused: {}", other.encode()))),
        }
    }
}
