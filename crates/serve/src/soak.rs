//! The deterministic soak harness: a concurrent client fleet against
//! the TCP server, compared byte-for-byte with a serial in-process
//! twin.
//!
//! For every pinned seed, `clients` threads each open a session and
//! replay the seed's generated request stream (see [`crate::gen`]),
//! collecting the full reply transcript — evals, ledger, digest,
//! close. The same streams then run serially through a second
//! [`SessionManager`] with eviction disabled. Session isolation and
//! eviction-transparency reduce to one check: **every transcript must
//! be byte-identical across the two runs**, even though the server run
//! interleaved requests across threads and suspended/resumed sessions
//! under LRU pressure at scheduler whim.
//!
//! A deterministic *eviction sweep* follows the fleet on both sides:
//! `max_resident + 2` sessions driven round-robin over one connection,
//! so every request round forces suspend/resume churn in a fixed
//! order. This guarantees the suspend/resume path is exercised (and
//! its transcript compared) regardless of how the parallel phase was
//! scheduled.
//!
//! The report (`results/soak_report.json`) contains only
//! schedule-independent data — transcripts' digests, per-run aggregate
//! event counts, match flags — and is therefore byte-identical across
//! runs; CI `cmp`s a double run. Scheduling-dependent counters
//! (eviction/resume totals) are returned to the caller for threshold
//! assertions and stderr, never written to the report.

use crate::gen::programs_for;
use crate::manager::SessionManager;
use crate::server::{self, dispatch, Client};
use crate::session::ServeConfig;
use small_metrics::EventCounts;
use small_persist::{digest_bytes, DIGEST_SEED};
use std::io;

/// Soak run shape.
#[derive(Debug, Clone)]
pub struct SoakParams {
    /// Seeds to run (one server per seed).
    pub seeds: Vec<u64>,
    /// Concurrent clients per seed.
    pub clients: usize,
    /// Generated eval requests per client (plus fixed prologue/teardown).
    pub requests: usize,
    /// Per-session machine configuration; `max_resident` below
    /// `clients` keeps the LRU evictor busy during the fleet phase.
    pub cfg: ServeConfig,
    /// Server worker threads.
    pub workers: usize,
}

impl Default for SoakParams {
    fn default() -> Self {
        SoakParams {
            seeds: vec![11, 23, 47],
            clients: 8,
            requests: 32,
            cfg: ServeConfig {
                heap_cells: 1 << 13,
                table_size: 384,
                max_resident: 3,
                ..ServeConfig::default()
            },
            workers: 10,
        }
    }
}

/// What a soak run produced.
pub struct SoakOutcome {
    /// The deterministic JSON report body.
    pub report: String,
    /// Transcript (or aggregate-count) divergences found.
    pub mismatches: usize,
    /// Total LRU evictions across all servers (scheduling-dependent).
    pub evictions: u64,
    /// Total resume-on-touch events (scheduling-dependent).
    pub resumes: u64,
}

fn transcript_digest(replies: &[String]) -> u64 {
    let mut h = DIGEST_SEED;
    for r in replies {
        h = digest_bytes(h, r.as_bytes());
    }
    h
}

/// One TCP client's full scripted conversation.
fn tcp_client_run(
    addr: std::net::SocketAddr,
    seed: u64,
    client: u64,
    requests: usize,
) -> io::Result<Vec<String>> {
    let mut c = Client::connect(addr)?;
    let id = c.open()?;
    let mut t = Vec::new();
    for prog in programs_for(seed, client, requests) {
        t.push(c.request(&format!("(eval {id} {prog})"))?);
    }
    t.push(c.request(&format!("(ledger {id})"))?);
    t.push(c.request(&format!("(digest {id})"))?);
    t.push(c.request(&format!("(close {id})"))?);
    Ok(t)
}

/// The serial twin of [`tcp_client_run`]: same frames, same dispatch
/// code path, one thread, no eviction.
fn serial_client_run(mgr: &SessionManager, seed: u64, client: u64, requests: usize) -> Vec<String> {
    let id = mgr.open();
    let mut t = Vec::new();
    for prog in programs_for(seed, client, requests) {
        t.push(dispatch(&format!("(eval {id} {prog})"), mgr).0);
    }
    t.push(dispatch(&format!("(ledger {id})"), mgr).0);
    t.push(dispatch(&format!("(digest {id})"), mgr).0);
    t.push(dispatch(&format!("(close {id})"), mgr).0);
    t
}

/// The deterministic eviction sweep, expressed over any request
/// transport. Opens `max_resident + 2` sessions and drives them
/// round-robin so every round suspends and resumes sessions in a
/// fixed order.
fn run_sweep(
    req: &mut dyn FnMut(&str) -> io::Result<String>,
    seed: u64,
    cfg: &ServeConfig,
) -> io::Result<Vec<String>> {
    let fleet = cfg.max_resident + 2;
    let sweep_seed = seed.wrapping_add(0x5eed);
    let mut t = Vec::new();
    let mut ids = Vec::new();
    for _ in 0..fleet {
        let reply = req("(open)")?;
        let id = reply
            .strip_prefix("(ok ")
            .and_then(|r| r.strip_suffix(')'))
            .and_then(|r| r.parse::<u64>().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, reply.clone()))?;
        t.push(reply);
        ids.push(id);
    }
    let progs: Vec<Vec<String>> = (0..fleet)
        .map(|k| programs_for(sweep_seed, k as u64, 6))
        .collect();
    let rounds = progs[0].len();
    for round in 0..rounds {
        for (&id, prog) in ids.iter().zip(progs.iter()) {
            t.push(req(&format!("(eval {id} {})", prog[round]))?);
        }
    }
    for &id in &ids {
        t.push(req(&format!("(ledger {id})"))?);
        t.push(req(&format!("(digest {id})"))?);
        t.push(req(&format!("(close {id})"))?);
    }
    Ok(t)
}

fn counts_json(c: &EventCounts) -> String {
    let words = c.to_words();
    let fields: Vec<String> = EventCounts::WORD_NAMES
        .iter()
        .zip(words.iter())
        .map(|(name, value)| format!("\"{name}\":{value}"))
        .collect();
    format!("{{{}}}", fields.join(","))
}

/// Run the full soak campaign. IO errors from the TCP leg surface as
/// mismatches (a transcript that could not be collected can't match),
/// not process aborts.
pub fn run_soak(p: &SoakParams) -> io::Result<SoakOutcome> {
    let mut runs = Vec::new();
    let mut mismatches = 0usize;
    let mut evictions = 0u64;
    let mut resumes = 0u64;

    for &seed in &p.seeds {
        let handle = server::start("127.0.0.1:0", p.cfg, p.workers)?;
        let addr = handle.addr();

        // Phase 1: the concurrent fleet.
        let server_transcripts: Vec<io::Result<Vec<String>>> = std::thread::scope(|s| {
            let joins: Vec<_> = (0..p.clients)
                .map(|c| s.spawn(move || tcp_client_run(addr, seed, c as u64, p.requests)))
                .collect();
            joins
                .into_iter()
                .map(|j| {
                    j.join()
                        .unwrap_or_else(|_| Err(io::Error::other("client thread panicked")))
                })
                .collect()
        });

        // Phase 2: the deterministic eviction sweep over one connection.
        let sweep_server: io::Result<Vec<String>> = (|| {
            let mut c = Client::connect(addr)?;
            run_sweep(&mut |frame| c.request(frame), seed, &p.cfg)
        })();

        let server_counts = handle.manager().aggregate_counts();
        let (ev, res) = handle.manager().eviction_counters();
        evictions += ev;
        resumes += res;

        // Graceful drain.
        if let Ok(mut c) = Client::connect(addr) {
            let _ = c.request("(shutdown)");
        }
        handle.shutdown();

        // Serial twin: same frames, one thread, eviction disabled.
        let serial_cfg = ServeConfig {
            max_resident: usize::MAX,
            ..p.cfg
        };
        let twin = SessionManager::new(serial_cfg);
        let serial_transcripts: Vec<Vec<String>> = (0..p.clients)
            .map(|c| serial_client_run(&twin, seed, c as u64, p.requests))
            .collect();
        let sweep_serial = run_sweep(&mut |frame| Ok(dispatch(frame, &twin).0), seed, &p.cfg)
            .expect("serial sweep is infallible");
        let serial_counts = twin.aggregate_counts();

        // Compare.
        let mut sessions_json = Vec::new();
        for c in 0..p.clients {
            let serial = &serial_transcripts[c];
            let ok = matches!(&server_transcripts[c], Ok(t) if t == serial);
            if !ok {
                mismatches += 1;
            }
            sessions_json.push(format!(
                "{{\"client\":{c},\"reply_digest\":\"d{:016x}\",\"match\":{ok}}}",
                transcript_digest(serial)
            ));
        }
        let sweep_ok = matches!(&sweep_server, Ok(t) if *t == sweep_serial);
        if !sweep_ok {
            mismatches += 1;
        }
        let counts_ok = server_counts == serial_counts;
        if !counts_ok {
            mismatches += 1;
        }
        runs.push(format!(
            "{{\"seed\":{seed},\"sessions\":[{}],\
             \"sweep_digest\":\"d{:016x}\",\"sweep_match\":{sweep_ok},\
             \"counts_match\":{counts_ok},\"aggregate\":{}}}",
            sessions_json.join(","),
            transcript_digest(&sweep_serial),
            counts_json(&serial_counts),
        ));
    }

    let report = format!(
        "{{\"schema\":\"soak_report_v1\",\"clients\":{},\"requests\":{},\
         \"seeds\":[{}],\"all_match\":{},\"runs\":[{}]}}\n",
        p.clients,
        p.requests,
        p.seeds
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(","),
        mismatches == 0,
        runs.join(","),
    );
    Ok(SoakOutcome {
        report,
        mismatches,
        evictions,
        resumes,
    })
}
