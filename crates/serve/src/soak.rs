//! The deterministic soak harness: a concurrent client fleet against
//! the sharded TCP server, compared byte-for-byte with a serial
//! in-process twin.
//!
//! For every pinned seed, `clients` threads each open a session and
//! replay the seed's generated request stream (see [`crate::gen`]),
//! collecting the full reply transcript — evals, ledger, digest,
//! close. The same streams then run serially through a
//! [`SessionStore`] twin with eviction disabled
//! ([`SessionStore::apply`] produces exactly the replies the server
//! encodes). Session isolation and eviction-transparency reduce to one
//! check: **every transcript must be byte-identical across the two
//! runs**, even though the server run interleaved requests across
//! shards and suspended/resumed sessions under per-shard LRU pressure.
//! Session ids are allocated in decode order and therefore racy across
//! concurrent clients, so fleet transcripts exclude the `(ok opened …)`
//! reply; every other reply is id-free.
//!
//! A deterministic *eviction sweep* follows the fleet on both sides:
//! `max_resident + 2` sessions driven round-robin over one lockstep
//! connection, so every request round forces suspend/resume churn in a
//! fixed order (and, being lockstep, fixed ids — the sweep transcript
//! *does* include open replies). This guarantees the suspend/resume
//! path is exercised regardless of how the parallel phase was
//! scheduled.
//!
//! An optional **churn phase** (`churn > 0`) then rolls thousands of
//! short-lived sessions through a fresh server — open, a few requests,
//! close — across a small worker fleet, proving the sharded core
//! sustains multi-thousand-session turnover behind bounded queues with
//! zero busy-sheds at lockstep depth.
//!
//! After the sweep, the harness fetches a live `(metrics)` snapshot
//! over the wire and byte-compares its deterministic section (per-kind
//! request counts and virtual-cycle latency histograms) against the
//! serial twin's: request latency on the virtual clock is a pure
//! function of each request's operation stream, and histogram merging
//! is order-independent, so shard scheduling and eviction churn must
//! be invisible in the snapshot too.
//!
//! The report (`results/soak_report.json`) contains only
//! schedule-independent data — transcripts' digests, per-run aggregate
//! event counts, the deterministic metrics snapshot, match flags — and
//! is therefore byte-identical across runs; CI `cmp`s a double run.
//! Scheduling-dependent observables (eviction/resume totals, wall-clock
//! req/s, per-shard latency summaries, Prometheus text, Chrome traces)
//! are returned to the caller for threshold assertions and stderr,
//! never written to the report.

use crate::client::{Client, RetryClient, RetryPolicy};
use crate::gen::programs_for;
use crate::manager::SessionStore;
use crate::protocol::{Reply, Request, Role};
use crate::server::{self, ServerParams};
use crate::session::ServeConfig;
use crate::telemetry::{prometheus_text, ReqKind, ShardMetrics, VolatileMetrics};
use small_metrics::EventCounts;
use small_persist::{digest_bytes, DIGEST_SEED};
use std::io;
use std::net::TcpStream;
use std::time::Instant;

/// Soak run shape.
#[derive(Debug, Clone)]
pub struct SoakParams {
    /// Seeds to run (one server per seed).
    pub seeds: Vec<u64>,
    /// Concurrent clients per seed.
    pub clients: usize,
    /// Generated eval requests per client (plus fixed prologue/teardown).
    pub requests: usize,
    /// Per-session machine configuration; a small `max_resident` keeps
    /// every shard's LRU evictor busy during the fleet phase.
    pub cfg: ServeConfig,
    /// Server shape (shards, queue bounds, connection caps).
    pub server: ServerParams,
    /// Total short-lived sessions for the churn phase (0 = skip).
    pub churn: usize,
    /// Concurrent churn workers.
    pub churn_workers: usize,
}

impl Default for SoakParams {
    fn default() -> Self {
        SoakParams {
            seeds: vec![11, 23, 47],
            clients: 8,
            requests: 32,
            cfg: ServeConfig {
                heap_cells: 1 << 13,
                table_size: 384,
                // One resident session per shard: any two sessions
                // sharing a shard thrash suspend/resume.
                max_resident: 1,
                ..ServeConfig::default()
            },
            server: ServerParams {
                shards: 2,
                queue_cap: 64,
                max_conns_per_shard: 64,
                replicate: false,
                ..ServerParams::default()
            },
            churn: 0,
            churn_workers: 4,
        }
    }
}

/// What a soak run produced.
pub struct SoakOutcome {
    /// The deterministic JSON report body.
    pub report: String,
    /// Transcript (or aggregate-count, or metrics-snapshot) divergences
    /// found.
    pub mismatches: usize,
    /// Total LRU evictions across all servers (scheduling-dependent).
    pub evictions: u64,
    /// Total resume-on-touch events (scheduling-dependent).
    pub resumes: u64,
    /// Human-readable per-seed/per-shard telemetry lines — sustained
    /// requests/sec and binned p50/p99 eval latency on the virtual
    /// clock. Scheduling-dependent (stderr material, never report
    /// material).
    pub summary: Vec<String>,
    /// Prometheus-style text exposition of the telemetry merged across
    /// every seed's server (the `--metrics-out` payload).
    pub prometheus: String,
    /// Chrome Trace Format JSON from the last seed's server, when the
    /// soak ran with [`ServerParams::trace`].
    pub chrome_trace: Option<String>,
    /// Summed [`RetryClient::retries`] across every fleet and churn
    /// worker. Attempt counts are timing-dependent, so these three
    /// live in the stderr summary only — never in the byte-compared
    /// report.
    pub client_retries: u64,
    /// Summed [`RetryClient::reconnects`] across workers.
    pub client_reconnects: u64,
    /// Summed [`RetryClient::redials`] across workers.
    pub client_redials: u64,
}

/// (retries, reconnects, redials) of one worker's client.
type ClientCounters = (u64, u64, u64);

/// A fresh single-endpoint retrying client against `addr`. The soak
/// wire is clean local TCP, so the counters are expected to read
/// zero — but the fleet runs the same client type the chaos campaigns
/// torture, and the bins report whatever it actually absorbed.
fn retry_client(addr: std::net::SocketAddr, seed: u64) -> RetryClient<TcpStream> {
    RetryClient::new(
        move || {
            let stream = TcpStream::connect(addr)?;
            stream.set_nodelay(true)?;
            Client::from_transport(stream, Role::Client)
        },
        RetryPolicy {
            seed,
            ..RetryPolicy::default()
        },
    )
}

fn transcript_digest(replies: &[String]) -> u64 {
    let mut h = DIGEST_SEED;
    for r in replies {
        h = digest_bytes(h, r.as_bytes());
    }
    h
}

/// The typed request stream one fleet client sends after opening its
/// session (transcripted; the racy `(ok opened …)` reply is not).
fn client_requests(id: u64, seed: u64, client: u64, requests: usize) -> Vec<Request> {
    let mut reqs: Vec<Request> = programs_for(seed, client, requests)
        .into_iter()
        .map(|src| Request::Eval { id, seq: None, src })
        .collect();
    reqs.push(Request::Ledger { id });
    reqs.push(Request::Digest { id });
    reqs.push(Request::Close { id, seq: None });
    reqs
}

/// One TCP client's full scripted conversation, plus its retry
/// counters (surfaced in the bin summary, never in the report).
fn tcp_client_run(
    addr: std::net::SocketAddr,
    seed: u64,
    client: u64,
    requests: usize,
) -> io::Result<(Vec<String>, ClientCounters)> {
    let mut c = retry_client(addr, seed ^ client.rotate_left(32));
    let id = match c.request(&Request::Open { token: None })? {
        Reply::Opened { id } => id,
        other => return Err(io::Error::new(io::ErrorKind::InvalidData, other.encode())),
    };
    let mut t = Vec::new();
    for req in client_requests(id, seed, client, requests) {
        t.push(c.request_text(&req.encode())?);
    }
    Ok((t, (c.retries(), c.reconnects(), c.redials())))
}

/// The serial twin of [`tcp_client_run`]: same typed requests, one
/// thread, no eviction.
fn serial_client_run(
    twin: &mut SessionStore,
    seed: u64,
    client: u64,
    requests: usize,
) -> Vec<String> {
    let id = twin.open();
    client_requests(id, seed, client, requests)
        .iter()
        .map(|req| twin.apply(req).encode())
        .collect()
}

/// The deterministic eviction sweep, expressed over any request
/// transport. Opens `max_resident + 2` sessions and drives them
/// round-robin so every round suspends and resumes sessions in a
/// fixed order. Lockstep on one connection, so the open replies are
/// deterministic and transcripted.
fn run_sweep(
    req: &mut dyn FnMut(&Request) -> io::Result<String>,
    seed: u64,
    cfg: &ServeConfig,
) -> io::Result<Vec<String>> {
    let fleet = cfg.max_resident + 2;
    let sweep_seed = seed.wrapping_add(0x5eed);
    let mut t = Vec::new();
    let mut ids = Vec::new();
    for _ in 0..fleet {
        let reply = req(&Request::Open { token: None })?;
        let id = match Reply::decode(&reply) {
            Some(Reply::Opened { id }) => id,
            _ => return Err(io::Error::new(io::ErrorKind::InvalidData, reply)),
        };
        t.push(reply);
        ids.push(id);
    }
    let progs: Vec<Vec<String>> = (0..fleet)
        .map(|k| programs_for(sweep_seed, k as u64, 6))
        .collect();
    let rounds = progs[0].len();
    for round in 0..rounds {
        for (&id, prog) in ids.iter().zip(progs.iter()) {
            t.push(req(&Request::Eval {
                id,
                seq: None,
                src: prog[round].clone(),
            })?);
        }
    }
    for &id in &ids {
        t.push(req(&Request::Ledger { id })?);
        t.push(req(&Request::Digest { id })?);
        t.push(req(&Request::Close { id, seq: None })?);
    }
    Ok(t)
}

/// Run one seed's serial twin alone — the fleet scripts plus the
/// eviction sweep, no TCP, no threads — and return its request
/// telemetry. This is the deterministic "soak cell" the bench
/// trajectory commits: virtual-cycle latency histograms that any
/// machine reproduces byte-identically from the seed.
pub fn twin_telemetry(
    seed: u64,
    clients: usize,
    requests: usize,
    cfg: &ServeConfig,
) -> ShardMetrics {
    let mut twin = SessionStore::new(ServeConfig {
        max_resident: usize::MAX,
        ..*cfg
    });
    for c in 0..clients {
        // Same request stream as `serial_client_run`, but nobody reads
        // the replies here — telemetry is recorded inside `apply` — so
        // skip the transcript encode.
        let id = twin.open();
        for req in client_requests(id, seed, c as u64, requests) {
            let _ = twin.apply(&req);
        }
    }
    // The eviction sweep, mirroring `run_sweep`'s exact request
    // sequence (same opens, same round-robin evals, same teardown —
    // `regress --check` holds the telemetry byte-identical to the
    // transcripted path), minus the reply encode/decode round-trips
    // nothing here reads.
    let fleet = cfg.max_resident + 2;
    let sweep_seed = seed.wrapping_add(0x5eed);
    let ids: Vec<u64> = (0..fleet)
        .map(|_| match twin.apply(&Request::Open { token: None }) {
            Reply::Opened { id } => id,
            other => unreachable!("twin open failed: {}", other.encode()),
        })
        .collect();
    let progs: Vec<Vec<String>> = (0..fleet)
        .map(|k| programs_for(sweep_seed, k as u64, 6))
        .collect();
    for round in 0..progs[0].len() {
        for (&id, prog) in ids.iter().zip(progs.iter()) {
            let _ = twin.apply(&Request::Eval {
                id,
                seq: None,
                src: prog[round].clone(),
            });
        }
    }
    for &id in &ids {
        let _ = twin.apply(&Request::Ledger { id });
        let _ = twin.apply(&Request::Digest { id });
        let _ = twin.apply(&Request::Close { id, seq: None });
    }
    twin.telemetry().clone()
}

fn counts_json(c: &EventCounts) -> String {
    let words = c.to_words();
    let fields: Vec<String> = EventCounts::WORD_NAMES
        .iter()
        .zip(words.iter())
        .map(|(name, value)| format!("\"{name}\":{value}"))
        .collect();
    format!("{{{}}}", fields.join(","))
}

/// The request scripts of one churn worker: `sessions` short-lived
/// sessions, each opened, exercised briefly, and closed.
fn churn_scripts(seed: u64, worker: u64, sessions: usize) -> Vec<Vec<String>> {
    (0..sessions)
        .map(|k| programs_for(seed ^ 0xc4a0, worker * 1_000_003 + k as u64, 2))
        .collect()
}

/// One churn worker's conversation: open → short script → close per
/// session, transcripting every id-free reply.
fn churn_worker_run(
    addr: std::net::SocketAddr,
    seed: u64,
    worker: u64,
    sessions: usize,
) -> io::Result<(Vec<String>, ClientCounters)> {
    let mut c = retry_client(addr, seed ^ worker.rotate_left(48));
    let mut t = Vec::new();
    for script in churn_scripts(seed, worker, sessions) {
        let id = match c.request(&Request::Open { token: None })? {
            Reply::Opened { id } => id,
            other => return Err(io::Error::new(io::ErrorKind::InvalidData, other.encode())),
        };
        for src in script {
            t.push(c.request_text(&Request::Eval { id, seq: None, src }.encode())?);
        }
        t.push(c.request_text(&Request::Close { id, seq: None }.encode())?);
    }
    Ok((t, (c.retries(), c.reconnects(), c.redials())))
}

struct ChurnResult {
    json: String,
    mismatches: usize,
    evictions: u64,
    resumes: u64,
    counters: ClientCounters,
}

/// The churn phase: `total` sessions rolled through a fresh server by
/// `workers` concurrent connections, vs. a serial twin.
fn run_churn(p: &SoakParams, seed: u64) -> io::Result<ChurnResult> {
    let total = p.churn;
    let workers = p.churn_workers.max(1);
    let per_worker = total.div_ceil(workers);
    let handle = server::start("127.0.0.1:0", p.cfg, p.server)?;
    let addr = handle.addr();

    let transcripts: Vec<io::Result<(Vec<String>, ClientCounters)>> = std::thread::scope(|s| {
        let joins: Vec<_> = (0..workers)
            .map(|w| s.spawn(move || churn_worker_run(addr, seed, w as u64, per_worker)))
            .collect();
        joins
            .into_iter()
            .map(|j| {
                j.join()
                    .unwrap_or_else(|_| Err(io::Error::other("churn worker panicked")))
            })
            .collect()
    });

    let outcome = handle.shutdown();
    let (evictions, resumes) = outcome.eviction_counters();
    let server_counts = outcome.aggregate_counts();

    // Serial twin: every worker's scripts, one store, no eviction.
    let mut twin = SessionStore::new(ServeConfig {
        max_resident: usize::MAX,
        ..p.cfg
    });
    let mut mismatches = 0usize;
    let mut digests = Vec::new();
    let mut counters = (0u64, 0u64, 0u64);
    for (w, transcript) in transcripts.iter().enumerate() {
        let mut serial = Vec::new();
        for script in churn_scripts(seed, w as u64, per_worker) {
            let id = twin.open();
            for src in script {
                serial.push(twin.apply(&Request::Eval { id, seq: None, src }).encode());
            }
            serial.push(twin.apply(&Request::Close { id, seq: None }).encode());
        }
        let ok = matches!(transcript, Ok((t, _)) if *t == serial);
        if !ok {
            mismatches += 1;
        }
        if let Ok((_, (retries, reconnects, redials))) = transcript {
            counters.0 += retries;
            counters.1 += reconnects;
            counters.2 += redials;
        }
        digests.push(format!(
            "{{\"worker\":{w},\"reply_digest\":\"d{:016x}\",\"match\":{ok}}}",
            transcript_digest(&serial)
        ));
    }
    let counts_ok = server_counts == twin.aggregate_counts();
    if !counts_ok {
        mismatches += 1;
    }
    let sessions = per_worker * workers;
    Ok(ChurnResult {
        json: format!(
            "{{\"sessions\":{sessions},\"workers\":{workers},\
             \"counts_match\":{counts_ok},\"transcripts\":[{}]}}",
            digests.join(",")
        ),
        mismatches,
        evictions,
        resumes,
        counters,
    })
}

/// Run the full soak campaign. IO errors from the TCP leg surface as
/// mismatches (a transcript that could not be collected can't match),
/// not process aborts.
pub fn run_soak(p: &SoakParams) -> io::Result<SoakOutcome> {
    let mut runs = Vec::new();
    let mut mismatches = 0usize;
    let mut evictions = 0u64;
    let mut resumes = 0u64;
    let mut summary = Vec::new();
    let mut total_reqs = ShardMetrics::default();
    let mut total_vol = VolatileMetrics::default();
    let mut chrome_trace = None;
    let (mut client_retries, mut client_reconnects, mut client_redials) = (0u64, 0u64, 0u64);

    for &seed in &p.seeds {
        let handle = server::start("127.0.0.1:0", p.cfg, p.server)?;
        let addr = handle.addr();
        let t_run = Instant::now();

        // Phase 1: the concurrent fleet.
        let server_transcripts: Vec<io::Result<(Vec<String>, ClientCounters)>> =
            std::thread::scope(|s| {
                let joins: Vec<_> = (0..p.clients)
                    .map(|c| s.spawn(move || tcp_client_run(addr, seed, c as u64, p.requests)))
                    .collect();
                joins
                    .into_iter()
                    .map(|j| {
                        j.join()
                            .unwrap_or_else(|_| Err(io::Error::other("client thread panicked")))
                    })
                    .collect()
            });
        for (_, (retries, reconnects, redials)) in server_transcripts.iter().flatten() {
            client_retries += retries;
            client_reconnects += reconnects;
            client_redials += redials;
        }

        // Phase 2: the deterministic eviction sweep over one connection.
        let sweep_server: io::Result<Vec<String>> = (|| {
            let mut c = Client::connect(addr, Role::Client)?;
            run_sweep(&mut |req| c.request_text(&req.encode()), seed, &p.cfg)
        })();

        let elapsed = t_run.elapsed();

        // The live wire surface: a `(metrics)` snapshot fetched after
        // every fleet and sweep reply has been received. Reply release
        // happens only after the owning shard publishes its telemetry
        // cell, so this merged snapshot is final — its deterministic
        // section must equal the serial twin's, byte for byte.
        let wire_metrics: io::Result<(String, String)> = (|| {
            let mut c = Client::connect(addr, Role::Client)?;
            match c.request(&Request::Metrics).map_err(io::Error::other)? {
                Reply::Metrics {
                    deterministic,
                    volatile,
                } => Ok((deterministic, volatile)),
                other => Err(io::Error::new(io::ErrorKind::InvalidData, other.encode())),
            }
        })();

        // Graceful drain; the outcome carries final state for audit.
        if let Ok(mut c) = Client::connect(addr, Role::Client) {
            let _ = c.request(&Request::Shutdown);
        }
        let outcome = handle.shutdown();
        let server_counts = outcome.aggregate_counts();
        let (ev, res) = outcome.eviction_counters();
        evictions += ev;
        resumes += res;

        // Per-shard virtual-clock latency summary (scheduling-dependent:
        // fleet session ids are racy, so shard assignment varies).
        let seed_reqs: u64 = outcome
            .stores
            .iter()
            .map(|s| s.telemetry().requests())
            .sum();
        let secs = elapsed.as_secs_f64().max(1e-9);
        summary.push(format!(
            "seed {seed}: {seed_reqs} requests in {secs:.3}s ({:.0} req/s sustained)",
            seed_reqs as f64 / secs
        ));
        for (k, store) in outcome.stores.iter().enumerate() {
            let t = store.telemetry();
            let e = t.kind(ReqKind::Eval);
            summary.push(format!(
                "  shard {k}: {} requests, {} evals, eval latency p50={} p99={} cycles",
                t.requests(),
                e.count.get(),
                e.cycles.quantile(0.5),
                e.cycles.quantile(0.99),
            ));
        }
        total_reqs.merge(&outcome.telemetry());
        total_vol.merge(&outcome.volatile_total());
        if let Some(json) = outcome.chrome_trace() {
            chrome_trace = Some(json);
        }
        // The drain guarantee has teeth: every suspended blob written
        // by the final evictions must decode cleanly.
        let blobs_ok = outcome.verify_suspended().is_ok();

        // Serial twin: same typed requests, one thread, no eviction.
        let mut twin = SessionStore::new(ServeConfig {
            max_resident: usize::MAX,
            ..p.cfg
        });
        let serial_transcripts: Vec<Vec<String>> = (0..p.clients)
            .map(|c| serial_client_run(&mut twin, seed, c as u64, p.requests))
            .collect();
        let sweep_serial = run_sweep(&mut |req| Ok(twin.apply(req).encode()), seed, &p.cfg)
            .expect("serial sweep is infallible");
        let serial_counts = twin.aggregate_counts();
        let twin_metrics = twin.telemetry().deterministic_json();

        // Compare.
        let mut sessions_json = Vec::new();
        for c in 0..p.clients {
            let serial = &serial_transcripts[c];
            let ok = matches!(&server_transcripts[c], Ok((t, _)) if t == serial);
            if !ok {
                mismatches += 1;
            }
            sessions_json.push(format!(
                "{{\"client\":{c},\"reply_digest\":\"d{:016x}\",\"match\":{ok}}}",
                transcript_digest(serial)
            ));
        }
        let sweep_ok = matches!(&sweep_server, Ok(t) if *t == sweep_serial);
        if !sweep_ok {
            mismatches += 1;
        }
        let counts_ok = server_counts == serial_counts;
        if !counts_ok {
            mismatches += 1;
        }
        if !blobs_ok {
            mismatches += 1;
        }
        // The telemetry gate: the snapshot fetched over the wire from
        // the sharded, racy, eviction-thrashed server must be
        // byte-identical to the serial twin's — virtual-cycle latency
        // is a pure function of each request's op stream, and
        // histogram merging is order-independent.
        let metrics_ok = matches!(&wire_metrics, Ok((det, _)) if *det == twin_metrics);
        if !metrics_ok {
            mismatches += 1;
        }
        runs.push(format!(
            "{{\"seed\":{seed},\"sessions\":[{}],\
             \"sweep_digest\":\"d{:016x}\",\"sweep_match\":{sweep_ok},\
             \"counts_match\":{counts_ok},\"metrics_match\":{metrics_ok},\
             \"drain_blobs_ok\":{blobs_ok},\"metrics\":{twin_metrics},\"aggregate\":{}}}",
            sessions_json.join(","),
            transcript_digest(&sweep_serial),
            counts_json(&serial_counts),
        ));
    }

    // Phase 3 (optional): multi-thousand-session churn on the first seed.
    let churn_json = if p.churn > 0 {
        let seed = p.seeds.first().copied().unwrap_or(11);
        let churn = run_churn(p, seed)?;
        mismatches += churn.mismatches;
        evictions += churn.evictions;
        resumes += churn.resumes;
        client_retries += churn.counters.0;
        client_reconnects += churn.counters.1;
        client_redials += churn.counters.2;
        churn.json
    } else {
        "null".to_string()
    };

    let report = format!(
        "{{\"schema\":\"soak_report_v3\",\"proto_version\":{},\"clients\":{},\"requests\":{},\
         \"shards\":{},\"queue_cap\":{},\
         \"seeds\":[{}],\"all_match\":{},\"churn\":{churn_json},\"runs\":[{}]}}\n",
        crate::protocol::PROTO_VERSION,
        p.clients,
        p.requests,
        p.server.shards,
        p.server.queue_cap,
        p.seeds
            .iter()
            .map(u64::to_string)
            .collect::<Vec<_>>()
            .join(","),
        mismatches == 0,
        runs.join(","),
    );
    Ok(SoakOutcome {
        report,
        mismatches,
        evictions,
        resumes,
        summary,
        prometheus: prometheus_text(&total_reqs, &total_vol),
        chrome_trace,
        client_retries,
        client_reconnects,
        client_redials,
    })
}
