//! Request-path telemetry for the serving layer: per-`Request`-kind
//! latency histograms on two clocks, shard-level occupancy samples,
//! WAL-replication lag counters, and a wall-clock span tracer feeding
//! the `small-profile` Chrome-trace exporter.
//!
//! # The two clocks
//!
//! Every request is priced on the **virtual clock** — the machine's
//! [`TimingModel`](small_core::timing::TimingModel), advanced one
//! operation at a time by [`ServeSink`] exactly as
//! `TimingModel::run_stream` would (via
//! [`CycleClock`](small_profile::CycleClock)). The clock resets at
//! every request boundary, so a request's cycle cost is a pure function
//! of its own operation stream: independent of shard scheduling,
//! eviction churn, and wall time. Virtual-cycle histograms are
//! therefore **deterministic** — byte-identical across same-seed runs —
//! and live in the snapshot the soak harness gates on.
//!
//! The **wall clock** (enabled by the same `--wall` switch as the bench
//! harness) measures the same requests in microseconds of real time.
//! Wall histograms, run-queue depth samples, shed counters, and WAL
//! lag are machine- and schedule-dependent; they are reported in the
//! *volatile* section of the `(metrics)` reply and the Prometheus dump,
//! and never byte-compared.

use crate::protocol::Request;
use small_metrics::{
    histogram_json, Counter, Event, EventCounts, EventSink, Histogram, JsonObject, OpClass,
};
use small_profile::{chrome::TraceBuilder, CycleClock};
use std::sync::Mutex;
use std::time::Instant;

// ---------------------------------------------------------------------
// ServeSink — the per-session event sink: counts + virtual clock
// ---------------------------------------------------------------------

/// The event sink every serving session machine runs with: the
/// [`EventCounts`] the `(stats)` surface aggregates (persisted across
/// suspend/resume), plus a [`CycleClock`] advanced at every operation
/// boundary. The clock is *not* persisted — it is drained at each
/// request boundary by [`ServeSink::take_cycles`], so suspension
/// between requests cannot observe (or perturb) it.
#[derive(Debug, Clone, Default)]
pub struct ServeSink {
    /// Per-kind event counts (the suspend blob carries these words).
    pub counts: EventCounts,
    clock: CycleClock,
}

impl ServeSink {
    /// A sink resuming from persisted counts (the clock starts fresh —
    /// it never spans a request boundary).
    pub fn with_counts(counts: EventCounts) -> ServeSink {
        ServeSink {
            counts,
            clock: CycleClock::default(),
        }
    }

    /// Virtual cycles accumulated since the last call; resets the
    /// clock. Called once per request.
    pub fn take_cycles(&mut self) -> u64 {
        self.clock.take()
    }
}

impl EventSink for ServeSink {
    #[inline]
    fn record(&mut self, event: Event) {
        self.counts.record(event);
    }

    #[inline]
    fn op_end(&mut self, class: OpClass) {
        self.clock.advance(class);
    }
}

// ---------------------------------------------------------------------
// Per-request-kind registry
// ---------------------------------------------------------------------

/// The session-targeting request kinds latency is recorded for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqKind {
    /// `(open)`.
    Open,
    /// `(eval …)`.
    Eval,
    /// `(ledger …)`.
    Ledger,
    /// `(digest …)`.
    Digest,
    /// `(close …)`.
    Close,
}

impl ReqKind {
    /// All kinds, in the stable snapshot order.
    pub const ALL: [ReqKind; 5] = [
        ReqKind::Open,
        ReqKind::Eval,
        ReqKind::Ledger,
        ReqKind::Digest,
        ReqKind::Close,
    ];

    /// Stable lowercase name (the JSON/Prometheus label).
    pub fn name(self) -> &'static str {
        match self {
            ReqKind::Open => "open",
            ReqKind::Eval => "eval",
            ReqKind::Ledger => "ledger",
            ReqKind::Digest => "digest",
            ReqKind::Close => "close",
        }
    }

    fn index(self) -> usize {
        self as usize
    }

    /// The kind of a session-targeting request (`None` for
    /// connection-scoped requests, which never reach a store).
    pub fn of(req: &Request) -> Option<ReqKind> {
        match req {
            Request::Open { .. } => Some(ReqKind::Open),
            Request::Eval { .. } => Some(ReqKind::Eval),
            Request::Ledger { .. } => Some(ReqKind::Ledger),
            Request::Digest { .. } => Some(ReqKind::Digest),
            Request::Close { .. } => Some(ReqKind::Close),
            _ => None,
        }
    }
}

/// One request kind's telemetry: a throughput counter plus latency
/// histograms on both clocks.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct ReqTelemetry {
    /// Requests of this kind served.
    pub count: Counter,
    /// Virtual-cycle latency (deterministic).
    pub cycles: Histogram,
    /// Wall-clock latency in microseconds (recorded only under
    /// `--wall`; always volatile).
    pub wall_us: Histogram,
}

/// The per-store (hence per-shard, or twin-wide) request-telemetry
/// registry: [`ReqTelemetry`] per [`ReqKind`], built on the
/// `small-metrics` primitives. Shards publish a copy after every run
/// batch; the `(metrics)` surface merges the copies.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct ShardMetrics {
    kinds: [ReqTelemetry; 5],
}

impl ShardMetrics {
    /// Record one served request.
    pub fn record(&mut self, kind: ReqKind, cycles: u64, wall_us: Option<u64>) {
        let t = &mut self.kinds[kind.index()];
        t.count.inc();
        t.cycles.record(cycles);
        if let Some(us) = wall_us {
            t.wall_us.record(us);
        }
    }

    /// One kind's telemetry.
    pub fn kind(&self, kind: ReqKind) -> &ReqTelemetry {
        &self.kinds[kind.index()]
    }

    /// Total requests served across kinds.
    pub fn requests(&self) -> u64 {
        self.kinds.iter().map(|t| t.count.get()).sum()
    }

    /// Fold another registry in (shard cells → server-wide snapshot).
    /// Order-independent: merged histograms depend only on the combined
    /// sample multiset.
    pub fn merge(&mut self, other: &ShardMetrics) {
        for (a, b) in self.kinds.iter_mut().zip(other.kinds.iter()) {
            a.count.merge(b.count);
            a.cycles.merge(&b.cycles);
            a.wall_us.merge(&b.wall_us);
        }
    }

    /// The deterministic snapshot: fixed key order, virtual-cycle data
    /// only. Byte-identical across same-seed runs — the soak harness
    /// byte-compares the server-merged snapshot against the serial
    /// twin's.
    pub fn deterministic_json(&self) -> String {
        let mut root = JsonObject::new();
        root.field_str("schema", "small-metrics-snapshot/1");
        root.field_u64("requests", self.requests());
        let mut kinds = String::from("{");
        for (k, kind) in ReqKind::ALL.iter().enumerate() {
            let t = self.kind(*kind);
            if k > 0 {
                kinds.push(',');
            }
            let mut o = JsonObject::new();
            o.field_u64("count", t.count.get());
            o.field_raw("cycles", &histogram_json(&t.cycles));
            kinds.push_str(&format!("\"{}\":{}", kind.name(), o.finish()));
        }
        kinds.push('}');
        root.field_raw("kinds", &kinds);
        root.finish()
    }

    /// The wall-clock histograms as JSON (volatile; empty histograms
    /// when `--wall` was off).
    fn wall_json(&self) -> String {
        let mut out = String::from("{");
        for (k, kind) in ReqKind::ALL.iter().enumerate() {
            if k > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{}\":{}",
                kind.name(),
                histogram_json(&self.kind(*kind).wall_us)
            ));
        }
        out.push('}');
        out
    }
}

// ---------------------------------------------------------------------
// Volatile shard observables
// ---------------------------------------------------------------------

/// Schedule-dependent per-shard observables: queue occupancy, shed
/// counters, WAL-replication lag. Reported, never byte-compared.
#[derive(Debug, Default, Clone)]
pub struct VolatileMetrics {
    /// Run-queue depth sampled at every non-empty drain.
    pub queue_depth: Histogram,
    /// Requests shed with `(err busy queue-full …)`.
    pub busy_sheds: Counter,
    /// Connections shed with `(err busy too-many-connections …)`.
    pub conn_sheds: Counter,
    /// WAL records appended (primary side of replication lag).
    pub wal_appended: Counter,
    /// WAL records served to pullers (shipped side of the lag; each
    /// carried a reply digest for the standby's round-trip check).
    pub wal_shipped: Counter,
    /// `(pull …)` batches served.
    pub wal_pull_batches: Counter,
    /// Highest LSN a replica has confessed to having applied (the
    /// `from` of its latest `(pull …)`). A high-water mark, not a
    /// counter: merged by max, so the merged snapshot reports the most
    /// advanced replica.
    wal_applied: u64,
    /// Relay hop: the upstream primary's next-LSN as last observed by
    /// this node when it is a chained standby. Max-merged high-water
    /// mark; 0 on a primary.
    relay_upstream: u64,
    /// Relay hop: the LSN this node has applied (and can therefore
    /// serve downstream). Max-merged high-water mark; 0 on a primary.
    relay_applied: u64,
}

impl VolatileMetrics {
    /// Fold another cell in.
    pub fn merge(&mut self, other: &VolatileMetrics) {
        self.queue_depth.merge(&other.queue_depth);
        self.busy_sheds.merge(other.busy_sheds);
        self.conn_sheds.merge(other.conn_sheds);
        self.wal_appended.merge(other.wal_appended);
        self.wal_shipped.merge(other.wal_shipped);
        self.wal_pull_batches.merge(other.wal_pull_batches);
        self.wal_applied = self.wal_applied.max(other.wal_applied);
        self.relay_upstream = self.relay_upstream.max(other.relay_upstream);
        self.relay_applied = self.relay_applied.max(other.relay_applied);
    }

    /// Record a replica's applied-LSN high-water mark (from the `from`
    /// argument of a `(pull …)`).
    pub fn note_wal_applied(&mut self, lsn: u64) {
        self.wal_applied = self.wal_applied.max(lsn);
    }

    /// The applied-LSN high-water mark.
    pub fn wal_applied(&self) -> u64 {
        self.wal_applied
    }

    /// Shipped-minus-applied lag: records a replica has been handed
    /// but has not yet confessed to replaying.
    pub fn wal_applied_lag(&self) -> u64 {
        self.wal_shipped.get().saturating_sub(self.wal_applied)
    }

    /// Record the upstream primary's next-LSN as seen by a chained
    /// standby (its pull target).
    pub fn note_relay_upstream(&mut self, lsn: u64) {
        self.relay_upstream = self.relay_upstream.max(lsn);
    }

    /// Record the LSN a chained standby has applied and can relay.
    pub fn note_relay_applied(&mut self, lsn: u64) {
        self.relay_applied = self.relay_applied.max(lsn);
    }

    /// Per-hop relay lag: records the upstream has logged that this
    /// chained standby has not yet applied (0 on a primary).
    pub fn relay_lag(&self) -> u64 {
        self.relay_upstream.saturating_sub(self.relay_applied)
    }

    /// The volatile snapshot section (fixed key order, but the values
    /// are schedule-dependent): queue/shed observables, WAL lag, and
    /// the wall-clock histograms from `reqs`.
    pub fn json(&self, reqs: &ShardMetrics) -> String {
        let mut root = JsonObject::new();
        root.field_raw("queue_depth", &histogram_json(&self.queue_depth));
        root.field_u64("busy_sheds", self.busy_sheds.get());
        root.field_u64("conn_sheds", self.conn_sheds.get());
        let mut wal = JsonObject::new();
        wal.field_u64("appended", self.wal_appended.get());
        wal.field_u64("shipped", self.wal_shipped.get());
        wal.field_u64(
            "lag",
            self.wal_appended
                .get()
                .saturating_sub(self.wal_shipped.get()),
        );
        wal.field_u64("pull_batches", self.wal_pull_batches.get());
        wal.field_u64("applied", self.wal_applied);
        wal.field_u64("applied_lag", self.wal_applied_lag());
        wal.field_u64("relay_upstream", self.relay_upstream);
        wal.field_u64("relay_applied", self.relay_applied);
        wal.field_u64("relay_lag", self.relay_lag());
        root.field_raw("wal", &wal.finish());
        root.field_raw("wall_us", &reqs.wall_json());
        root.finish()
    }
}

/// Prometheus-style text exposition of a merged snapshot (the
/// `--metrics-out` dump written at shutdown).
pub fn prometheus_text(reqs: &ShardMetrics, vol: &VolatileMetrics) -> String {
    let mut out = String::new();
    out.push_str("# TYPE small_requests_total counter\n");
    for kind in ReqKind::ALL {
        out.push_str(&format!(
            "small_requests_total{{kind=\"{}\"}} {}\n",
            kind.name(),
            reqs.kind(kind).count.get()
        ));
    }
    for (metric, pick) in [
        ("small_request_cycles", true),
        ("small_request_wall_us", false),
    ] {
        out.push_str(&format!("# TYPE {metric} summary\n"));
        for kind in ReqKind::ALL {
            let t = reqs.kind(kind);
            let h = if pick { &t.cycles } else { &t.wall_us };
            for (q, label) in [(0.5, "0.5"), (0.99, "0.99")] {
                out.push_str(&format!(
                    "{metric}{{kind=\"{}\",quantile=\"{label}\"}} {}\n",
                    kind.name(),
                    h.quantile(q)
                ));
            }
            out.push_str(&format!(
                "{metric}_sum{{kind=\"{}\"}} {}\n",
                kind.name(),
                h.sum()
            ));
            out.push_str(&format!(
                "{metric}_count{{kind=\"{}\"}} {}\n",
                kind.name(),
                h.count()
            ));
        }
    }
    out.push_str("# TYPE small_queue_depth summary\n");
    for (q, label) in [(0.5, "0.5"), (0.99, "0.99")] {
        out.push_str(&format!(
            "small_queue_depth{{quantile=\"{label}\"}} {}\n",
            vol.queue_depth.quantile(q)
        ));
    }
    out.push_str(&format!(
        "small_queue_depth_count {}\n",
        vol.queue_depth.count()
    ));
    out.push_str("# TYPE small_busy_sheds_total counter\n");
    out.push_str(&format!(
        "small_busy_sheds_total {}\n",
        vol.busy_sheds.get()
    ));
    out.push_str("# TYPE small_conn_sheds_total counter\n");
    out.push_str(&format!(
        "small_conn_sheds_total {}\n",
        vol.conn_sheds.get()
    ));
    out.push_str("# TYPE small_wal_appended_total counter\n");
    out.push_str(&format!(
        "small_wal_appended_total {}\n",
        vol.wal_appended.get()
    ));
    out.push_str("# TYPE small_wal_shipped_total counter\n");
    out.push_str(&format!(
        "small_wal_shipped_total {}\n",
        vol.wal_shipped.get()
    ));
    out.push_str("# TYPE small_wal_lag gauge\n");
    out.push_str(&format!(
        "small_wal_lag {}\n",
        vol.wal_appended.get().saturating_sub(vol.wal_shipped.get())
    ));
    out.push_str("# TYPE small_wal_applied gauge\n");
    out.push_str(&format!("small_wal_applied {}\n", vol.wal_applied()));
    out.push_str("# TYPE small_wal_applied_lag gauge\n");
    out.push_str(&format!(
        "small_wal_applied_lag {}\n",
        vol.wal_applied_lag()
    ));
    out.push_str("# TYPE small_relay_upstream gauge\n");
    out.push_str(&format!("small_relay_upstream {}\n", vol.relay_upstream));
    out.push_str("# TYPE small_relay_applied gauge\n");
    out.push_str(&format!("small_relay_applied {}\n", vol.relay_applied));
    out.push_str("# TYPE small_relay_lag gauge\n");
    out.push_str(&format!("small_relay_lag {}\n", vol.relay_lag()));
    out
}

// ---------------------------------------------------------------------
// TraceLog — wall-clock spans over the shard event loop and session
// lifecycle, exported in Chrome Trace Format.
// ---------------------------------------------------------------------

/// One recorded wall-clock interval on a shard's timeline.
#[derive(Debug, Clone, Copy)]
pub struct SpanRec {
    /// Trace thread (shard index + 1; 0 is the acceptor).
    pub tid: u32,
    /// Span label (`decode`, `run:eval`, `suspend`, `wal_ship`, …).
    pub name: &'static str,
    /// Microseconds since the log's epoch.
    pub start_us: u64,
    /// Duration in microseconds.
    pub dur_us: u64,
}

/// A shared wall-clock span log: shard loops and session stores record
/// accept → decode → run → flush, suspend/resume/checkpoint, and WAL
/// shipping spans into it; at drain it exports Chrome Trace JSON (open
/// it in `chrome://tracing` or Perfetto) and folded stacks. Purely an
/// artifact surface — wall timestamps are machine-dependent, so traces
/// are never byte-compared.
#[derive(Debug)]
pub struct TraceLog {
    epoch: Instant,
    spans: Mutex<Vec<SpanRec>>,
}

impl Default for TraceLog {
    fn default() -> Self {
        TraceLog::new()
    }
}

impl TraceLog {
    /// An empty log; its epoch is now.
    pub fn new() -> TraceLog {
        TraceLog {
            epoch: Instant::now(),
            spans: Mutex::new(Vec::new()),
        }
    }

    /// Microseconds since the epoch (span start stamps).
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Record a span that started at `start_us` and ends now.
    pub fn record(&self, tid: u32, name: &'static str, start_us: u64) {
        let dur_us = self.now_us().saturating_sub(start_us);
        self.spans
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(SpanRec {
                tid,
                name,
                start_us,
                dur_us,
            });
    }

    /// Open a span closed by the guard's drop.
    pub fn span(&self, tid: u32, name: &'static str) -> SpanGuard<'_> {
        SpanGuard {
            log: self,
            tid,
            name,
            start_us: self.now_us(),
        }
    }

    /// Spans recorded so far.
    pub fn len(&self) -> usize {
        self.spans.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Chrome Trace Format JSON: one named thread per shard (tid 0 is
    /// the acceptor), complete events in microseconds.
    pub fn chrome_trace_json(&self, nshards: usize) -> String {
        let mut spans: Vec<SpanRec> = self.spans.lock().unwrap_or_else(|e| e.into_inner()).clone();
        spans.sort_by_key(|s| (s.tid, s.start_us));
        let mut b = TraceBuilder::new("small serve");
        b.thread(0, "acceptor");
        for shard in 0..nshards {
            b.thread(shard as u32 + 1, &format!("shard-{shard}"));
        }
        for s in &spans {
            b.complete(s.name, "serve", s.tid, s.start_us, s.dur_us);
        }
        b.finish()
    }

    /// Folded-stack text (`serve;<thread>;<name> <µs>`) for flamegraph
    /// tools, aggregated by thread and label.
    pub fn folded_stacks(&self) -> String {
        let spans = self.spans.lock().unwrap_or_else(|e| e.into_inner());
        let mut agg: Vec<((u32, &'static str), u64)> = Vec::new();
        for s in spans.iter() {
            match agg
                .iter_mut()
                .find(|((tid, name), _)| *tid == s.tid && *name == s.name)
            {
                Some((_, total)) => *total += s.dur_us,
                None => agg.push(((s.tid, s.name), s.dur_us)),
            }
        }
        agg.sort_by_key(|((tid, name), _)| (*tid, *name));
        let mut out = String::new();
        for ((tid, name), total) in agg {
            let thread = if tid == 0 {
                "acceptor".to_string()
            } else {
                format!("shard-{}", tid - 1)
            };
            out.push_str(&format!("serve;{thread};{name} {total}\n"));
        }
        out
    }
}

/// Drop guard closing a [`TraceLog::span`].
pub struct SpanGuard<'a> {
    log: &'a TraceLog,
    tid: u32,
    name: &'static str,
    start_us: u64,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        self.log.record(self.tid, self.name, self.start_us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use small_core::timing::{TimedOp, TimingModel};
    use small_profile::DEFAULT_EP_GAP;

    #[test]
    fn serve_sink_clock_matches_run_stream() {
        let classes = [
            OpClass::Cons,
            OpClass::AccessHit,
            OpClass::AccessMiss,
            OpClass::Modify,
            OpClass::ReadList,
            OpClass::Cons,
        ];
        let mut sink = ServeSink::default();
        for &c in &classes {
            sink.op_end(c);
        }
        let batch = TimingModel::default().run_stream(
            classes.iter().map(|&c| TimedOp::from_class(c)),
            DEFAULT_EP_GAP,
        );
        assert_eq!(sink.take_cycles(), batch.total);
        // The take reset the clock: a second identical stream reports
        // the same cost (per-request isolation).
        for &c in &classes {
            sink.op_end(c);
        }
        assert_eq!(sink.take_cycles(), batch.total);
    }

    #[test]
    fn shard_metrics_merge_is_order_independent() {
        let mut a = ShardMetrics::default();
        let mut b = ShardMetrics::default();
        a.record(ReqKind::Eval, 120, None);
        a.record(ReqKind::Open, 0, None);
        b.record(ReqKind::Eval, 4000, Some(17));
        b.record(ReqKind::Close, 30, None);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.deterministic_json(), ba.deterministic_json());
        assert_eq!(ab.requests(), 4);
    }

    #[test]
    fn deterministic_json_has_fixed_shape_and_no_wall_data() {
        let mut m = ShardMetrics::default();
        m.record(ReqKind::Eval, 512, Some(999));
        let json = m.deterministic_json();
        assert!(json.starts_with("{\"schema\":\"small-metrics-snapshot/1\",\"requests\":1,"));
        for kind in ReqKind::ALL {
            assert!(json.contains(&format!("\"{}\":{{\"count\":", kind.name())));
        }
        assert!(!json.contains("999"), "wall samples must not leak: {json}");
        assert!(!json.contains("wall"), "no wall keys in the snapshot");
    }

    #[test]
    fn prometheus_dump_covers_every_surface() {
        let mut m = ShardMetrics::default();
        m.record(ReqKind::Eval, 512, Some(40));
        let mut v = VolatileMetrics::default();
        v.queue_depth.record(3);
        v.busy_sheds.inc();
        v.wal_appended.add(10);
        v.wal_shipped.add(7);
        v.note_wal_applied(5);
        let text = prometheus_text(&m, &v);
        assert!(text.contains("small_requests_total{kind=\"eval\"} 1"));
        assert!(text.contains("small_request_cycles{kind=\"eval\",quantile=\"0.5\"} 512"));
        assert!(text.contains("small_request_wall_us_count{kind=\"eval\"} 1"));
        assert!(text.contains("small_busy_sheds_total 1"));
        assert!(text.contains("small_wal_lag 3"));
        assert!(text.contains("small_wal_applied 5"));
        assert!(text.contains("small_wal_applied_lag 2"));
    }

    #[test]
    fn applied_lag_is_a_max_merged_high_water_mark() {
        let mut a = VolatileMetrics::default();
        a.wal_shipped.add(9);
        a.note_wal_applied(4);
        a.note_wal_applied(2); // stale confession never regresses it
        assert_eq!(a.wal_applied(), 4);
        assert_eq!(a.wal_applied_lag(), 5);
        let mut b = VolatileMetrics::default();
        b.note_wal_applied(7);
        a.merge(&b);
        assert_eq!(a.wal_applied(), 7, "merge takes the max, not the sum");
        assert_eq!(a.wal_applied_lag(), 2);
        let json = a.json(&ShardMetrics::default());
        assert!(json.contains("\"applied\":7"), "{json}");
        assert!(json.contains("\"applied_lag\":2"), "{json}");
    }

    #[test]
    fn relay_lag_tracks_the_upstream_hop() {
        let mut v = VolatileMetrics::default();
        v.note_relay_upstream(12);
        v.note_relay_applied(9);
        assert_eq!(v.relay_lag(), 3);
        // High-water marks: a stale observation never regresses them.
        v.note_relay_upstream(10);
        assert_eq!(v.relay_lag(), 3);
        let mut other = VolatileMetrics::default();
        other.note_relay_applied(11);
        v.merge(&other);
        assert_eq!(v.relay_lag(), 1, "merge takes the max per side");
        let json = v.json(&ShardMetrics::default());
        assert!(json.contains("\"relay_upstream\":12"), "{json}");
        assert!(json.contains("\"relay_applied\":11"), "{json}");
        assert!(json.contains("\"relay_lag\":1"), "{json}");
        let text = prometheus_text(&ShardMetrics::default(), &v);
        assert!(text.contains("small_relay_upstream 12"));
        assert!(text.contains("small_relay_applied 11"));
        assert!(text.contains("small_relay_lag 1"));
    }

    #[test]
    fn trace_log_exports_chrome_trace_and_folded_stacks() {
        let log = TraceLog::new();
        {
            let _g = log.span(1, "run:eval");
        }
        log.record(2, "decode", 0);
        assert_eq!(log.len(), 2);
        let json = log.chrome_trace_json(2);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.contains("\"name\":\"shard-1\""));
        assert!(json.contains("\"name\":\"run:eval\""));
        assert!(json.contains("\"ph\":\"X\""));
        let folded = log.folded_stacks();
        assert!(folded.contains("serve;shard-0;run:eval "));
        assert!(folded.contains("serve;shard-1;decode "));
    }
}
