//! Nonblocking connection machinery for the shard event loops.
//!
//! Each accepted socket becomes a [`Conn`] owned by exactly one shard:
//! only the owner reads from the socket, decodes frames, and flushes
//! replies. What *crosses* shards is the [`Outbox`]: a request decoded
//! on the owning shard may execute on the session's home shard, which
//! completes the reply into the connection's outbox from its own
//! thread. The outbox allocates a sequence number per decoded frame
//! (in decode order) and releases encoded replies to the socket only
//! in contiguous sequence order — so replies always come back in
//! request order, no matter which shard executed what, or how long an
//! eviction-resume made one request take.
//!
//! There is no epoll here by design (no new dependencies): sockets are
//! `std::net` nonblocking, the shard loop try-reads every connection
//! each pass, and sleeps briefly when a pass does no work. That trades
//! a few hundred microseconds of idle latency for complete
//! portability; the structural properties (bounded queues, pinned
//! sessions, ordered replies) are what this PR is about.

use crate::protocol::{FrameBuf, Reply, Request, Role};
use std::collections::BTreeMap;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex, MutexGuard};

/// Per-connection reply sequencer, shared between the owning shard
/// (allocation + flush) and executing shards (completion).
#[derive(Default)]
pub struct Outbox {
    inner: Mutex<OutboxInner>,
}

#[derive(Default)]
struct OutboxInner {
    /// Next sequence number to hand out (one per decoded frame).
    next_alloc: u64,
    /// Next sequence number to release to the write buffer.
    next_release: u64,
    /// Completed replies waiting for their turn, by sequence number.
    done: BTreeMap<u64, String>,
    /// Framed bytes ready to write.
    wbuf: Vec<u8>,
    /// Write cursor into `wbuf`.
    wat: usize,
}

impl OutboxInner {
    /// Move contiguously completed replies into the write buffer.
    fn release(&mut self) {
        while let Some(text) = self.done.remove(&self.next_release) {
            self.wbuf
                .extend_from_slice(&(text.len() as u32).to_le_bytes());
            self.wbuf.extend_from_slice(text.as_bytes());
            self.next_release += 1;
        }
        if self.wat > 0 && self.wat == self.wbuf.len() {
            self.wbuf.clear();
            self.wat = 0;
        }
    }
}

impl Outbox {
    /// A fresh outbox.
    pub fn new() -> Arc<Outbox> {
        Arc::new(Outbox::default())
    }

    fn lock(&self) -> MutexGuard<'_, OutboxInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Reserve the next reply slot (owner, at decode time).
    pub fn alloc(&self) -> u64 {
        let mut st = self.lock();
        let seq = st.next_alloc;
        st.next_alloc += 1;
        seq
    }

    /// Complete slot `seq` with a reply (any shard, at execute time).
    pub fn complete(&self, seq: u64, reply: &Reply) {
        let mut st = self.lock();
        st.done.insert(seq, reply.encode());
        st.release();
    }

    /// True while any allocated slot has not yet been written out.
    pub fn pending(&self) -> bool {
        let st = self.lock();
        st.next_release < st.next_alloc || st.wat < st.wbuf.len()
    }
}

/// One nonblocking client connection, owned by a shard loop.
pub struct Conn {
    stream: TcpStream,
    frames: FrameBuf,
    /// The reply sequencer (shared with executing shards).
    pub outbox: Arc<Outbox>,
    /// Role declared by the `(hello …)` handshake, once seen.
    pub role: Option<Role>,
    /// Peer finished sending (clean EOF seen).
    pub eof: bool,
    /// Connection is broken or protocol-violating; close after the
    /// current flush attempt.
    pub dead: bool,
    /// Close once every allocated reply has been flushed (set after a
    /// fatal-but-replied condition like a version-mismatch handshake).
    pub close_after_flush: bool,
}

impl Conn {
    /// Adopt an accepted socket: switch it to nonblocking and wrap it.
    pub fn adopt(stream: TcpStream) -> io::Result<Conn> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(Conn {
            stream,
            frames: FrameBuf::new(),
            outbox: Outbox::new(),
            role: None,
            eof: false,
            dead: false,
            close_after_flush: false,
        })
    }

    /// Read the socket dry into the frame buffer. EOF mid-frame or an
    /// I/O error marks the connection dead.
    pub fn fill(&mut self) {
        if self.dead || self.eof {
            return;
        }
        let mut buf = [0u8; 4096];
        loop {
            match self.stream.read(&mut buf) {
                Ok(0) => {
                    self.eof = true;
                    if self.frames.has_partial() {
                        self.dead = true; // torn mid-frame
                    }
                    break;
                }
                Ok(n) => self.frames.extend(&buf[..n]),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
    }

    /// Pop and decode the next buffered request without materializing
    /// the frame text: the bytes are borrowed straight from the
    /// receive buffer and only the typed [`Request`] (or the typed
    /// error [`Reply`] to send back) is owned. Protocol damage
    /// (oversized frame, non-UTF-8) marks the connection dead and ends
    /// the stream. Call [`Conn::fill`] first.
    pub fn next_request(&mut self) -> Option<Result<Request, Reply>> {
        match self.frames.pop_ref() {
            Ok(Some(text)) => Some(Request::decode(text)),
            Ok(None) => None,
            Err(_) => {
                self.dead = true;
                None
            }
        }
    }

    /// Drain everything currently readable into complete owned frames.
    /// Protocol damage (oversized frame, non-UTF-8, torn EOF) marks
    /// the connection dead. The shard loops use the allocation-free
    /// [`Conn::fill`] + [`Conn::next_request`] pair instead; this
    /// remains for callers that want the raw text.
    pub fn read_frames(&mut self) -> Vec<String> {
        self.fill();
        let mut out = Vec::new();
        loop {
            match self.frames.pop() {
                Ok(Some(text)) => out.push(text),
                Ok(None) => break,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        out
    }

    /// Write as much buffered reply data as the socket accepts.
    /// Returns `true` while data remains pending (buffered or awaiting
    /// out-of-order completions).
    pub fn flush(&mut self) -> bool {
        if self.dead {
            return false;
        }
        let mut st = self.outbox.lock();
        st.release();
        while st.wat < st.wbuf.len() {
            match self.stream.write(&st.wbuf[st.wat..]) {
                Ok(0) => {
                    self.dead = true;
                    return false;
                }
                Ok(n) => st.wat += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return false;
                }
            }
        }
        if st.wat == st.wbuf.len() {
            st.wbuf.clear();
            st.wat = 0;
        }
        st.wat < st.wbuf.len() || st.next_release < st.next_alloc
    }

    /// Whether the owner should retire this connection: broken, or
    /// finished (EOF / fatal-replied) with nothing left to flush.
    pub fn finished(&self) -> bool {
        if self.dead {
            return true;
        }
        (self.eof || self.close_after_flush) && !self.outbox.pending()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{read_frame, write_frame, Request};
    use std::net::TcpListener;

    #[test]
    fn outbox_releases_replies_in_sequence_order() {
        let outbox = Outbox::new();
        let a = outbox.alloc();
        let b = outbox.alloc();
        let c = outbox.alloc();
        assert_eq!((a, b, c), (0, 1, 2));
        // Complete out of order; nothing is released until 0 lands.
        outbox.complete(c, &Reply::Draining);
        outbox.complete(a, &Reply::Opened { id: 9 });
        outbox.complete(b, &Reply::Closed { occupancy: 0 });
        let st = outbox.lock();
        assert!(st.done.is_empty(), "all released");
        // The write buffer holds the three frames in 0,1,2 order.
        let mut r = &st.wbuf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), "(ok opened 9)");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), "(ok closed 0)");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), "(ok draining)");
    }

    #[test]
    fn conn_reads_pipelined_frames_and_flushes_replies() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut peer = TcpStream::connect(addr).unwrap();
        let (accepted, _) = listener.accept().unwrap();
        let mut conn = Conn::adopt(accepted).unwrap();

        // Pipelined requests in one write.
        write_frame(&mut peer, &Request::Open { token: None }.encode()).unwrap();
        write_frame(&mut peer, &Request::Stats.encode()).unwrap();
        // Wait on progress, not wall-clock: loopback delivery is not
        // instant, but any poll that yields a frame resets the
        // patience counter, so only a genuine stall can fail — and a
        // slow machine cannot.
        let mut seen = Vec::new();
        let mut idle_polls = 0u32;
        while seen.len() < 2 && idle_polls < 10_000 {
            let got = conn.read_frames();
            if got.is_empty() {
                idle_polls += 1;
                std::thread::sleep(std::time::Duration::from_millis(1));
            } else {
                idle_polls = 0;
                seen.extend(got);
            }
        }
        assert_eq!(seen, vec!["(open)".to_string(), "(stats)".to_string()]);

        let s0 = conn.outbox.alloc();
        let s1 = conn.outbox.alloc();
        conn.outbox.complete(s1, &Reply::Draining);
        assert!(conn.flush(), "seq 0 still outstanding");
        conn.outbox.complete(s0, &Reply::Opened { id: 3 });
        while conn.flush() {}
        assert_eq!(read_frame(&mut peer).unwrap().unwrap(), "(ok opened 3)");
        assert_eq!(read_frame(&mut peer).unwrap().unwrap(), "(ok draining)");
        assert!(!conn.finished(), "peer has not hung up");
        drop(peer);
        while !conn.read_frames().is_empty() {}
        assert!(conn.finished(), "clean EOF with empty outbox");
    }
}
