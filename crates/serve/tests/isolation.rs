//! Session isolation under concurrency machinery: K sessions fed a
//! randomly interleaved request schedule through a [`SessionStore`]
//! with a small residency cap (forcing LRU eviction and resume churn
//! between requests) must each produce exactly the replies, ledger,
//! and digest of the same script run serially on a fresh, never-
//! evicted [`Session`]. This is the isolation property the serving
//! layer promises: neither interleaving nor suspend/resume is
//! observable from inside a session.

use proptest::prelude::*;
use small_serve::session::{ServeConfig, Session};
use small_serve::{Reply, SessionStore};

const K: usize = 5;
const TEMPLATES: u8 = 7;

fn cfg(max_resident: usize) -> ServeConfig {
    ServeConfig {
        heap_cells: 1 << 13,
        table_size: 256,
        step_budget: 200_000,
        max_resident,
    }
}

/// The `j`-th request of session `k` for template pick `t`. Every
/// session starts with `(setq acc nil)`, so `acc` is always bound.
fn request(k: usize, j: usize, t: u8) -> String {
    let a = (k * 31 + j * 7) % 50;
    match t % TEMPLATES {
        0 => format!("(add {a} (times {k} {j}))"),
        1 => format!("(setq acc (cons {a} acc))"),
        // Mutation on a fresh cell over the session's accumulator.
        2 => format!(
            "(prog (x) (setq x (cons {a} acc)) (rplaca x {k}) (rplacd x acc) (return (car x)))"
        ),
        3 => "(car 5)".to_string(),
        4 => "(setq acc (cdr acc))".to_string(),
        5 => format!("(setq g{k} {a})"),
        _ => format!("(cond ((null acc) {a}) (t (car acc)))"),
    }
}

/// Expand an interleaving into per-session scripts (each prefixed with
/// the accumulator seed request).
fn scripts(schedule: &[(usize, u8)]) -> Vec<Vec<String>> {
    let mut per: Vec<Vec<String>> = (0..K).map(|_| vec!["(setq acc nil)".to_string()]).collect();
    for &(k, t) in schedule {
        let j = per[k].len();
        per[k].push(request(k, j, t));
    }
    per
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn interleaved_sessions_match_serial_runs(
        schedule in prop::collection::vec((0..K, 0..TEMPLATES), 8..48)
    ) {
        // Concurrent-shaped run: one store, residency cap of 2, the
        // interleaved schedule. Sessions are evicted and resumed as the
        // schedule touches them.
        let mut store = SessionStore::new(cfg(2));
        let ids: Vec<u64> = (0..K).map(|_| store.open()).collect();
        let per = scripts(&schedule);
        let mut managed: Vec<Vec<Reply>> = (0..K).map(|_| Vec::new()).collect();
        let mut cursor = [0usize; K];
        // Replay the schedule: seed request first touch, then in order.
        let mut order: Vec<usize> = Vec::new();
        for k in 0..K {
            order.push(k); // every session runs its seed request
        }
        for &(k, _) in &schedule {
            order.push(k);
        }
        for k in order {
            let j = cursor[k];
            if j < per[k].len() {
                managed[k].push(store.eval(ids[k], &per[k][j]));
                cursor[k] = j + 1;
            }
        }
        let ledgers: Vec<Reply> = ids.iter().map(|id| store.ledger(*id)).collect();
        let digests: Vec<Reply> = ids.iter().map(|id| store.digest(*id)).collect();
        let (evictions, resumes) = store.eviction_counters();
        prop_assert!(evictions > 0, "residency cap 2 with {} sessions must evict", K);
        prop_assert!(resumes > 0, "touching an evicted session must resume it");

        // Serial twin: fresh sessions, never evicted, same scripts.
        for k in 0..K {
            let mut s = Session::new(ids[k], &cfg(usize::MAX));
            let serial: Vec<Reply> = per[k].iter().map(|r| s.eval(r)).collect();
            prop_assert_eq!(&managed[k], &serial, "replies diverged for session {}", k);
            prop_assert_eq!(&ledgers[k], &s.ledger_reply(), "ledger diverged for session {}", k);
            prop_assert_eq!(&digests[k], &s.digest_reply(), "digest diverged for session {}", k);
            let (occupancy, _) = s.close();
            prop_assert_eq!(occupancy, 0, "serial session {} leaked", k);
        }
        for id in ids {
            prop_assert_eq!(store.close(id), Reply::Closed { occupancy: 0 });
        }
    }
}

/// Deterministic round-trip: with a residency cap of 1, two sessions
/// alternating requests are suspended and resumed on every touch; the
/// evicted-every-time run must match a never-evicted store exactly,
/// including ledgers (stats-neutral suspend) and digests.
#[test]
fn eviction_round_trip_is_invisible() {
    let mut thrash = SessionStore::new(cfg(1));
    let mut roomy = SessionStore::new(cfg(usize::MAX));
    let a = [thrash.open(), roomy.open()];
    let b = [thrash.open(), roomy.open()];
    let script = [
        "(setq acc nil)",
        "(setq acc (cons 1 acc))",
        "(setq acc (cons 2 acc))",
        "(prog (x) (setq x (cons 9 acc)) (rplaca x 8) (return (car x)))",
        "(car acc)",
        "(car 5)",
        "(setq acc (cdr acc))",
        "(car acc)",
    ];
    for r in script {
        // Alternate sessions request-by-request: under cap 1 every
        // touch suspends the other session.
        assert_eq!(thrash.eval(a[0], r), roomy.eval(a[1], r));
        assert_eq!(thrash.eval(b[0], r), roomy.eval(b[1], r));
    }
    assert_eq!(thrash.ledger(a[0]), roomy.ledger(a[1]));
    assert_eq!(thrash.ledger(b[0]), roomy.ledger(b[1]));
    assert_eq!(thrash.digest(a[0]), roomy.digest(a[1]));
    assert_eq!(thrash.digest(b[0]), roomy.digest(b[1]));
    let (evictions, resumes) = thrash.eviction_counters();
    assert!(
        evictions >= script.len() as u64,
        "cap 1 must thrash: {evictions}"
    );
    assert!(
        resumes >= script.len() as u64,
        "cap 1 must resume: {resumes}"
    );
    let (roomy_ev, roomy_res) = roomy.eviction_counters();
    assert_eq!(
        (roomy_ev, roomy_res),
        (0, 0),
        "roomy store must never evict"
    );
    for id in [a[0], b[0]] {
        assert_eq!(thrash.close(id), Reply::Closed { occupancy: 0 });
    }
    for id in [a[1], b[1]] {
        assert_eq!(roomy.close(id), Reply::Closed { occupancy: 0 });
    }
}
