//! Wire-level telemetry: the `(metrics)` request against a live
//! server, and the deterministic-snapshot contract — per-kind counts
//! and virtual-cycle latency histograms must be byte-identical across
//! server topologies and eviction schedules, because request latency
//! on the virtual clock is a pure function of each request's operation
//! stream and histogram merging is order-independent.

use small_serve::gen::programs_for;
use small_serve::server::{start, ServerParams};
use small_serve::session::ServeConfig;
use small_serve::{Client, Reply, Request, Role};
use std::thread;

const SEED: u64 = 23;
const CLIENTS: usize = 6;
const REQUESTS: usize = 12;

fn run_fleet(cfg: ServeConfig, params: ServerParams) -> (String, String) {
    let handle = start("127.0.0.1:0", cfg, params).expect("server starts");
    let addr = handle.addr();
    let workers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            thread::spawn(move || {
                let mut cl = Client::connect(addr, Role::Client).unwrap();
                let id = cl.open().unwrap();
                for src in programs_for(SEED, c as u64, REQUESTS) {
                    let _ = cl.request(&Request::Eval { id, seq: None, src }).unwrap();
                }
                cl.request(&Request::Close { id, seq: None }).unwrap();
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    // Every client's replies are in hand, and shards publish their
    // telemetry cells before releasing any reply, so this read is
    // final.
    let mut cl = Client::connect(addr, Role::Client).unwrap();
    let snapshot = match cl.request(&Request::Metrics).unwrap() {
        Reply::Metrics {
            deterministic,
            volatile,
        } => (deterministic, volatile),
        other => panic!("metrics refused: {}", other.encode()),
    };
    handle.shutdown();
    snapshot
}

#[test]
fn metrics_request_round_trips_a_live_snapshot() {
    let (det, vol) = run_fleet(
        ServeConfig {
            heap_cells: 1 << 12,
            table_size: 256,
            max_resident: 8,
            ..ServeConfig::default()
        },
        ServerParams {
            shards: 1,
            ..ServerParams::default()
        },
    );
    assert!(det.starts_with("{\"schema\":\"small-metrics-snapshot/1\""));
    let expected = (CLIENTS * (REQUESTS + 3)) as u64;
    assert!(det.contains(&format!("\"requests\":{}", expected + 2 * CLIENTS as u64)));
    assert!(det.contains(&format!("\"eval\":{{\"count\":{expected}")));
    // The wall histograms live in the volatile section only — the
    // deterministic payload must never mention them.
    assert!(!det.contains("wall_us"));
    for key in ["queue_depth", "busy_sheds", "conn_sheds", "\"wal\":"] {
        assert!(vol.contains(key), "volatile snapshot lacks {key}");
    }
}

#[test]
fn snapshot_is_invariant_across_topology_and_eviction_schedule() {
    // Same workload, two very different servers: single-shard with
    // room for every session, versus two shards with one resident
    // session each (every interleaving forces suspend/resume churn).
    // Scheduling must be invisible in the deterministic section.
    let (calm, _) = run_fleet(
        ServeConfig {
            heap_cells: 1 << 12,
            table_size: 256,
            max_resident: 8,
            ..ServeConfig::default()
        },
        ServerParams {
            shards: 1,
            ..ServerParams::default()
        },
    );
    let (churned, _) = run_fleet(
        ServeConfig {
            heap_cells: 1 << 12,
            table_size: 256,
            max_resident: 1,
            ..ServeConfig::default()
        },
        ServerParams {
            shards: 2,
            ..ServerParams::default()
        },
    );
    assert_eq!(calm, churned);
}

#[test]
fn malformed_metrics_request_is_a_typed_proto_error() {
    let handle = start(
        "127.0.0.1:0",
        ServeConfig {
            heap_cells: 1 << 12,
            table_size: 256,
            max_resident: 4,
            ..ServeConfig::default()
        },
        ServerParams {
            shards: 1,
            ..ServerParams::default()
        },
    )
    .expect("server starts");
    let mut cl = Client::connect(handle.addr(), Role::Client).unwrap();
    // `(metrics)` takes no arguments; anything else must be refused
    // with the protocol error class, and the connection must survive.
    assert_eq!(
        cl.request_text("(metrics 1)").unwrap(),
        "(err proto bad-request)"
    );
    let live = cl.request(&Request::Metrics).unwrap().encode();
    assert!(live.starts_with("(ok metrics h"), "connection died: {live}");
    handle.shutdown();
}
