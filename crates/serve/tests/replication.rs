//! WAL-shipping replication over real sockets: a replica-role client
//! pulls journal frames from a live primary into a warm [`Standby`],
//! and promotion yields a store whose observable state — ledgers,
//! digests, values, even the next session id — is byte-identical to
//! what the primary was serving.

use small_serve::server::{start, ServerParams};
use small_serve::session::ServeConfig;
use small_serve::{Client, Reply, Request, Role, Standby};

fn cfg() -> ServeConfig {
    ServeConfig {
        heap_cells: 1 << 13,
        table_size: 256,
        max_resident: 2,
        ..ServeConfig::default()
    }
}

fn primary() -> small_serve::ServerHandle {
    start(
        "127.0.0.1:0",
        cfg(),
        ServerParams {
            shards: 2,
            queue_cap: 64,
            max_conns_per_shard: 8,
            replicate: true,
            ..ServerParams::default()
        },
    )
    .expect("primary starts")
}

#[test]
fn promoted_standby_serves_the_primary_state() {
    let handle = primary();
    let mut c = Client::connect(handle.addr(), Role::Client).unwrap();
    let a = c.open().unwrap();
    let b = c.open().unwrap();
    let script: [(u64, &str); 6] = [
        (a, "(setq acc (cons 1 (cons 2 nil)))"),
        (b, "(setq acc (cons 9 nil))"),
        (a, "(setq acc (cons 3 acc))"),
        (a, "(car 5)"), // errors are journaled and replayed too
        (b, "(car acc)"),
        (a, "(car acc)"),
    ];
    for &(id, src) in &script {
        c.request(&Request::Eval {
            id,
            seq: None,
            src: src.to_string(),
        })
        .unwrap();
    }
    // What the live primary says about each session.
    let live: Vec<String> = [a, b]
        .iter()
        .flat_map(|&id| {
            [
                c.request_text(&Request::Ledger { id }.encode()).unwrap(),
                c.request_text(&Request::Digest { id }.encode()).unwrap(),
            ]
        })
        .collect();

    // Ship the whole journal (ledger/digest reads are not journaled,
    // so the WAL holds exactly the opens and evals).
    let mut puller = Client::connect(handle.addr(), Role::Replica).unwrap();
    let mut standby = Standby::new(ServeConfig {
        max_resident: 1, // deliberately tighter than the primary
        ..cfg()
    });
    let target = handle.wal_next_lsn().expect("primary has a WAL");
    assert_eq!(target, 2 + script.len() as u64);
    puller.catch_up(&mut standby, target).unwrap();
    drop((c, puller));
    handle.shutdown();

    // The survivor answers exactly as the primary did...
    let mut promoted = standby.promote();
    let replayed: Vec<String> = [a, b]
        .iter()
        .flat_map(|&id| {
            [
                promoted.apply(&Request::Ledger { id }).encode(),
                promoted.apply(&Request::Digest { id }).encode(),
            ]
        })
        .collect();
    assert_eq!(replayed, live);
    // ...and keeps allocating ids where the primary left off.
    assert_eq!(
        promoted.apply(&Request::Open { token: None }),
        Reply::Opened { id: 2 }
    );
}

#[test]
fn incremental_and_bulk_catch_up_converge() {
    let handle = primary();
    let mut c = Client::connect(handle.addr(), Role::Client).unwrap();
    let mut inc_puller = Client::connect(handle.addr(), Role::Replica).unwrap();
    let mut incremental = Standby::new(cfg());
    let id = c.open().unwrap();
    let target = handle.wal_next_lsn().unwrap();
    inc_puller.catch_up(&mut incremental, target).unwrap();
    for k in 0..12u64 {
        let src = if k == 0 {
            "(setq acc nil)".to_string()
        } else {
            format!("(setq acc (cons {k} acc))")
        };
        c.request(&Request::Eval { id, seq: None, src }).unwrap();
        // Pull after every single acknowledged request...
        let target = handle.wal_next_lsn().unwrap();
        inc_puller.catch_up(&mut incremental, target).unwrap();
    }
    // ...versus one bulk pull at the end.
    let mut bulk_puller = Client::connect(handle.addr(), Role::Replica).unwrap();
    let mut bulk = Standby::new(cfg());
    let target = handle.wal_next_lsn().unwrap();
    bulk_puller.catch_up(&mut bulk, target).unwrap();
    drop((c, inc_puller, bulk_puller));
    handle.shutdown();

    let mut a = incremental.promote();
    let mut b = bulk.promote();
    assert_eq!(
        a.apply(&Request::Digest { id }),
        b.apply(&Request::Digest { id })
    );
    assert_eq!(
        a.apply(&Request::Ledger { id }),
        b.apply(&Request::Ledger { id })
    );
}

#[test]
fn pull_is_gated_on_the_replica_role() {
    let handle = primary();
    let mut c = Client::connect(handle.addr(), Role::Client).unwrap();
    assert_eq!(
        c.request_text(&Request::Pull { from: 0 }.encode()).unwrap(),
        "(err proto not-a-replica)",
        "a client-role connection must not read the journal"
    );
    // The same request on a replica-role connection works.
    let mut r = Client::connect(handle.addr(), Role::Replica).unwrap();
    let (next, bytes) = r.pull(0).unwrap();
    assert_eq!((next, bytes.len()), (0, 0), "empty journal, clean pull");
    handle.shutdown();
}
