//! Back-pressure: a bounded run queue of 1 plus a scripted pipelined
//! client. Requests beyond the bound must be refused with the typed
//! `(err busy queue-full <shard>)` reply — never stalled, never
//! silently dropped — and the connection must remain fully usable
//! afterwards.
//!
//! Determinism note: the shard loop decodes *everything readable*
//! before executing queued jobs, and the client writes its burst in a
//! single flush (one small TCP segment on loopback). So however the
//! burst interleaves with execution, every decode pass finds the
//! queue holding at most one free slot, and sheds the rest of that
//! pass's frames with the busy reply. The invariants asserted here —
//! one reply per request, in order, each either the correct value or
//! the typed busy — hold under any interleaving.

use small_serve::server::{start, ServerParams};
use small_serve::session::ServeConfig;
use small_serve::{Client, Reply, Request, Role};

fn cfg() -> ServeConfig {
    ServeConfig {
        heap_cells: 1 << 12,
        table_size: 256,
        max_resident: 4,
        ..ServeConfig::default()
    }
}

fn tiny_server(queue_cap: usize) -> small_serve::ServerHandle {
    start(
        "127.0.0.1:0",
        cfg(),
        ServerParams {
            shards: 1,
            queue_cap,
            max_conns_per_shard: 4,
            replicate: false,
            ..ServerParams::default()
        },
    )
    .expect("server starts")
}

const BURST: usize = 16;

fn burst_requests(id: u64) -> Vec<Request> {
    (0..BURST)
        .map(|k| Request::Eval {
            id,
            seq: None,
            src: format!("(add {k} {k})"),
        })
        .collect()
}

#[test]
fn bounded_queue_sheds_with_typed_busy_and_connection_survives() {
    let handle = tiny_server(1);
    let mut c = Client::connect(handle.addr(), Role::Client).unwrap();
    let id = c.open().unwrap();

    let replies = c.pipeline(&burst_requests(id)).expect("no hang, no drop");
    assert_eq!(replies.len(), BURST, "exactly one reply per request");

    let mut served = 0usize;
    let mut shed = 0usize;
    for (k, text) in replies.iter().enumerate() {
        if text == "(err busy queue-full 0)" {
            shed += 1;
        } else {
            // A non-busy reply must be the *correct* value for its
            // position — order and content both survive shedding.
            assert_eq!(text, &format!("(ok value {})", 2 * k), "reply {k}");
            served += 1;
        }
    }
    assert_eq!(served + shed, BURST);
    assert!(served >= 1, "the queued request per pass must execute");
    assert!(
        shed >= 1,
        "a single-flush burst of {BURST} against a queue of 1 must shed"
    );

    // The connection that was shed on is still a first-class citizen.
    assert_eq!(
        c.request(&Request::Eval {
            id,
            seq: None,
            src: "(add 20 22)".to_string(),
        })
        .unwrap()
        .encode(),
        "(ok value 42)"
    );
    assert_eq!(
        c.request(&Request::Close { id, seq: None }).unwrap(),
        Reply::Closed { occupancy: 0 }
    );
    handle.shutdown();
}

#[test]
fn roomy_queue_absorbs_the_same_burst() {
    // Same script, queue bound comfortably above the burst: nothing
    // sheds, proving the busy replies above were the bound's doing.
    let handle = tiny_server(BURST * 2);
    let mut c = Client::connect(handle.addr(), Role::Client).unwrap();
    let id = c.open().unwrap();
    let replies = c.pipeline(&burst_requests(id)).unwrap();
    for (k, text) in replies.iter().enumerate() {
        assert_eq!(text, &format!("(ok value {})", 2 * k), "reply {k}");
    }
    assert_eq!(
        c.request(&Request::Close { id, seq: None }).unwrap(),
        Reply::Closed { occupancy: 0 }
    );
    handle.shutdown();
}

#[test]
fn connection_cap_refuses_with_typed_reply() {
    // max_conns_per_shard is 4 on a 1-shard server: the fifth
    // concurrent connection must be told why before the close.
    let handle = tiny_server(64);
    let keep: Vec<Client> = (0..4)
        .map(|_| Client::connect(handle.addr(), Role::Client).unwrap())
        .collect();
    let mut raw = small_serve::server::raw_connect(handle.addr()).unwrap();
    use small_serve::protocol::{read_frame, write_frame};
    write_frame(
        &mut raw,
        &Request::Hello {
            version: small_serve::PROTO_VERSION,
            role: Role::Client,
        }
        .encode(),
    )
    .unwrap();
    let reply = read_frame(&mut std::io::BufReader::new(raw))
        .unwrap()
        .expect("typed refusal, not a silent close");
    assert_eq!(reply, "(err busy too-many-connections 0)");
    drop(keep);
    handle.shutdown();
}
